//! Replaying existing shard sets through the pipeline: validate any edge
//! stream on disk, not just the one you just generated.
//!
//! Related generators validate their output *after the fact*, reading the
//! generated files back from disk; our pipeline could only measure a graph
//! *while* generating it.  [`ReplaySource`] closes that gap: it implements
//! [`EdgeSource`] over a directory of TSV or binary shards — typically one a
//! file-writing [`Pipeline`](crate::pipeline::Pipeline) terminal produced,
//! located through its `manifest.json` — so the design → generate →
//! **validate** loop runs as a standalone stage.  Any graph on disk can be
//! re-measured (full [`MetricsReport`](crate::metrics::MetricsReport),
//! identical to the generation-time one for the same shard layout),
//! re-validated, permuted, filtered, re-sharded, or converted between
//! formats — without regenerating a single edge:
//!
//! ```no_run
//! use kron_gen::{Pipeline, ReplaySource};
//!
//! // Re-measure a shard directory written by an earlier run…
//! let source = ReplaySource::from_directory(std::path::Path::new("/data/run1"))?;
//! let report = Pipeline::for_source(source).workers(8).count()?;
//! // …the streamed metrics must reproduce what the generation measured.
//! assert!(report.is_valid());
//! # Ok::<(), kron_core::CoreError>(())
//! ```
//!
//! Shards stream through the same bounded-memory chunk machinery as
//! generation: TSV shards line by line, interleaved (v2) binary shards in
//! fixed 64 KiB slabs, and split-array (v1) binary shards through two
//! cursors walking the row and column segments in lockstep.  Every I/O or
//! parse failure names the shard it occurred in
//! ([`SparseError::WithPath`]), so one corrupt file in a thousand-shard set
//! is identifiable from the error alone.

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use kron_core::validate::{FieldCheck, ValidationReport};
use kron_core::{CoreError, GraphProperties};
use kron_sparse::SparseError;

use crate::chunk::EdgeChunk;
use crate::codec;
use crate::manifest::{RunManifest, MANIFEST_FILE_NAME};
use crate::partition::Partition;
use crate::source::{EdgeSource, SourceDescriptor, SourceRun};
use crate::split::SplitPlan;
use crate::writer::{
    le_u64, read_block_header, BlockFileSet, BlockFormat, Fnv1a, BLOCK_HEADER_LEN, BLOCK_VERSION,
    BLOCK_VERSION_COMPRESSED,
};

/// An [`EdgeSource`] that streams an existing shard set back through the
/// pipeline.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    files: Vec<PathBuf>,
    /// Expected whole-file checksum per shard (same order as `files`), from
    /// the manifest's `shards` records.  Binary shards carry their checksum
    /// in the v3 header and verify it regardless; this sidecar is what
    /// makes *TSV* shards verifiable.  `None` (pre-checksum manifests,
    /// hand-built file sets) skips verification for that shard.
    checksums: Vec<Option<u64>>,
    format: BlockFormat,
    vertices: u64,
    expected_edges: Option<u64>,
    star_points: Vec<u64>,
    self_loop: String,
}

impl ReplaySource {
    /// Open the shard set a file-writing pipeline terminal left under
    /// `directory`, using its `manifest.json` for the format, vertex count,
    /// expected edge total, and per-worker file layout.  Only the file
    /// *names* are taken from the manifest, so a relocated (copied, synced,
    /// renamed-parent) shard directory replays in place.
    pub fn from_directory(directory: &Path) -> Result<Self, CoreError> {
        let manifest = RunManifest::read_from(&directory.join(MANIFEST_FILE_NAME))
            .map_err(CoreError::Sparse)?;
        let format = match manifest.sink.as_str() {
            "tsv" => BlockFormat::Tsv,
            "binary" => BlockFormat::Binary,
            "compressed" => BlockFormat::Compressed,
            other => {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                    "manifest records sink kind \"{other}\", which left no shard files to replay"
                ),
                })
            }
        };
        if manifest.outputs.is_empty() {
            return Err(CoreError::InvalidConfig {
                message: "manifest records no output shards".into(),
            });
        }
        let files = manifest
            .outputs
            .iter()
            .map(|output| {
                let name =
                    Path::new(output)
                        .file_name()
                        .ok_or_else(|| CoreError::InvalidConfig {
                            message: format!("manifest output \"{output}\" has no file name"),
                        })?;
                Ok(directory.join(name))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        // Match checksum records to files by name — the manifest's `shards`
        // array may be sparse (quarantined workers) or absent (pre-checksum
        // manifests).
        let checksums = files
            .iter()
            .map(|file| {
                let name = file.file_name().map(|n| n.to_string_lossy().to_string());
                manifest
                    .shards
                    .iter()
                    .find(|shard| Some(&shard.file) == name.as_ref())
                    .map(|shard| shard.checksum)
            })
            .collect();
        let vertices = manifest
            .vertices
            .parse::<u64>()
            .map_err(|_| CoreError::InvalidConfig {
                message: format!(
                    "manifest vertex count {} does not fit an indexable graph",
                    manifest.vertices
                ),
            })?;
        Ok(ReplaySource {
            files,
            checksums,
            format,
            vertices,
            expected_edges: Some(manifest.total_edges),
            star_points: manifest.star_points,
            self_loop: manifest.self_loop,
        })
    }

    /// Replay the files of a [`BlockFileSet`] directly (no manifest needed —
    /// for shard sets produced by the pre-manifest writers or assembled by
    /// hand).  Without a manifest the replay has no expected edge count;
    /// validation checks the vertex count only, unless
    /// [`ReplaySource::expect_edges`] supplies one.
    pub fn from_file_set(files: &BlockFileSet) -> Self {
        ReplaySource {
            checksums: vec![None; files.files.len()],
            files: files.files.clone(),
            format: files.format,
            vertices: files.vertices,
            expected_edges: None,
            star_points: Vec::new(),
            self_loop: "None".to_string(),
        }
    }

    /// Validate the replayed stream against an expected total edge count.
    pub fn expect_edges(mut self, edges: u64) -> Self {
        self.expected_edges = Some(edges);
        self
    }

    /// The shard files the source will stream, in original worker order.
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// The on-disk format of the shards.
    pub fn format(&self) -> BlockFormat {
        self.format
    }
}

impl EdgeSource for ReplaySource {
    type Run = ReplayRun;

    fn vertices(&self) -> Result<u64, CoreError> {
        Ok(self.vertices)
    }

    fn prepare(&self, workers: usize) -> Result<(ReplayRun, Vec<String>), CoreError> {
        if workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "a replay run needs at least one worker".into(),
            });
        }
        let mut warnings = Vec::new();
        if workers > self.files.len() {
            warnings.push(format!(
                "replaying {} shard(s) on {workers} workers leaves {} worker(s) idle",
                self.files.len(),
                workers - self.files.len()
            ));
        }
        Ok((
            ReplayRun {
                source: self.clone(),
                partition: Partition::even(self.files.len(), workers),
            },
            warnings,
        ))
    }
}

/// The prepared state of one replay run: the source description plus the
/// contiguous assignment of shard files to workers.  Replaying a shard set
/// on as many workers as wrote it reproduces the generation run's
/// per-worker layout exactly (worker `p` streams `block_<p>`), which is what
/// makes the two runs' metric reports comparable worker for worker.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    source: ReplaySource,
    partition: Partition,
}

impl SourceRun for ReplayRun {
    fn stream_worker<E, F>(
        &self,
        worker: usize,
        chunk: &mut EdgeChunk,
        mut sink: F,
    ) -> Result<u64, E>
    where
        E: From<SparseError>,
        F: FnMut(&[(u64, u64)]) -> Result<(), E>,
    {
        chunk.try_flush(&mut sink)?;
        let mut delivered = 0u64;
        for index in self.partition.range(worker) {
            let file = &self.source.files[index];
            delivered += match self.source.format {
                BlockFormat::Tsv => stream_tsv_shard(
                    file,
                    self.source.vertices,
                    self.source.checksums[index],
                    chunk,
                    &mut sink,
                ),
                BlockFormat::Binary | BlockFormat::Compressed => {
                    stream_binary_shard(file, self.source.vertices, chunk, &mut sink)
                }
            }?;
        }
        Ok(delivered)
    }

    fn predicted_properties(&self) -> Option<GraphProperties> {
        // A replay measures; the property sheet of the stored graph is
        // whatever the metrics engine finds.
        None
    }

    fn validate(&self, measured: &GraphProperties) -> ValidationReport {
        let mut checks = vec![FieldCheck::exact(
            "vertices",
            self.source.vertices,
            &measured.vertices,
        )];
        if let Some(expected) = self.source.expected_edges {
            checks.push(FieldCheck::exact("edges", expected, &measured.edges));
        }
        ValidationReport::from_checks(checks)
    }

    fn split_plan(&self) -> Option<SplitPlan> {
        None
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            kind: "replay",
            seed: None,
            star_points: self.source.star_points.clone(),
            self_loop: self.source.self_loop.clone(),
            vertices: self.source.vertices.to_string(),
            predicted_edges: self
                .source
                .expected_edges
                .map(|edges| edges.to_string())
                .unwrap_or_else(|| "unknown".to_string()),
            split_index: 0,
            max_c_edges: 0,
            max_b_edges: 0,
            self_loop_policy: "replay".to_string(),
        }
    }
}

/// Wrap a shard-local failure with the shard's path and lift it into the
/// stream's error type.
fn shard_error<E: From<SparseError>>(path: &Path, error: SparseError) -> E {
    E::from(SparseError::with_path(path, error))
}

/// Push one bounds-checked edge into the chunk, flushing when full.
#[inline]
fn push_edge<E, F>(
    path: &Path,
    vertices: u64,
    chunk: &mut EdgeChunk,
    sink: &mut F,
    row: u64,
    col: u64,
) -> Result<(), E>
where
    E: From<SparseError>,
    F: FnMut(&[(u64, u64)]) -> Result<(), E>,
{
    if row >= vertices || col >= vertices {
        return Err(shard_error(
            path,
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: vertices,
                ncols: vertices,
            },
        ));
    }
    chunk.push(row, col);
    if chunk.is_full() {
        chunk.try_flush(sink)?;
    }
    Ok(())
}

/// Stream one TSV shard (`row<TAB>col[<TAB>value]` lines, `#` comments)
/// through the chunk without materialising it.
///
/// When `expected_checksum` is given (from the run's manifest or progress
/// journal), the whole file is FNV-1a-hashed as it streams and verified at
/// the end; a mismatch fails with [`SparseError::ChecksumMismatch`] naming
/// the shard.
pub(crate) fn stream_tsv_shard<E, F>(
    path: &Path,
    vertices: u64,
    expected_checksum: Option<u64>,
    chunk: &mut EdgeChunk,
    sink: &mut F,
) -> Result<u64, E>
where
    E: From<SparseError>,
    F: FnMut(&[(u64, u64)]) -> Result<(), E>,
{
    let file = std::fs::File::open(path).map_err(|e| shard_error(path, e.into()))?;
    let mut reader = BufReader::with_capacity(1 << 18, file);
    let mut delivered = 0u64;
    let mut hasher = Fnv1a::new();
    // One reused line buffer for the whole shard — `lines()` would allocate
    // a fresh String per edge on the replay hot path.
    let mut line = String::new();
    let mut number = 0usize;
    loop {
        line.clear();
        if reader
            .read_line(&mut line)
            .map_err(|e| shard_error(path, e.into()))?
            == 0
        {
            break;
        }
        if expected_checksum.is_some() {
            // read_line hands back the exact bytes read (newline included),
            // so hashing the lines hashes the file.
            hasher.update(line.as_bytes());
        }
        number += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parse_error = |message: String| {
            shard_error::<E>(
                path,
                SparseError::Parse {
                    line: number,
                    message,
                },
            )
        };
        let mut fields = trimmed.split_whitespace();
        let mut endpoint = |what: &str| -> Result<u64, E> {
            fields
                .next()
                .ok_or_else(|| parse_error(format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|e| parse_error(format!("bad {what}: {e}")))
        };
        let row = endpoint("row")?;
        let col = endpoint("col")?;
        // Bounds-check here, where the line number is known, so an
        // out-of-range endpoint reports shard *and* line.
        if row >= vertices || col >= vertices {
            return Err(parse_error(format!(
                "edge ({row}, {col}) out of bounds for {vertices} vertices"
            )));
        }
        push_edge(path, vertices, chunk, sink, row, col)?;
        delivered += 1;
    }
    if let Some(expected) = expected_checksum {
        let actual = hasher.finish();
        if actual != expected {
            return Err(shard_error(
                path,
                SparseError::ChecksumMismatch { expected, actual },
            ));
        }
    }
    chunk.try_flush(sink)?;
    Ok(delivered)
}

/// Stream one binary shard through the chunk in bounded buffers: v4
/// delta/varint frames one bounded slab at a time, v2/v3 interleaved pairs
/// slab by slab, v1 split arrays through two cursors walking the row and
/// column segments in lockstep.  v3/v4 shards carry their payload checksum
/// in the header; it is verified as the shard streams, and a mismatch fails
/// with [`SparseError::ChecksumMismatch`] naming the shard — including when
/// the corruption first surfaces as an undecodable frame or an
/// out-of-bounds edge mid-stream.
pub(crate) fn stream_binary_shard<E, F>(
    path: &Path,
    vertices: u64,
    chunk: &mut EdgeChunk,
    sink: &mut F,
) -> Result<u64, E>
where
    E: From<SparseError>,
    F: FnMut(&[(u64, u64)]) -> Result<(), E>,
{
    let file = std::fs::File::open(path).map_err(|e| shard_error(path, e.into()))?;
    let file_len = file
        .metadata()
        .map_err(|e| shard_error(path, e.into()))?
        .len();
    let mut reader = BufReader::with_capacity(1 << 18, &file);
    // The single owner of the header format (shared with read_block_bin)
    // validates magic, version, and the declared count against the actual
    // file length before anything streams.
    let header = read_block_header(file_len, &mut reader).map_err(|e| shard_error(path, e))?;
    let (version, nnz) = (header.version, header.nnz);

    if version == BLOCK_VERSION_COMPRESSED {
        // Delta/varint frames, one bounded slab per frame: read each
        // frame's 8-byte header, then its body (at most ~1.3 MiB for a
        // full frame of worst-case varints), hashing everything so the
        // header checksum is verified once the payload is exhausted.
        let mut hasher = Fnv1a::new();
        let mut body = Vec::new();
        let mut frame = Vec::new();
        let mut decoded = 0u64;
        let mut remaining = header
            .payload_len
            // lint:allow(no-expect) -- read_block_header always sets payload_len for v4
            .expect("v4 header carries a payload length");
        while remaining > 0 {
            let mut frame_head = [0u8; codec::FRAME_HEADER_LEN];
            if remaining < codec::FRAME_HEADER_LEN as u64 {
                return Err(shard_error(
                    path,
                    SparseError::Parse {
                        line: 0,
                        message: "compressed shard payload ends mid frame header".into(),
                    },
                ));
            }
            reader
                .read_exact(&mut frame_head)
                .map_err(|e| shard_error(path, e.into()))?;
            hasher.update(&frame_head);
            remaining -= codec::FRAME_HEADER_LEN as u64;
            let (count, byte_len) = codec::frame_header(&frame_head);
            if u64::from(byte_len) > remaining {
                return Err(shard_error(
                    path,
                    SparseError::Parse {
                        line: 0,
                        message: format!(
                            "compressed shard frame declares {byte_len} bytes but only {remaining} remain"
                        ),
                    },
                ));
            }
            body.resize(byte_len as usize, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| shard_error(path, e.into()))?;
            hasher.update(&body);
            remaining -= u64::from(byte_len);
            let mut failure: Option<E> = None;
            match codec::decode_frame(count, &body, &mut frame) {
                Err(e) => failure = Some(E::from(shard_error(path, e))),
                Ok(()) => {
                    decoded += u64::from(count);
                    for &(row, col) in &frame {
                        if let Err(e) = push_edge(path, vertices, chunk, sink, row, col) {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
            if let Some(err) = failure {
                // A corrupt varint decodes to garbage — an undecodable
                // frame or a wildly out-of-range edge — long before the
                // end-of-payload checksum would run.  Prefer reporting the
                // cause over the symptom: hash the unread remainder and, if
                // the stored checksum disagrees, the shard is corrupt.
                // When the checksum *does* match (a genuine downstream
                // failure over an intact shard), the original error stands.
                if let Some(expected) = header.checksum {
                    let mut drain = vec![0u8; 1 << 16];
                    while remaining > 0 {
                        let take = remaining.min(drain.len() as u64) as usize;
                        if reader.read_exact(&mut drain[..take]).is_err() {
                            break;
                        }
                        hasher.update(&drain[..take]);
                        remaining -= take as u64;
                    }
                    let actual = hasher.finish();
                    if remaining == 0 && actual != expected {
                        return Err(E::from(shard_error(
                            path,
                            SparseError::ChecksumMismatch { expected, actual },
                        )));
                    }
                }
                return Err(err);
            }
        }
        if let Some(expected) = header.checksum {
            let actual = hasher.finish();
            if actual != expected {
                return Err(shard_error(
                    path,
                    SparseError::ChecksumMismatch { expected, actual },
                ));
            }
        }
        if decoded != nnz {
            return Err(shard_error(
                path,
                SparseError::Parse {
                    line: 0,
                    message: format!(
                        "compressed shard declares {nnz} entries but its frames decode {decoded}"
                    ),
                },
            ));
        }
    } else if version != BLOCK_VERSION {
        // Interleaved (row, col) pairs: 4096 at a time.
        let mut buffer = [0u8; 16 * 4096];
        let mut remaining = nnz;
        let mut hasher = Fnv1a::new();
        while remaining > 0 {
            let pairs = remaining.min(4096) as usize;
            let bytes = &mut buffer[..16 * pairs];
            reader
                .read_exact(bytes)
                .map_err(|e| shard_error(path, e.into()))?;
            if header.checksum.is_some() {
                hasher.update(bytes);
            }
            for pair in bytes.chunks_exact(16) {
                // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: chunks_exact(16) halves are exactly 8 bytes
                let row = le_u64(&pair[..8]);
                // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: chunks_exact(16) halves are exactly 8 bytes
                let col = le_u64(&pair[8..]);
                push_edge(path, vertices, chunk, sink, row, col)?;
            }
            remaining -= pairs as u64;
        }
        if let Some(expected) = header.checksum {
            let actual = hasher.finish();
            if actual != expected {
                return Err(shard_error(
                    path,
                    SparseError::ChecksumMismatch { expected, actual },
                ));
            }
        }
    } else {
        // Split arrays: a second cursor over the same file walks the column
        // segment while the buffered reader walks the rows.
        let mut cols_file = std::fs::File::open(path).map_err(|e| shard_error(path, e.into()))?;
        cols_file
            .seek(SeekFrom::Start(BLOCK_HEADER_LEN + 8 * nnz))
            .map_err(|e| shard_error(path, e.into()))?;
        let mut cols = BufReader::with_capacity(1 << 18, cols_file);
        let mut row_bytes = [0u8; 8 * 4096];
        let mut col_bytes = [0u8; 8 * 4096];
        let mut remaining = nnz;
        while remaining > 0 {
            let run = remaining.min(4096) as usize;
            reader
                .read_exact(&mut row_bytes[..8 * run])
                .map_err(|e| shard_error(path, e.into()))?;
            cols.read_exact(&mut col_bytes[..8 * run])
                .map_err(|e| shard_error(path, e.into()))?;
            for (row, col) in row_bytes[..8 * run]
                .chunks_exact(8)
                .zip(col_bytes[..8 * run].chunks_exact(8))
            {
                // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: chunks_exact(8) yields exactly 8 bytes
                let row = le_u64(row);
                // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: chunks_exact(8) yields exactly 8 bytes
                let col = le_u64(col);
                push_edge(path, vertices, chunk, sink, row, col)?;
            }
            remaining -= run as u64;
        }
    }
    chunk.try_flush(sink)?;
    Ok(nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::writer::write_block_bin;
    use kron_core::{KroneckerDesign, SelfLoop};
    use kron_sparse::CooMatrix;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_replay_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn written_run(dir: &Path, format: BlockFormat) -> Vec<(u64, u64)> {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let report = match format {
            BlockFormat::Tsv => Pipeline::for_design(&design)
                .workers(3)
                .split_index(1)
                .max_c_edges(100_000)
                .write_tsv(dir)
                .unwrap(),
            BlockFormat::Binary => Pipeline::for_design(&design)
                .workers(3)
                .split_index(1)
                .max_c_edges(100_000)
                .write_binary(dir)
                .unwrap(),
            BlockFormat::Compressed => Pipeline::for_design(&design)
                .workers(3)
                .split_index(1)
                .max_c_edges(100_000)
                .write_compressed(dir)
                .unwrap(),
        };
        let mut edges: Vec<(u64, u64)> = report
            .files
            .unwrap()
            .read_assembled()
            .unwrap()
            .iter()
            .map(|(r, c, _)| (r, c))
            .collect();
        edges.sort_unstable();
        edges
    }

    #[test]
    fn replay_streams_the_exact_stored_edge_set() {
        for format in [
            BlockFormat::Tsv,
            BlockFormat::Binary,
            BlockFormat::Compressed,
        ] {
            let dir = temp_dir(&format!("stream_{format:?}"));
            let expected = written_run(&dir, format);
            let source = ReplaySource::from_directory(&dir).unwrap();
            assert_eq!(source.format(), format);
            assert_eq!(source.files().len(), 3);

            let (run, warnings) = source.prepare(3).unwrap();
            assert!(warnings.is_empty());
            let mut replayed = Vec::new();
            for worker in 0..3 {
                let mut chunk = EdgeChunk::new(513);
                run.stream_worker::<SparseError, _>(worker, &mut chunk, |edges| {
                    replayed.extend_from_slice(edges);
                    Ok(())
                })
                .unwrap();
            }
            replayed.sort_unstable();
            assert_eq!(replayed, expected, "{format:?} replay changed the edges");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn idle_workers_warn_and_deliver_nothing() {
        let dir = temp_dir("idle_workers");
        let expected = written_run(&dir, BlockFormat::Binary);
        let source = ReplaySource::from_directory(&dir).unwrap();
        let (run, warnings) = source.prepare(5).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("idle"));
        let mut replayed = Vec::new();
        for worker in 0..5 {
            let mut chunk = EdgeChunk::new(64);
            run.stream_worker::<SparseError, _>(worker, &mut chunk, |edges| {
                replayed.extend_from_slice(edges);
                Ok(())
            })
            .unwrap();
        }
        replayed.sort_unstable();
        assert_eq!(replayed, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_split_array_blocks_replay_without_a_manifest() {
        // write_block_bin emits the v1 split-array layout; replay it through
        // the two-cursor streamer.
        let dir = temp_dir("v1_blocks");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (3, 3), (1, 0)];
        let block = CooMatrix::from_edges(4, 4, edges.clone()).unwrap();
        let path = dir.join("block_00000.kbk");
        write_block_bin(&block, &path).unwrap();
        let set = BlockFileSet {
            directory: dir.clone(),
            files: vec![path],
            vertices: 4,
            format: BlockFormat::Binary,
        };
        let source = ReplaySource::from_file_set(&set).expect_edges(5);
        let (run, _) = source.prepare(1).unwrap();
        let mut replayed = Vec::new();
        let mut chunk = EdgeChunk::new(2);
        let delivered = run
            .stream_worker::<SparseError, _>(0, &mut chunk, |slice| {
                replayed.extend_from_slice(slice);
                Ok(())
            })
            .unwrap();
        assert_eq!(delivered, 5);
        assert_eq!(replayed, edges);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_name_the_failing_shard() {
        let dir = temp_dir("corrupt");
        let _ = written_run(&dir, BlockFormat::Binary);
        // Corrupt the middle shard's magic.
        let victim = dir.join("block_00001.kbk");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[..4].copy_from_slice(b"NOPE");
        std::fs::write(&victim, &bytes).unwrap();

        let source = ReplaySource::from_directory(&dir).unwrap();
        let (run, _) = source.prepare(3).unwrap();
        let mut chunk = EdgeChunk::new(64);
        let error = run
            .stream_worker::<SparseError, _>(1, &mut chunk, |_| Ok(()))
            .unwrap_err();
        assert!(
            error.to_string().contains("block_00001"),
            "error must name the shard: {error}"
        );

        // A missing shard is named too.
        std::fs::remove_file(&victim).unwrap();
        let error = run
            .stream_worker::<SparseError, _>(1, &mut chunk, |_| Ok(()))
            .unwrap_err();
        assert!(error.to_string().contains("block_00001"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tsv_parse_errors_carry_line_numbers_and_bounds_are_checked() {
        let dir = temp_dir("bad_tsv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("block_00000.tsv");
        std::fs::write(&path, "0\t1\t1\n# comment\n\nnot-a-number\t2\t1\n").unwrap();
        let set = BlockFileSet {
            directory: dir.clone(),
            files: vec![path.clone()],
            vertices: 4,
            format: BlockFormat::Tsv,
        };
        let source = ReplaySource::from_file_set(&set);
        let (run, _) = source.prepare(1).unwrap();
        let mut chunk = EdgeChunk::new(64);
        let error = run
            .stream_worker::<SparseError, _>(0, &mut chunk, |_| Ok(()))
            .unwrap_err();
        let message = error.to_string();
        assert!(message.contains("block_00000.tsv"), "{message}");
        assert!(message.contains("line 4"), "{message}");

        // An out-of-bounds endpoint is rejected with the shard *and* the
        // offending line named.
        std::fs::write(&path, "0\t1\t1\n0\t9\t1\n").unwrap();
        let error = run
            .stream_worker::<SparseError, _>(0, &mut chunk, |_| Ok(()))
            .unwrap_err();
        assert!(error.to_string().contains("out of bounds"), "{error}");
        assert!(error.to_string().contains("block_00000.tsv"), "{error}");
        assert!(error.to_string().contains("line 2"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directories_without_a_replayable_run_are_rejected() {
        // No manifest at all.
        let dir = temp_dir("no_manifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ReplaySource::from_directory(&dir).is_err());

        // A counting run's manifest has no shards to replay.
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let report = Pipeline::for_design(&design).workers(2).count().unwrap();
        report
            .manifest
            .write_to(&dir.join(MANIFEST_FILE_NAME))
            .unwrap();
        assert!(matches!(
            ReplaySource::from_directory(&dir),
            Err(CoreError::InvalidConfig { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_workers_rejected() {
        let dir = temp_dir("zero_workers");
        let _ = written_run(&dir, BlockFormat::Tsv);
        let source = ReplaySource::from_directory(&dir).unwrap();
        assert!(matches!(
            source.prepare(0),
            Err(CoreError::InvalidConfig { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn descriptor_reflects_the_replayed_manifest() {
        let dir = temp_dir("descriptor");
        let _ = written_run(&dir, BlockFormat::Binary);
        let source = ReplaySource::from_directory(&dir).unwrap();
        let (run, _) = source.prepare(2).unwrap();
        let descriptor = run.descriptor();
        assert_eq!(descriptor.kind, "replay");
        assert_eq!(descriptor.star_points, vec![3, 4, 5]);
        assert_eq!(descriptor.self_loop, "Centre");
        assert_eq!(descriptor.self_loop_policy, "replay");
        assert_eq!(descriptor.vertices, "120");
        assert!(run.predicted_properties().is_none());
        assert!(run.split_plan().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
