//! Triangle-counting ablation: the paper's linear-algebra formula
//! `1ᵀ((A·A) ⊗ A)1 / 6` (accumulator-based SpGEMM) versus the ordered
//! merge-based counter, on realised Kronecker graphs of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kron_core::{KroneckerDesign, SelfLoop};
use kron_sparse::triangles::{count_triangles, count_triangles_merge, count_triangles_oriented};
use kron_sparse::{CsrMatrix, PlusTimes};

fn realised_csr(points: &[u64]) -> CsrMatrix<u64> {
    let design = KroneckerDesign::from_star_points(points, SelfLoop::Centre).expect("valid design");
    let graph = design.realize(10_000_000).expect("fits in memory");
    CsrMatrix::from_coo::<PlusTimes>(&graph).expect("fits in memory")
}

fn bench_triangle_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_count");
    group.sample_size(10);

    for points in [&[3u64, 4, 5][..], &[3, 4, 5, 9], &[3, 4, 5, 9, 16]] {
        let csr = realised_csr(points);
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        let label = format!("{points:?}");

        // The A·A formula materialises quadratically dense hub rows, so it is
        // only benchmarked at the sizes where that stays in memory.
        if points.len() <= 4 {
            group.bench_with_input(BenchmarkId::new("spgemm_formula", &label), &(), |b, _| {
                b.iter(|| count_triangles(&csr).expect("countable"));
            });
            group.bench_with_input(BenchmarkId::new("ordered_merge", &label), &(), |b, _| {
                b.iter(|| count_triangles_merge(&csr).expect("countable"));
            });
        }
        group.bench_with_input(BenchmarkId::new("degree_ordered", &label), &(), |b, _| {
            b.iter(|| count_triangles_oriented(&csr).expect("countable"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle_count);
criterion_main!(benches);
