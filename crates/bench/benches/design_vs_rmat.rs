//! The design-time comparison behind the paper's motivation: exact Kronecker
//! design search versus the R-MAT trial-and-error loop, at matching edge
//! targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kron_bignum::BigUint;
use kron_core::{DesignSearch, DesignTargets};
use kron_rmat::{TrialAndErrorDesigner, TrialTargets};

fn bench_design_vs_rmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_vs_rmat");
    group.sample_size(10);

    for &target in &[50_000u64, 250_000] {
        group.bench_with_input(
            BenchmarkId::new("exact_design_search", target),
            &target,
            |b, &target| {
                let search = DesignSearch::default();
                b.iter(|| {
                    let mut targets = DesignTargets::edges(BigUint::from(target));
                    targets.max_constituents = 5;
                    search.search(&targets, 1).expect("search succeeds").len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rmat_trial_and_error", target),
            &target,
            |b, &target| {
                b.iter(|| {
                    TrialAndErrorDesigner::new(1)
                        .run(&TrialTargets {
                            unique_edges: target,
                            edge_tolerance: 0.05,
                            max_iterations: 10,
                        })
                        .iteration_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_design_vs_rmat);
criterion_main!(benches);
