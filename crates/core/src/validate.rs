//! Validation: measuring a realised graph and comparing it with predictions.
//!
//! The paper's headline validation (Figure 4) is that the measured degree
//! distribution of a generated trillion-edge graph *exactly* equals the
//! predicted one.  This module measures [`GraphProperties`] from a realised
//! adjacency matrix and produces a field-by-field [`ValidationReport`]
//! against the analytic prediction.

use serde::{Deserialize, Serialize};
use std::fmt;

use kron_bignum::BigUint;
use kron_sparse::reduce::degree_distribution as measured_histogram;
use kron_sparse::select::{empty_vertices, has_duplicates, self_loop_count};
use kron_sparse::triangles::count_triangles_coo;
use kron_sparse::CooMatrix;

use crate::degree::DegreeDistribution;
use crate::design::KroneckerDesign;
use crate::error::CoreError;
use crate::properties::GraphProperties;

/// Measure the exact properties of a realised adjacency matrix.
///
/// Triangle counting is only attempted when the graph has no self-loops
/// (the formula assumes a simple graph); otherwise `triangles` is `None`.
pub fn measure_properties(graph: &CooMatrix<u64>) -> Result<GraphProperties, CoreError> {
    let loops = self_loop_count(graph) as u64;
    let triangles = if loops == 0 {
        Some(BigUint::from(count_triangles_coo(graph)?))
    } else {
        None
    };
    let histogram = measured_histogram(graph);
    let mut distribution = DegreeDistribution::from_histogram(&histogram);
    // Degree-zero vertices are structurally impossible in Kronecker designs
    // but may exist in arbitrary input graphs; keep them out of the
    // distribution (they carry no edge endpoints) while still reporting the
    // correct vertex count through `vertices`.
    let zero = BigUint::zero();
    if !distribution.count(&zero).is_zero() {
        let n = distribution.count(&zero);
        distribution.subtract(&zero, &n);
    }
    Ok(GraphProperties {
        vertices: BigUint::from(graph.nrows()),
        edges: BigUint::from(graph.nnz() as u64),
        triangles,
        self_loops: BigUint::from(loops),
        degree_distribution: distribution,
    })
}

/// One field of a validation comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldCheck {
    /// Name of the compared quantity.
    pub field: String,
    /// Predicted value (decimal string).
    pub predicted: String,
    /// Measured value (decimal string).
    pub measured: String,
    /// Whether the two are exactly equal.
    pub matches: bool,
}

/// The result of validating a realised graph against its design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-field comparisons (vertices, edges, triangles, self-loops,
    /// degree-distribution support and counts).
    pub checks: Vec<FieldCheck>,
    /// Structural health of the realised graph: no empty vertices.
    pub no_empty_vertices: bool,
    /// Structural health of the realised graph: no duplicate edges.
    pub no_duplicate_edges: bool,
}

impl ValidationReport {
    /// Whether every field matched and the structure is clean.
    pub fn is_exact_match(&self) -> bool {
        self.no_empty_vertices && self.no_duplicate_edges && self.checks.iter().all(|c| c.matches)
    }

    /// The names of fields that failed.
    pub fn failures(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.matches)
            .map(|c| c.field.as_str())
            .collect()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for check in &self.checks {
            writeln!(
                f,
                "{:<22} predicted {:>28}  measured {:>28}  {}",
                check.field,
                check.predicted,
                check.measured,
                if check.matches { "OK" } else { "MISMATCH" }
            )?;
        }
        writeln!(f, "no empty vertices: {}", self.no_empty_vertices)?;
        writeln!(f, "no duplicate edges: {}", self.no_duplicate_edges)?;
        write!(f, "exact match: {}", self.is_exact_match())
    }
}

/// Compare predicted properties with a measured realisation.
pub fn compare_properties(
    predicted: &GraphProperties,
    measured: &GraphProperties,
) -> ValidationReport {
    let mut checks = Vec::new();
    let mut push = |field: &str, p: String, m: String| {
        checks.push(FieldCheck {
            field: field.to_string(),
            matches: p == m,
            predicted: p,
            measured: m,
        });
    };
    push(
        "vertices",
        predicted.vertices.to_string(),
        measured.vertices.to_string(),
    );
    push(
        "edges",
        predicted.edges.to_string(),
        measured.edges.to_string(),
    );
    push(
        "triangles",
        predicted
            .triangles
            .as_ref()
            .map_or("n/a".into(), |t| t.to_string()),
        measured
            .triangles
            .as_ref()
            .map_or("n/a".into(), |t| t.to_string()),
    );
    push(
        "self_loops",
        predicted.self_loops.to_string(),
        measured.self_loops.to_string(),
    );
    push(
        "distinct_degrees",
        predicted.distinct_degrees().to_string(),
        measured.distinct_degrees().to_string(),
    );
    push(
        "max_degree",
        predicted.max_degree().to_string(),
        measured.max_degree().to_string(),
    );
    checks.push(FieldCheck {
        field: "degree_distribution".to_string(),
        matches: predicted.degree_distribution == measured.degree_distribution,
        predicted: format!(
            "{} support points",
            predicted.degree_distribution.support_size()
        ),
        measured: format!(
            "{} support points",
            measured.degree_distribution.support_size()
        ),
    });
    ValidationReport {
        checks,
        no_empty_vertices: true,
        no_duplicate_edges: true,
    }
}

/// Realise a design (bounded by `max_edges`), measure it, and compare with
/// the analytic prediction — the full "design, generate, validate" loop of
/// the paper on a single machine.
pub fn validate_design(
    design: &KroneckerDesign,
    max_edges: u64,
) -> Result<ValidationReport, CoreError> {
    let predicted = design.properties();
    let graph = design.realize(max_edges)?;
    let measured = measure_properties(&graph)?;
    let mut report = compare_properties(&predicted, &measured);
    report.no_empty_vertices = empty_vertices(&graph).is_empty();
    report.no_duplicate_edges = !has_duplicates(&graph);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::SelfLoop;

    #[test]
    fn validate_small_designs_exactly() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 5, 9], self_loop).unwrap();
            let report = validate_design(&design, 1_000_000).unwrap();
            assert!(
                report.is_exact_match(),
                "validation failed for {self_loop:?}: {:?}",
                report.failures()
            );
        }
    }

    #[test]
    fn measured_properties_of_known_graph() {
        // Triangle graph plus an isolated vertex.
        let g = CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
            .unwrap();
        let props = measure_properties(&g).unwrap();
        assert_eq!(props.vertices, BigUint::from(4u64));
        assert_eq!(props.edges, BigUint::from(6u64));
        assert_eq!(props.triangles, Some(BigUint::from(1u64)));
        assert_eq!(props.self_loops, BigUint::zero());
        assert_eq!(
            props.degree_distribution.count(&BigUint::from(2u64)),
            BigUint::from(3u64)
        );
        // The isolated vertex contributes no degree support but is counted.
        assert_eq!(
            props.degree_distribution.total_vertices(),
            BigUint::from(3u64)
        );
    }

    #[test]
    fn self_loops_disable_triangle_measurement() {
        let g = CooMatrix::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).unwrap();
        let props = measure_properties(&g).unwrap();
        assert_eq!(props.self_loops, BigUint::from(1u64));
        assert_eq!(props.triangles, None);
    }

    #[test]
    fn mismatches_are_reported() {
        let design_a = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let design_b = KroneckerDesign::from_star_points(&[3, 5], SelfLoop::None).unwrap();
        let report = compare_properties(&design_a.properties(), &design_b.properties());
        assert!(!report.is_exact_match());
        assert!(report.failures().contains(&"vertices"));
        assert!(report.failures().contains(&"edges"));
        let text = report.to_string();
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("exact match: false"));
    }

    #[test]
    fn report_serialises() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        let report = validate_design(&design, 10_000).unwrap();
        let check = &report.checks[0];
        assert_eq!(check.field, "vertices");
        assert!(check.matches);
    }
}
