//@ path: crates/gen/src/under_test.rs
pub struct Pipeline;

impl Pipeline {
    pub fn count(self, values: &[u32]) -> u32 {
        total(values)
    }
}

fn total(values: &[u32]) -> u32 {
    *values.first().unwrap() //~ no-unwrap, panic-reachability
}
