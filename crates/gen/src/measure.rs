//! Distributed measurement of generated graphs.
//!
//! The paper validates generated graphs by measuring their degree
//! distribution and comparing it with the prediction (Figure 4).  These
//! helpers measure a [`DistributedGraph`] *block by block* — each worker
//! contributes a partial degree histogram and the partials are merged — so
//! the full adjacency matrix never has to be assembled.

use std::collections::BTreeMap;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;
use kron_core::{CoreError, DegreeDistribution, GraphProperties};
use kron_sparse::triangles::count_triangles_coo;

use crate::generator::DistributedGraph;

/// Per-worker load-balance summary (the paper's "same number of edges on
/// each processor" claim, quantified).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Edge count of each worker.
    pub edges_per_worker: Vec<u64>,
    /// Largest per-worker edge count.
    pub max_edges: u64,
    /// Smallest per-worker edge count.
    pub min_edges: u64,
    /// Max / mean ratio (1.0 = perfectly balanced).
    pub max_over_mean: f64,
}

impl BalanceReport {
    /// Build the balance report of a distributed graph.
    pub fn of(graph: &DistributedGraph) -> Self {
        BalanceReport::from_worker_counts(graph.edges_per_worker())
    }

    /// Build the balance report of any run from its generation statistics —
    /// the pipeline-era entry point
    /// (`BalanceReport::from_stats(&report.stats)`).
    pub fn from_stats(stats: &crate::stats::GenerationStats) -> Self {
        BalanceReport::from_worker_counts(stats.edges_per_worker.clone())
    }

    /// Build the balance report from raw per-worker edge counts (worker
    /// order) — the constructor the streaming-metrics engine uses.
    pub fn from_worker_counts(edges_per_worker: Vec<u64>) -> Self {
        let max_edges = edges_per_worker.iter().copied().max().unwrap_or(0);
        let min_edges = edges_per_worker.iter().copied().min().unwrap_or(0);
        let total: u64 = edges_per_worker.iter().sum();
        let mean = if edges_per_worker.is_empty() {
            0.0
        } else {
            total as f64 / edges_per_worker.len() as f64
        };
        let max_over_mean = if mean > 0.0 {
            max_edges as f64 / mean
        } else {
            1.0
        };
        BalanceReport {
            edges_per_worker,
            max_edges,
            min_edges,
            max_over_mean,
        }
    }

    /// Whether per-worker edge counts differ by at most `tolerance` edges.
    pub fn is_balanced_within(&self, tolerance: u64) -> bool {
        self.max_edges - self.min_edges <= tolerance
    }
}

/// Measure the degree distribution of a distributed graph without assembling
/// it: each block produces a partial row-count histogram in parallel and the
/// partials are merged.
pub fn measured_degree_distribution(graph: &DistributedGraph) -> DegreeDistribution {
    let partials: Vec<BTreeMap<u64, u64>> = graph
        .blocks
        .par_iter()
        .map(|block| {
            let mut rows: BTreeMap<u64, u64> = BTreeMap::new();
            for &r in block.edges.row_indices() {
                *rows.entry(r).or_insert(0) += 1;
            }
            rows
        })
        .collect();

    // Merge per-block row counts into global per-vertex degrees...
    let mut per_vertex: BTreeMap<u64, u64> = BTreeMap::new();
    for partial in partials {
        for (vertex, count) in partial {
            *per_vertex.entry(vertex).or_insert(0) += count;
        }
    }
    // ...and histogram the degrees.
    let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, degree) in per_vertex {
        *histogram.entry(degree).or_insert(0) += 1;
    }
    DegreeDistribution::from_histogram(&histogram)
}

/// Measure the full property sheet of a distributed graph.  Triangles are
/// counted on the assembled matrix (exact but memory-bound), so they are
/// only attempted when the total edge count is at most `max_triangle_edges`.
pub fn measured_properties(
    graph: &DistributedGraph,
    max_triangle_edges: u64,
) -> Result<GraphProperties, CoreError> {
    let distribution = measured_degree_distribution(graph);
    let edges = graph.edge_count();
    let self_loops: u64 = graph
        .blocks
        .iter()
        .map(|b| b.self_loop_count() as u64)
        .sum();
    let triangles = if edges <= max_triangle_edges && self_loops == 0 {
        let assembled = graph.assemble();
        Some(BigUint::from(count_triangles_coo(&assembled)?))
    } else {
        None
    };
    Ok(GraphProperties {
        vertices: BigUint::from(graph.vertices),
        edges: BigUint::from(edges),
        triangles,
        self_loops: BigUint::from(self_loops),
        degree_distribution: distribution,
    })
}

#[cfg(test)]
#[allow(deprecated)] // measures the legacy materialising path on purpose
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ParallelGenerator};
    use kron_core::{KroneckerDesign, SelfLoop};

    fn generate(points: &[u64], self_loop: SelfLoop, workers: usize) -> DistributedGraph {
        let design = KroneckerDesign::from_star_points(points, self_loop).unwrap();
        ParallelGenerator::new(GeneratorConfig {
            workers,
            max_c_edges: 10_000,
            max_total_edges: 5_000_000,
        })
        .generate(&design)
        .unwrap()
    }

    #[test]
    fn distributed_distribution_matches_prediction() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let graph = generate(&[3, 4, 5, 9], self_loop, 6);
            assert_eq!(
                measured_degree_distribution(&graph),
                design.degree_distribution(),
                "distributed measurement mismatch for {self_loop:?}"
            );
        }
    }

    #[test]
    fn distributed_properties_match_prediction_exactly() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let graph = generate(&[3, 4, 5, 9], SelfLoop::Centre, 4);
        let measured = measured_properties(&graph, 1_000_000).unwrap();
        assert!(design.properties().exactly_matches(&measured));
    }

    #[test]
    fn triangle_counting_skipped_when_over_budget() {
        let graph = generate(&[3, 4, 5], SelfLoop::None, 2);
        let measured = measured_properties(&graph, 10).unwrap();
        assert!(measured.triangles.is_none());
        assert_eq!(measured.edges, BigUint::from(480u64));
    }

    #[test]
    fn balance_report_reflects_even_partition() {
        // B ends up with 48 triples, which 8 workers divide exactly: the
        // paper's "same number of edges on each processor" claim holds with
        // zero imbalance.
        let graph = generate(&[3, 4, 5, 9, 16], SelfLoop::None, 8);
        let report = BalanceReport::of(&graph);
        assert_eq!(
            BalanceReport::from_stats(&graph.stats),
            report,
            "stats-based and block-based balance reports must agree"
        );
        assert!(report.is_balanced_within(0));
        assert!((report.max_over_mean - 1.0).abs() < 1e-9);
        assert_eq!(
            report.edges_per_worker.iter().sum::<u64>(),
            graph.edge_count()
        );

        // When the triple count does not divide evenly the imbalance is at
        // most one B triple, i.e. nnz(C) edges.
        let uneven = generate(&[3, 4, 5, 9], SelfLoop::None, 5);
        let report = BalanceReport::of(&uneven);
        let c_nnz = uneven.split.c_nnz.to_u64().unwrap();
        assert!(report.is_balanced_within(c_nnz));
    }

    #[test]
    fn balance_report_degenerate() {
        let graph = generate(&[2, 2], SelfLoop::None, 1);
        let report = BalanceReport::of(&graph);
        assert_eq!(report.max_edges, report.min_edges);
        assert!(report.is_balanced_within(0));
    }
}
