//@ path: crates/core/src/under_test.rs
// Explicitly seeded streams are the workspace idiom: (seed, index)
// determinism for any worker count.
pub fn splitmix64(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
