//@ path: crates/core/src/under_test.rs
pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap() // lint:allow(no-unwrap) -- fixture proves a reasoned suppression is honoured
}

pub fn second(values: &[u32]) -> u32 {
    // lint:allow(no-unwrap) -- standalone form covers the line below
    *values.get(1).unwrap()
}
