//! The trial-and-error design loop.
//!
//! This is the workflow the paper's introduction criticises: to obtain a
//! graph with given properties from a random generator, the designer picks
//! parameters, generates a full graph, measures it, and adjusts — paying the
//! full generation cost on every iteration.  [`TrialAndErrorDesigner`] runs
//! exactly that loop over R-MAT's `scale`/`edge_factor` parameters so the
//! comparison benches can report its cost next to the exact Kronecker
//! designer, which evaluates a candidate in microseconds without generating
//! anything.

use serde::{Deserialize, Serialize};

use crate::measure::{measure_edge_list, EdgeListStats};
use crate::rmat::{RmatGenerator, RmatParams};

/// Targets for the trial-and-error search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialTargets {
    /// Desired number of *unique* directed edges.
    pub unique_edges: u64,
    /// Acceptable relative error on the edge count (e.g. 0.1 = ±10%).
    pub edge_tolerance: f64,
    /// Maximum number of generate-and-measure iterations.
    pub max_iterations: usize,
}

/// One iteration of the loop: the parameters tried and what they produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialIteration {
    /// R-MAT parameters used in this iteration.
    pub params: RmatParams,
    /// Measured statistics of the generated graph.
    pub stats: EdgeListStats,
    /// Relative error of the unique edge count against the target.
    pub relative_error: f64,
}

/// Outcome of a trial-and-error design run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignLoopReport {
    /// Every iteration in order.
    pub iterations: Vec<TrialIteration>,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Total number of raw edges that had to be generated across the run —
    /// the work an exact designer never performs.
    pub total_edges_generated: u64,
}

impl DesignLoopReport {
    /// Number of iterations performed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// The best (lowest-error) iteration, if any iteration was run.
    pub fn best(&self) -> Option<&TrialIteration> {
        self.iterations.iter().min_by(|a, b| {
            a.relative_error
                .partial_cmp(&b.relative_error)
                // lint:allow(no-expect) -- fitness errors are sums of absolute values of finite floats, so partial_cmp cannot return None
                .expect("finite errors")
        })
    }
}

/// The trial-and-error designer over R-MAT parameters.
#[derive(Debug, Clone)]
pub struct TrialAndErrorDesigner {
    seed: u64,
}

impl TrialAndErrorDesigner {
    /// Create a designer with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        TrialAndErrorDesigner { seed }
    }

    /// Run the loop: start from a scale estimated from the target, generate,
    /// measure, and adjust `scale` / `edge_factor` until the unique-edge
    /// target is met or the iteration budget is exhausted.
    pub fn run(&self, targets: &TrialTargets) -> DesignLoopReport {
        let mut iterations = Vec::new();
        let mut total_edges_generated = 0u64;

        // Initial guess: Graph500 edge factor, scale from the edge target.
        let mut edge_factor = 16u64;
        let mut scale = estimate_scale(targets.unique_edges, edge_factor);
        let mut converged = false;

        for iteration in 0..targets.max_iterations {
            let mut params = RmatParams::graph500(scale);
            params.edge_factor = edge_factor;
            let generator = RmatGenerator::new(params, self.seed.wrapping_add(iteration as u64))
                // lint:allow(no-expect) -- the Graph500-derived initiator constants are a compile-time-valid probability vector
                .expect("graph500-derived parameters are always valid");
            let edges: Vec<(u64, u64)> = (0..params.requested_edges())
                .map(|index| generator.edge_at(index))
                .collect();
            total_edges_generated += edges.len() as u64;
            let stats = measure_edge_list(params.vertices(), &edges);
            let produced = stats.unique_edges.max(1);
            let relative_error =
                (produced as f64 - targets.unique_edges as f64).abs() / targets.unique_edges as f64;
            iterations.push(TrialIteration {
                params,
                stats,
                relative_error,
            });

            if relative_error <= targets.edge_tolerance {
                converged = true;
                break;
            }
            // Adjust: too few unique edges → raise the edge factor (duplicates
            // ate the surplus) or the scale; too many → lower them.
            if produced < targets.unique_edges {
                if edge_factor < 64 {
                    edge_factor += edge_factor.max(2) / 2;
                } else {
                    scale += 1;
                    edge_factor = 16;
                }
            } else if edge_factor > 2 {
                edge_factor -= (edge_factor / 4).max(1);
            } else if scale > 1 {
                scale -= 1;
                edge_factor = 16;
            }
        }
        DesignLoopReport {
            iterations,
            converged,
            total_edges_generated,
        }
    }
}

/// Smallest scale whose requested edge count reaches the target at the given
/// edge factor.
fn estimate_scale(target_edges: u64, edge_factor: u64) -> u32 {
    let mut scale = 1u32;
    while edge_factor * (1u64 << scale) < target_edges && scale < 40 {
        scale += 1;
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_estimation() {
        assert_eq!(estimate_scale(16, 16), 1);
        assert_eq!(estimate_scale(16 * 1024, 16), 10);
        assert_eq!(estimate_scale(16 * 1024 + 1, 16), 11);
    }

    #[test]
    fn loop_converges_for_reachable_target() {
        let designer = TrialAndErrorDesigner::new(42);
        let targets = TrialTargets {
            unique_edges: 12_000,
            edge_tolerance: 0.25,
            max_iterations: 12,
        };
        let report = designer.run(&targets);
        assert!(
            report.converged,
            "loop should converge within 12 iterations"
        );
        assert!(report.iteration_count() >= 1);
        assert!(report.total_edges_generated > 0);
        let best = report.best().unwrap();
        assert!(best.relative_error <= 0.25);
    }

    #[test]
    fn loop_reports_cost_of_every_iteration() {
        let designer = TrialAndErrorDesigner::new(7);
        let targets = TrialTargets {
            unique_edges: 30_000,
            edge_tolerance: 0.02,
            max_iterations: 5,
        };
        let report = designer.run(&targets);
        // Whether or not it converges, every iteration paid a full generation.
        let sum: u64 = report.iterations.iter().map(|i| i.stats.raw_edges).sum();
        assert_eq!(sum, report.total_edges_generated);
        assert!(report.iteration_count() <= 5);
    }

    #[test]
    fn tight_tolerance_may_exhaust_budget() {
        let designer = TrialAndErrorDesigner::new(3);
        let targets = TrialTargets {
            unique_edges: 10_000,
            edge_tolerance: 0.0001,
            max_iterations: 3,
        };
        let report = designer.run(&targets);
        assert!(report.iteration_count() <= 3);
        if !report.converged {
            assert!(report.best().unwrap().relative_error > 0.0001);
        }
    }
}
