//! Human-readable formatting helpers for extreme-scale counts.
//!
//! The paper reports quantities such as `2,705,963,586,782,877,716,483,871,216,764`
//! edges; these helpers produce the same comma-grouped form and a compact
//! scientific approximation for log-log plot axes.

use crate::BigUint;

/// Insert thousands separators into a plain decimal string.
///
/// Non-digit prefixes (a leading `-`) are preserved.
///
/// ```
/// assert_eq!(kron_bignum::grouped("1146617856000"), "1,146,617,856,000");
/// assert_eq!(kron_bignum::grouped("-42"), "-42");
/// ```
pub fn grouped(decimal: &str) -> String {
    let (sign, digits) = match decimal.strip_prefix('-') {
        Some(rest) => ("-", rest),
        None => ("", decimal),
    };
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3 + 1);
    out.push_str(sign);
    for (i, &b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(b as char);
    }
    out
}

/// Approximate a [`BigUint`] as `m.mmme+EE` scientific notation for axis
/// labels and log-log summaries. Exact for values below 10^15.
///
/// ```
/// use kron_bignum::{scientific, BigUint};
/// let x = BigUint::from(10u64).pow(12);
/// assert_eq!(scientific(&x), "1.000e12");
/// assert_eq!(scientific(&BigUint::zero()), "0");
/// ```
pub fn scientific(value: &BigUint) -> String {
    if value.is_zero() {
        return "0".to_string();
    }
    let digits = value.to_string();
    let exponent = digits.len() - 1;
    let mantissa_digits: String = digits.chars().take(5).collect();
    let mantissa: f64 = mantissa_digits.parse::<f64>().unwrap_or(0.0)
        / 10f64.powi(mantissa_digits.len() as i32 - 1);
    format!("{mantissa:.3}e{exponent}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_small_values() {
        assert_eq!(grouped("0"), "0");
        assert_eq!(grouped("7"), "7");
        assert_eq!(grouped("42"), "42");
        assert_eq!(grouped("999"), "999");
        assert_eq!(grouped("1000"), "1,000");
    }

    #[test]
    fn grouped_paper_values() {
        assert_eq!(grouped("11177649600"), "11,177,649,600");
        assert_eq!(grouped("1853002140758"), "1,853,002,140,758");
        assert_eq!(grouped("6777007252427"), "6,777,007,252,427");
        assert_eq!(
            grouped("2705963586782877716483871216764"),
            "2,705,963,586,782,877,716,483,871,216,764"
        );
    }

    #[test]
    fn grouped_negative() {
        assert_eq!(grouped("-1234567"), "-1,234,567");
    }

    #[test]
    fn scientific_values() {
        assert_eq!(scientific(&BigUint::from(1u64)), "1.000e0");
        assert_eq!(scientific(&BigUint::from(950u64)), "9.500e2");
        assert_eq!(scientific(&BigUint::from(1_146_617_856_000u64)), "1.147e12");
        let decetta: BigUint = "2705963586782877716483871216764".parse().unwrap();
        assert_eq!(scientific(&decetta), "2.706e30");
    }
}
