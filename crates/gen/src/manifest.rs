//! Run manifests: the reproducibility record of a pipeline run.
//!
//! Every [`Pipeline`](crate::pipeline::Pipeline) run produces a
//! [`RunManifest`] capturing the design spec, the full generation
//! configuration, the output paths, and the per-worker edge counts — enough
//! to re-run the exact same generation or to audit a directory of shards
//! long after the run.  File-writing terminals drop the manifest as
//! `manifest.json` next to the shards.
//!
//! The manifest derives the workspace's serde traits, but the vendored serde
//! is API-only, so the JSON encoding that actually ships is implemented here:
//! [`RunManifest::to_json`] emits it and [`RunManifest::from_json`] parses it
//! back, and the two are round-trip exact (including `u64` counts beyond
//! 2^53 and shortest-representation `f64` seconds).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use kron_sparse::SparseError;

use crate::metrics::MetricRecord;

/// The name under which file-writing pipeline terminals store the manifest,
/// inside the shard directory.
pub const MANIFEST_FILE_NAME: &str = "manifest.json";

/// The name of the progress journal file-writing pipeline terminals append
/// to as workers finish, inside the shard directory — the record
/// [`Pipeline::resume`](crate::pipeline::Pipeline::resume) reads to decide
/// which shards are already done.
pub const PROGRESS_FILE_NAME: &str = "progress.jsonl";

/// One completed shard: the per-worker durability record the progress
/// journal appends when a worker's sink finishes, and the manifest's
/// `shards` array carries for replay-time verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// The worker that produced the shard.
    pub worker: usize,
    /// File name of the shard (relative to the run directory, like the
    /// manifest's `outputs`, so a relocated directory stays resumable).
    pub file: String,
    /// Edges the shard holds.
    pub edges: u64,
    /// FNV-1a checksum of the shard — the whole file for TSV, the payload
    /// after the header for binary (see
    /// [`shard_checksum`](crate::writer::shard_checksum)).
    pub checksum: u64,
}

/// The serialisable record of one pipeline run: design spec, configuration,
/// outputs, and per-worker results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The edge-source kind the run streamed from (`"kronecker"`,
    /// `"kronecker_raw"`, `"rmat"`, …).  Manifests written before the
    /// generic-source pipeline lack this field; they parse as
    /// `"kronecker"` (or `"kronecker_raw"` when their `self_loop_policy`
    /// says `"keep_raw"`), which is what those runs were.
    pub source: String,
    /// The sampling seed of a seeded source (`None` for the exact Kronecker
    /// expansion).  Absent in pre-source manifests, parsed as `None`.
    pub source_seed: Option<u64>,
    /// The seed of the in-stream Feistel vertex permutation, when the run
    /// relabelled vertices.  Absent in pre-source manifests, parsed as
    /// `None`.
    pub permutation_seed: Option<u64>,
    /// Star points `m̂` of the design, in constituent order (empty when the
    /// design is not a pure star product).
    pub star_points: Vec<u64>,
    /// Self-loop placement of the design (`"None"`, `"Centre"`, `"Leaf"`).
    pub self_loop: String,
    /// Exact designed vertex count, as a decimal string (may exceed `u64`).
    pub vertices: String,
    /// Exact predicted edge count of the run's target, as a decimal string
    /// (may exceed `u64`): the designed final graph's edges, or the raw
    /// product's `nnz_with_loops` for a `keep_raw` run — always the count
    /// the run's validation compared `total_edges` against.
    pub predicted_edges: String,
    /// Number of workers the run used.
    pub workers: usize,
    /// The `B ⊗ C` split index the run executed.
    pub split_index: usize,
    /// Memory budget for the replicated `C` factor, in stored entries.
    pub max_c_edges: u64,
    /// Memory budget for the partitioned `B` factor, in stored entries.
    pub max_b_edges: u64,
    /// Capacity of each worker's reusable edge chunk.
    pub chunk_capacity: usize,
    /// Memory budget for the streaming degree histogram, in bytes.
    pub max_histogram_bytes: u64,
    /// Self-loop policy of the run (`"remove_designed"` or `"keep_raw"`).
    pub self_loop_policy: String,
    /// The terminal sink kind (`"counting"`, `"coo"`, `"tsv"`, `"binary"`,
    /// `"compressed"`, `"custom"`).
    pub sink: String,
    /// Output directory of a file-writing run, if any.
    pub directory: Option<String>,
    /// Output file paths, in worker order (empty for non-file sinks).
    pub outputs: Vec<String>,
    /// Edges delivered per worker, in worker order.
    pub edges_per_worker: Vec<u64>,
    /// Total edges delivered to the sinks.
    pub total_edges: u64,
    /// Wall-clock generation time in seconds.
    pub seconds: f64,
    /// Whether the streamed validation matched the prediction exactly.
    pub exact_match: bool,
    /// Warnings recorded during the run (e.g. a fallback split).
    pub warnings: Vec<String>,
    /// Completion records of the run's shards, in worker order (empty for
    /// non-file sinks, and for quarantined workers that never finished a
    /// shard).  Absent in manifests written before crash-safe runs, parsed
    /// as empty.
    pub shards: Vec<ShardRecord>,
    /// Name/value records of the streaming-metrics engine (built-ins first,
    /// custom metrics after) — see
    /// [`MetricsReport::records`](crate::metrics::MetricsReport::records).
    /// Absent in manifests written before the metrics engine, parsed as
    /// empty; unknown names are preserved verbatim, so newer engines'
    /// records survive older readers.
    pub metrics: Vec<MetricRecord>,
}

impl RunManifest {
    /// Serialise the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        write_string(&mut out, "source", &self.source);
        write_optional_u64(&mut out, "source_seed", self.source_seed);
        write_optional_u64(&mut out, "permutation_seed", self.permutation_seed);
        write_u64_array(&mut out, "star_points", &self.star_points);
        write_string(&mut out, "self_loop", &self.self_loop);
        write_string(&mut out, "vertices", &self.vertices);
        write_string(&mut out, "predicted_edges", &self.predicted_edges);
        write_number(&mut out, "workers", &self.workers.to_string());
        write_number(&mut out, "split_index", &self.split_index.to_string());
        write_number(&mut out, "max_c_edges", &self.max_c_edges.to_string());
        write_number(&mut out, "max_b_edges", &self.max_b_edges.to_string());
        write_number(&mut out, "chunk_capacity", &self.chunk_capacity.to_string());
        write_number(
            &mut out,
            "max_histogram_bytes",
            &self.max_histogram_bytes.to_string(),
        );
        write_string(&mut out, "self_loop_policy", &self.self_loop_policy);
        write_string(&mut out, "sink", &self.sink);
        match &self.directory {
            Some(dir) => write_string(&mut out, "directory", dir),
            None => write_number(&mut out, "directory", "null"),
        }
        write_string_array(&mut out, "outputs", &self.outputs);
        write_u64_array(&mut out, "edges_per_worker", &self.edges_per_worker);
        write_number(&mut out, "total_edges", &self.total_edges.to_string());
        // `{:?}` prints the shortest decimal that parses back to the same
        // f64, which is what makes the round-trip exact.
        write_number(&mut out, "seconds", &format!("{:?}", self.seconds));
        write_number(
            &mut out,
            "exact_match",
            if self.exact_match { "true" } else { "false" },
        );
        write_string_array(&mut out, "warnings", &self.warnings);
        write_shard_array(&mut out, "shards", &self.shards);
        write_metric_array(&mut out, "metrics", &self.metrics);
        // Strip the trailing comma of the last entry.
        let trimmed = out.trim_end_matches([',', '\n']).len();
        out.truncate(trimmed);
        out.push_str("\n}\n");
        out
    }

    /// Parse a manifest back from its JSON form.
    ///
    /// The source-kind and seed fields were added by the generic-source
    /// pipeline; manifests written before it parse with their documented
    /// defaults, so old shard directories stay auditable.
    pub fn from_json(text: &str) -> Result<Self, SparseError> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object("manifest root")?;
        let self_loop_policy = get(obj, "self_loop_policy")?.as_string("self_loop_policy")?;
        let source = match get_optional(obj, "source") {
            Some(value) => value.as_string("source")?,
            // Pre-source manifests could only have come from the Kronecker
            // engine; keep-raw runs were the raw-product stream.
            None if self_loop_policy == "keep_raw" => "kronecker_raw".to_string(),
            None => "kronecker".to_string(),
        };
        Ok(RunManifest {
            source,
            source_seed: optional_u64(obj, "source_seed")?,
            permutation_seed: optional_u64(obj, "permutation_seed")?,
            star_points: get(obj, "star_points")?.as_u64_array("star_points")?,
            self_loop: get(obj, "self_loop")?.as_string("self_loop")?,
            vertices: get(obj, "vertices")?.as_string("vertices")?,
            predicted_edges: get(obj, "predicted_edges")?.as_string("predicted_edges")?,
            workers: get(obj, "workers")?.as_u64("workers")? as usize,
            split_index: get(obj, "split_index")?.as_u64("split_index")? as usize,
            max_c_edges: get(obj, "max_c_edges")?.as_u64("max_c_edges")?,
            max_b_edges: get(obj, "max_b_edges")?.as_u64("max_b_edges")?,
            chunk_capacity: get(obj, "chunk_capacity")?.as_u64("chunk_capacity")? as usize,
            max_histogram_bytes: get(obj, "max_histogram_bytes")?.as_u64("max_histogram_bytes")?,
            self_loop_policy,
            sink: get(obj, "sink")?.as_string("sink")?,
            directory: match get(obj, "directory")? {
                JsonValue::Null => None,
                value => Some(value.as_string("directory")?),
            },
            outputs: get(obj, "outputs")?.as_string_array("outputs")?,
            edges_per_worker: get(obj, "edges_per_worker")?.as_u64_array("edges_per_worker")?,
            total_edges: get(obj, "total_edges")?.as_u64("total_edges")?,
            seconds: get(obj, "seconds")?.as_f64("seconds")?,
            exact_match: get(obj, "exact_match")?.as_bool("exact_match")?,
            warnings: get(obj, "warnings")?.as_string_array("warnings")?,
            // Added with crash-safe runs; older manifests recorded no
            // shard checksums.
            shards: match get_optional(obj, "shards") {
                Some(value) => parse_shard_array(value)?,
                None => Vec::new(),
            },
            // Added with the streaming-metrics engine; older manifests
            // simply recorded no metric values.
            metrics: match get_optional(obj, "metrics") {
                Some(value) => parse_metric_array(value)?,
                None => Vec::new(),
            },
        })
    }

    /// Write the manifest as JSON to `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), SparseError> {
        std::fs::write(path, self.to_json()).map_err(|e| SparseError::with_path(path, e.into()))
    }

    /// Read a manifest back from a JSON file.
    pub fn read_from(path: &Path) -> Result<Self, SparseError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| SparseError::with_path(path, e.into()))?;
        RunManifest::from_json(&text).map_err(|e| SparseError::with_path(path, e))
    }
}

/// The run-identity line opening a progress journal: enough configuration
/// to check that a resuming pipeline would regenerate the *same* shards the
/// interrupted run was producing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// The edge-source kind ([`SourceDescriptor::kind`](crate::source::SourceDescriptor)).
    pub source: String,
    /// The sampling seed of a seeded source, if any.
    pub source_seed: Option<u64>,
    /// The seed of the in-stream vertex permutation, if any.
    pub permutation_seed: Option<u64>,
    /// Number of workers (and therefore shards) of the run.
    pub workers: usize,
    /// Designed vertex count, as a decimal string.
    pub vertices: String,
    /// The file sink kind (`"tsv"`, `"binary"`, or `"compressed"`).
    pub sink: String,
}

/// The append-only progress journal of a file-writing run
/// (`progress.jsonl`): one `run` header line identifying the run, then one
/// `shard` line per completed shard, appended (flushed and fsynced) the
/// moment each worker's sink finishes.  Lines are self-contained JSON
/// objects, so a crash mid-append costs at most the last line — the reader
/// skips anything it cannot parse, and an unreadable shard record merely
/// means that shard is regenerated on resume.
///
/// When a worker's shard is regenerated by a resumed run, a fresh line is
/// appended rather than rewriting the file; the *last* record per worker
/// wins.  The journal is kept after a successful run (it doubles as an
/// audit trail), and unknown `kind` lines are ignored so future journal
/// versions stay readable.
#[derive(Debug)]
pub struct ProgressJournal {
    file: std::sync::Mutex<std::fs::File>,
    path: PathBuf,
}

impl ProgressJournal {
    /// Where the journal lives inside a run directory.
    pub fn path_in(directory: &Path) -> PathBuf {
        directory.join(PROGRESS_FILE_NAME)
    }

    /// Start a fresh journal for a new run, truncating any previous one and
    /// durably recording the run header.
    pub fn create(directory: &Path, header: &JournalHeader) -> Result<Self, SparseError> {
        let path = Self::path_in(directory);
        let file =
            std::fs::File::create(&path).map_err(|e| SparseError::with_path(&path, e.into()))?;
        let journal = ProgressJournal {
            file: std::sync::Mutex::new(file),
            path,
        };
        let mut line = String::from("{\"kind\": \"run\", \"source\": ");
        push_json_string(&mut line, &header.source);
        line.push_str(", \"source_seed\": ");
        push_optional_u64(&mut line, header.source_seed);
        line.push_str(", \"permutation_seed\": ");
        push_optional_u64(&mut line, header.permutation_seed);
        let _ = write!(line, ", \"workers\": {}, \"vertices\": ", header.workers);
        push_json_string(&mut line, &header.vertices);
        line.push_str(", \"sink\": ");
        push_json_string(&mut line, &header.sink);
        line.push_str("}\n");
        journal.append_line(&line)?;
        Ok(journal)
    }

    /// Reopen an existing journal for appending — what a resumed run uses,
    /// so completion records of the interrupted run are never lost, even if
    /// the resume itself crashes.
    pub fn open_for_append(directory: &Path) -> Result<Self, SparseError> {
        let path = Self::path_in(directory);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| SparseError::with_path(&path, e.into()))?;
        Ok(ProgressJournal {
            file: std::sync::Mutex::new(file),
            path,
        })
    }

    /// Durably append one shard completion record.  Called concurrently by
    /// workers as they finish; each record is flushed and fsynced before
    /// the call returns, so a later crash cannot take it back.
    pub fn record_shard(&self, record: &ShardRecord) -> Result<(), SparseError> {
        let mut line = String::from("{\"kind\": \"shard\", ");
        // push_shard_object writes the braces; splice its body instead.
        let mut body = String::new();
        push_shard_object(&mut body, record);
        line.push_str(&body[1..]);
        line.push('\n');
        self.append_line(&line)
    }

    fn append_line(&self, line: &str) -> Result<(), SparseError> {
        // lint:allow(no-expect) -- a poisoned journal mutex means another worker already panicked mid-record; continuing could corrupt the journal
        let mut file = self.file.lock().expect("journal lock poisoned");
        let mut attempt = || -> std::io::Result<()> {
            file.write_all(line.as_bytes())?;
            file.sync_data()
        };
        attempt().map_err(|e| SparseError::with_path(&self.path, e.into()))
    }

    /// Read a run directory's journal back: the run header plus the
    /// *effective* shard records (last record per worker wins, workers in
    /// ascending order).  Unparsable lines — a torn final append, future
    /// record kinds — are skipped; a journal with no readable header is an
    /// error, because nothing can be safely resumed from it.
    pub fn read(directory: &Path) -> Result<(JournalHeader, Vec<ShardRecord>), SparseError> {
        let path = Self::path_in(directory);
        let text =
            std::fs::read_to_string(&path).map_err(|e| SparseError::with_path(&path, e.into()))?;
        let mut header: Option<JournalHeader> = None;
        let mut latest: std::collections::BTreeMap<usize, ShardRecord> =
            std::collections::BTreeMap::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let Ok(value) = JsonValue::parse(trimmed) else {
                continue; // torn append from a crash: the line never happened
            };
            let Ok(obj) = value.as_object("journal line") else {
                continue;
            };
            match get_optional(obj, "kind").and_then(|k| k.as_string("kind").ok()) {
                Some(kind) if kind == "run" => {
                    if let Ok(parsed) = parse_journal_header(obj) {
                        header = Some(parsed);
                    }
                }
                Some(kind) if kind == "shard" => {
                    if let Ok(record) = parse_shard_object(&JsonValue::Object(obj.to_vec())) {
                        latest.insert(record.worker, record);
                    }
                }
                _ => {}
            }
        }
        let header = header.ok_or_else(|| {
            SparseError::with_path(&path, parse_error("progress journal has no run header"))
        })?;
        Ok((header, latest.into_values().collect()))
    }
}

fn push_optional_u64(out: &mut String, value: Option<u64>) {
    match value {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

fn parse_journal_header(obj: &[(String, JsonValue)]) -> Result<JournalHeader, SparseError> {
    Ok(JournalHeader {
        source: get(obj, "source")?.as_string("journal source")?,
        source_seed: optional_u64(obj, "source_seed")?,
        permutation_seed: optional_u64(obj, "permutation_seed")?,
        workers: get(obj, "workers")?.as_u64("journal workers")? as usize,
        vertices: get(obj, "vertices")?.as_string("journal vertices")?,
        sink: get(obj, "sink")?.as_string("journal sink")?,
    })
}

fn write_key(out: &mut String, key: &str) {
    let _ = write!(out, "  \"{key}\": ");
}

fn write_number(out: &mut String, key: &str, literal: &str) {
    write_key(out, key);
    out.push_str(literal);
    out.push_str(",\n");
}

fn write_string(out: &mut String, key: &str, value: &str) {
    write_key(out, key);
    push_json_string(out, value);
    out.push_str(",\n");
}

fn write_optional_u64(out: &mut String, key: &str, value: Option<u64>) {
    match value {
        Some(v) => write_number(out, key, &v.to_string()),
        None => write_number(out, key, "null"),
    }
}

fn write_u64_array(out: &mut String, key: &str, values: &[u64]) {
    write_key(out, key);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],\n");
}

fn write_metric_array(out: &mut String, key: &str, records: &[MetricRecord]) {
    write_key(out, key);
    out.push('[');
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        push_json_string(out, &record.name);
        out.push_str(", \"value\": ");
        push_json_string(out, &record.value);
        out.push('}');
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
}

fn write_shard_array(out: &mut String, key: &str, shards: &[ShardRecord]) {
    write_key(out, key);
    out.push('[');
    for (i, shard) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_shard_object(out, shard);
    }
    if !shards.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
}

/// The single definition of a shard record's JSON object, shared by the
/// manifest's `shards` array and the progress journal's `shard` lines.
fn push_shard_object(out: &mut String, shard: &ShardRecord) {
    let _ = write!(out, "{{\"worker\": {}, \"file\": ", shard.worker);
    push_json_string(out, &shard.file);
    let _ = write!(
        out,
        ", \"edges\": {}, \"checksum\": {}}}",
        shard.edges, shard.checksum
    );
}

fn parse_shard_object(value: &JsonValue) -> Result<ShardRecord, SparseError> {
    let obj = value.as_object("shard record")?;
    Ok(ShardRecord {
        worker: get(obj, "worker")?.as_u64("shard worker")? as usize,
        file: get(obj, "file")?.as_string("shard file")?,
        edges: get(obj, "edges")?.as_u64("shard edges")?,
        checksum: get(obj, "checksum")?.as_u64("shard checksum")?,
    })
}

fn parse_shard_array(value: &JsonValue) -> Result<Vec<ShardRecord>, SparseError> {
    let JsonValue::Array(items) = value else {
        return Err(parse_error("shards must be a JSON array"));
    };
    items.iter().map(parse_shard_object).collect()
}

fn parse_metric_array(value: &JsonValue) -> Result<Vec<MetricRecord>, SparseError> {
    let JsonValue::Array(items) = value else {
        return Err(parse_error("metrics must be a JSON array"));
    };
    items
        .iter()
        .map(|item| {
            let obj = item.as_object("metrics entry")?;
            Ok(MetricRecord {
                name: get(obj, "name")?.as_string("metric name")?,
                value: get(obj, "value")?.as_string("metric value")?,
            })
        })
        .collect()
}

fn write_string_array(out: &mut String, key: &str, values: &[String]) {
    write_key(out, key);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, v);
    }
    out.push_str("],\n");
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON subset the manifest round-trips through.  Numbers keep their
/// source text so `u64` counts beyond 2^53 survive exactly.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

fn parse_error(message: impl Into<String>) -> SparseError {
    SparseError::Parse {
        line: 0,
        message: message.into(),
    }
}

fn get<'v>(obj: &'v [(String, JsonValue)], key: &str) -> Result<&'v JsonValue, SparseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| parse_error(format!("manifest is missing the \"{key}\" field")))
}

/// A field that later pipeline versions added: absent in older manifests.
fn get_optional<'v>(obj: &'v [(String, JsonValue)], key: &str) -> Option<&'v JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// An optional `u64` field: absent and `null` both mean `None`.
fn optional_u64(obj: &[(String, JsonValue)], key: &str) -> Result<Option<u64>, SparseError> {
    match get_optional(obj, key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(value) => value.as_u64(key).map(Some),
    }
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, SparseError> {
        let mut cursor = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = cursor.value()?;
        cursor.skip_whitespace();
        if cursor.pos != cursor.bytes.len() {
            return Err(parse_error("trailing content after the JSON document"));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, JsonValue)], SparseError> {
        match self {
            JsonValue::Object(fields) => Ok(fields),
            _ => Err(parse_error(format!("{what} must be a JSON object"))),
        }
    }

    fn as_string(&self, what: &str) -> Result<String, SparseError> {
        match self {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(parse_error(format!("{what} must be a JSON string"))),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, SparseError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(parse_error(format!("{what} must be a JSON boolean"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, SparseError> {
        match self {
            JsonValue::Number(text) => text
                .parse::<u64>()
                .map_err(|_| parse_error(format!("{what} is not a u64: {text}"))),
            _ => Err(parse_error(format!("{what} must be a JSON number"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, SparseError> {
        match self {
            JsonValue::Number(text) => text
                .parse::<f64>()
                .map_err(|_| parse_error(format!("{what} is not a number: {text}"))),
            _ => Err(parse_error(format!("{what} must be a JSON number"))),
        }
    }

    fn as_u64_array(&self, what: &str) -> Result<Vec<u64>, SparseError> {
        match self {
            JsonValue::Array(items) => items.iter().map(|item| item.as_u64(what)).collect(),
            _ => Err(parse_error(format!("{what} must be a JSON array"))),
        }
    }

    fn as_string_array(&self, what: &str) -> Result<Vec<String>, SparseError> {
        match self {
            JsonValue::Array(items) => items.iter().map(|item| item.as_string(what)).collect(),
            _ => Err(parse_error(format!("{what} must be a JSON array"))),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, SparseError> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| parse_error("unexpected end of JSON"))
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), SparseError> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(parse_error(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, SparseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(parse_error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, SparseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(parse_error(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, SparseError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(parse_error(format!(
                        "expected ',' or '}}' in object, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, SparseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(parse_error(format!(
                        "expected ',' or ']' in array, found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, SparseError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(parse_error("empty number"));
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        Ok(JsonValue::Number(text))
    }

    fn string(&mut self) -> Result<String, SparseError> {
        if self.peek()? != b'"' {
            return Err(parse_error(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| parse_error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| parse_error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(parse_error(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(parse_error("lone high surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_error("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(parse_error(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| parse_error("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| parse_error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, SparseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| parse_error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| parse_error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| parse_error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            source: "kronecker".into(),
            source_seed: None,
            permutation_seed: Some(77),
            star_points: vec![3, 4, 5, 9],
            self_loop: "Centre".into(),
            vertices: "3600".into(),
            predicted_edges: "13166".into(),
            workers: 4,
            split_index: 2,
            max_c_edges: 1 << 20,
            max_b_edges: 1 << 24,
            chunk_capacity: 65536,
            max_histogram_bytes: 1 << 30,
            self_loop_policy: "remove_designed".into(),
            sink: "binary".into(),
            directory: Some("/tmp/run with \"quotes\" and \\slashes\\".into()),
            outputs: vec!["/tmp/block_00000.kbk".into(), "/tmp/block_00001.kbk".into()],
            edges_per_worker: vec![3292, 3291, 3292, 3291],
            total_edges: 13166,
            seconds: 0.123456789,
            exact_match: true,
            warnings: vec!["unicode é → ok\nsecond line".into()],
            shards: vec![
                ShardRecord {
                    worker: 0,
                    file: "block_00000.kbk".into(),
                    edges: 6583,
                    checksum: u64::MAX - 9,
                },
                ShardRecord {
                    worker: 1,
                    file: "block_00001.kbk".into(),
                    edges: 6583,
                    checksum: 42,
                },
            ],
            metrics: vec![
                MetricRecord::new("edges", 13166u64),
                MetricRecord::new("power_law_alpha", "1.0"),
                MetricRecord::new("odd \"name\"", "with\ttab"),
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let manifest = sample();
        let json = manifest.to_json();
        let parsed = RunManifest::from_json(&json).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn source_fields_round_trip_for_every_kind() {
        let mut manifest = sample();
        manifest.source = "rmat".into();
        manifest.source_seed = Some(u64::MAX - 5);
        manifest.permutation_seed = None;
        manifest.star_points.clear();
        let parsed = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.source_seed, Some(u64::MAX - 5));
        assert_eq!(parsed.permutation_seed, None);
    }

    #[test]
    fn manifests_written_before_the_source_fields_still_parse() {
        // A pre-source manifest: serialise a modern one, then strip the
        // three new lines — exactly the document the previous pipeline
        // wrote.
        let mut expected = sample();
        let json: String = expected
            .to_json()
            .lines()
            .filter(|line| {
                !line.trim_start().starts_with("\"source\"")
                    && !line.trim_start().starts_with("\"source_seed\"")
                    && !line.trim_start().starts_with("\"permutation_seed\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!json.contains("\"source\""), "strip must remove the fields");
        let parsed = RunManifest::from_json(&json).unwrap();
        expected.source = "kronecker".into();
        expected.source_seed = None;
        expected.permutation_seed = None;
        assert_eq!(parsed, expected);

        // A keep-raw manifest from the old pipeline was the raw-product
        // stream, and parses as that source kind.
        let raw = json.replace("\"remove_designed\"", "\"keep_raw\"");
        assert_eq!(
            RunManifest::from_json(&raw).unwrap().source,
            "kronecker_raw"
        );

        // null seeds are equivalent to absent ones.
        let with_nulls = json.replacen(
            "{\n",
            "{\n  \"source_seed\": null,\n  \"permutation_seed\": null,\n",
            1,
        );
        let parsed = RunManifest::from_json(&with_nulls).unwrap();
        assert_eq!(parsed.source_seed, None);
        assert_eq!(parsed.permutation_seed, None);
    }

    #[test]
    fn round_trip_preserves_u64_beyond_f64_precision_and_null_directory() {
        let mut manifest = sample();
        manifest.total_edges = u64::MAX - 1;
        manifest.edges_per_worker = vec![u64::MAX - 1, 9_007_199_254_740_993];
        manifest.directory = None;
        manifest.outputs.clear();
        manifest.warnings.clear();
        manifest.metrics.clear();
        manifest.seconds = 1.0 / 3.0;
        let parsed = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn manifests_without_metric_records_still_parse() {
        // A pre-metrics manifest: the whole "metrics" entry absent.  The
        // entry is the document's last, so cut it and re-close the object.
        let mut expected = sample();
        let json = expected.to_json();
        let start = json.find("  \"metrics\":").expect("metrics entry present");
        let stripped = format!("{}\n}}\n", json[..start].trim_end_matches([',', '\n']));
        assert!(!stripped.contains("\"metrics\""));
        let parsed = RunManifest::from_json(&stripped).unwrap();
        expected.metrics.clear();
        assert_eq!(parsed, expected);

        // Malformed metric entries fail cleanly.
        let bad = json.replace("\"value\": \"13166\"", "\"value\": 13166");
        assert!(RunManifest::from_json(&bad).is_err());
    }

    #[test]
    fn manifests_without_shard_records_still_parse() {
        // A pre-crash-safety manifest: the whole "shards" entry absent.
        let mut expected = sample();
        let json = expected.to_json();
        let start = json.find("  \"shards\":").expect("shards entry present");
        let end = json.find("  \"metrics\":").expect("metrics entry present");
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        assert!(!stripped.contains("\"shards\""));
        let parsed = RunManifest::from_json(&stripped).unwrap();
        expected.shards.clear();
        assert_eq!(parsed, expected);

        // Malformed shard entries fail cleanly.
        let bad = json.replace("\"checksum\": 42", "\"checksum\": \"42\"");
        assert!(RunManifest::from_json(&bad).is_err());
    }

    #[test]
    fn progress_journal_round_trips_with_last_record_winning() {
        let dir = std::env::temp_dir().join("kron_gen_journal_tests/round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let header = JournalHeader {
            source: "kronecker".into(),
            source_seed: None,
            permutation_seed: Some(0xFEED),
            workers: 3,
            vertices: "3600".into(),
            sink: "binary".into(),
        };
        let journal = ProgressJournal::create(&dir, &header).unwrap();
        let first = ShardRecord {
            worker: 1,
            file: "block_00001.kbk".into(),
            edges: 10,
            checksum: 111,
        };
        let replacement = ShardRecord {
            worker: 1,
            file: "block_00001.kbk".into(),
            edges: 12,
            checksum: 222,
        };
        let other = ShardRecord {
            worker: 0,
            file: "block_00000.kbk".into(),
            edges: 9,
            checksum: 333,
        };
        journal.record_shard(&first).unwrap();
        journal.record_shard(&other).unwrap();
        drop(journal);
        // A resumed run appends; it must not clobber existing records.
        let reopened = ProgressJournal::open_for_append(&dir).unwrap();
        reopened.record_shard(&replacement).unwrap();
        drop(reopened);

        let (read_header, records) = ProgressJournal::read(&dir).unwrap();
        assert_eq!(read_header, header);
        assert_eq!(records, vec![other, replacement]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_journal_tolerates_a_torn_final_append() {
        let dir = std::env::temp_dir().join("kron_gen_journal_tests/torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let header = JournalHeader {
            source: "rmat".into(),
            source_seed: Some(7),
            permutation_seed: None,
            workers: 2,
            vertices: "1024".into(),
            sink: "tsv".into(),
        };
        let journal = ProgressJournal::create(&dir, &header).unwrap();
        journal
            .record_shard(&ShardRecord {
                worker: 0,
                file: "block_00000.tsv".into(),
                edges: 5,
                checksum: 99,
            })
            .unwrap();
        drop(journal);
        // Simulate a crash mid-append: a half-written record on the last
        // line, plus a future record kind that must be ignored.
        let path = ProgressJournal::path_in(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\": \"lease\", \"worker\": 1}\n");
        text.push_str("{\"kind\": \"shard\", \"worker\": 1, \"fi");
        std::fs::write(&path, text).unwrap();

        let (read_header, records) = ProgressJournal::read(&dir).unwrap();
        assert_eq!(read_header, header);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].worker, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_journal_requires_a_header_and_a_file() {
        let dir = std::env::temp_dir().join("kron_gen_journal_tests/missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // No journal at all.
        let error = ProgressJournal::read(&dir).unwrap_err();
        assert!(error.to_string().contains(PROGRESS_FILE_NAME), "{error}");
        // A journal whose header line is unreadable cannot be resumed from.
        std::fs::write(
            ProgressJournal::path_in(&dir),
            "{\"kind\": \"shard\", \"worker\": 0, \"file\": \"x\", \"edges\": 1, \"checksum\": 2}\n",
        )
        .unwrap();
        let error = ProgressJournal::read(&dir).unwrap_err();
        assert!(error.to_string().contains("no run header"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_fields_and_garbage_fail_cleanly() {
        assert!(RunManifest::from_json("not json").is_err());
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("{\"star_points\": [1,2]}").is_err());
        let json = sample().to_json();
        assert!(RunManifest::from_json(&json[..json.len() - 3]).is_err());
        assert!(RunManifest::from_json(&format!("{json} trailing")).is_err());
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let parsed = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, JsonValue::String("😀".to_string()));
    }

    #[test]
    fn malformed_surrogates_fail_cleanly() {
        // High surrogate followed by a non-surrogate escape must be a parse
        // error, not an arithmetic underflow.
        assert!(JsonValue::parse("\"\\ud800\\u0041\"").is_err());
        // Lone halves are errors too.
        assert!(JsonValue::parse("\"\\ud800\"").is_err());
        assert!(JsonValue::parse("\"\\udc00\"").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kron_gen_manifest_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE_NAME);
        let manifest = sample();
        manifest.write_to(&path).unwrap();
        assert_eq!(RunManifest::read_from(&path).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).ok();
    }
}
