//! The R-MAT recursive quadrant sampler.
//!
//! R-MAT (Chakrabarti, Zhan & Faloutsos 2004) samples each edge by walking
//! `scale` levels of a binary recursion: at each level the edge lands in one
//! of four quadrants with probabilities `(a, b, c, d)`.  With the Graph500
//! parameters `(0.57, 0.19, 0.19, 0.05)` the result approximates a power-law
//! graph — but only approximately, and only after the fact: the exact edge
//! count, degree distribution, and triangle count are not known until the
//! graph is generated and measured, which is precisely the workflow the
//! exact Kronecker designer replaces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Quadrant probabilities and size parameters of an R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant (`1 − a − b − c`).
    pub d: f64,
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of undirected edges per vertex.
    pub edge_factor: u64,
    /// Multiplicative noise applied to the quadrant probabilities at each
    /// recursion level (0.0 = classic R-MAT, Graph500 uses a small value to
    /// smooth the degree distribution).
    pub noise: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters at the given scale.
    pub fn graph500(scale: u32) -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            scale,
            edge_factor: 16,
            noise: 0.0,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edge samples drawn, `edge_factor · 2^scale`.
    pub fn requested_edges(&self) -> u64 {
        self.edge_factor * self.vertices()
    }

    /// Whether the probabilities form a valid distribution.
    pub fn is_valid(&self) -> bool {
        let sum = self.a + self.b + self.c + self.d;
        self.a >= 0.0
            && self.b >= 0.0
            && self.c >= 0.0
            && self.d >= 0.0
            && (sum - 1.0).abs() < 1e-9
            && self.scale >= 1
            && self.scale < 63
            && self.edge_factor >= 1
            && self.noise >= 0.0
            && self.noise < 1.0
    }
}

/// A seeded R-MAT edge sampler.
#[derive(Debug, Clone)]
pub struct RmatGenerator {
    params: RmatParams,
    seed: u64,
}

impl RmatGenerator {
    /// Create a generator from validated parameters and a seed.
    pub fn new(params: RmatParams, seed: u64) -> Result<Self, String> {
        if !params.is_valid() {
            return Err(format!("invalid R-MAT parameters: {params:?}"));
        }
        Ok(RmatGenerator { params, seed })
    }

    /// The generator's parameters.
    pub fn params(&self) -> &RmatParams {
        &self.params
    }

    /// Sample one edge with the given RNG.
    fn sample_edge<R: Rng>(&self, rng: &mut R) -> (u64, u64) {
        let mut row = 0u64;
        let mut col = 0u64;
        let (mut a, mut b, mut c, mut d) =
            (self.params.a, self.params.b, self.params.c, self.params.d);
        for _ in 0..self.params.scale {
            if self.params.noise > 0.0 {
                // Multiplicative noise, re-normalised (Graph500 "noise" trick).
                let jitter = |p: f64, r: &mut R| {
                    p * (1.0 - self.params.noise + 2.0 * self.params.noise * r.gen::<f64>())
                };
                let (na, nb, nc, nd) = (
                    jitter(a, rng),
                    jitter(b, rng),
                    jitter(c, rng),
                    jitter(d, rng),
                );
                let total = na + nb + nc + nd;
                a = na / total;
                b = nb / total;
                c = nc / total;
                d = nd / total;
            }
            let sample: f64 = rng.gen();
            row <<= 1;
            col <<= 1;
            if sample < a {
                // top-left
            } else if sample < a + b {
                col |= 1;
            } else if sample < a + b + c {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
            let _ = d;
        }
        (row, col)
    }

    /// Sample the full edge list sequentially (deterministic for a given
    /// seed).
    pub fn generate_edges(&self) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.params.requested_edges())
            .map(|_| self.sample_edge(&mut rng))
            .collect()
    }

    /// Sample the edge list in parallel chunks (deterministic: each chunk has
    /// its own seed derived from the generator seed and chunk index).
    pub fn generate_edges_parallel(&self, chunks: usize) -> Vec<(u64, u64)> {
        let chunks = chunks.max(1);
        let total = self.params.requested_edges();
        let per_chunk = total / chunks as u64;
        let remainder = total % chunks as u64;
        (0..chunks)
            .into_par_iter()
            .flat_map_iter(|chunk| {
                let count = per_chunk + u64::from((chunk as u64) < remainder);
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(chunk as u64 + 1));
                (0..count)
                    .map(move |_| self.sample_edge(&mut rng))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph500_defaults_are_valid() {
        let p = RmatParams::graph500(10);
        assert!(p.is_valid());
        assert_eq!(p.vertices(), 1024);
        assert_eq!(p.requested_edges(), 16 * 1024);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = RmatParams::graph500(10);
        p.a = 0.9; // probabilities no longer sum to 1
        assert!(!p.is_valid());
        assert!(RmatGenerator::new(p, 1).is_err());
        let mut p = RmatParams::graph500(0);
        p.scale = 0;
        assert!(!p.is_valid());
        let mut p = RmatParams::graph500(5);
        p.noise = 1.5;
        assert!(!p.is_valid());
    }

    #[test]
    fn edge_indices_stay_in_range() {
        let gen = RmatGenerator::new(RmatParams::graph500(8), 42).unwrap();
        let edges = gen.generate_edges();
        assert_eq!(edges.len(), 16 * 256);
        let n = gen.params().vertices();
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = RmatGenerator::new(RmatParams::graph500(7), 7).unwrap();
        assert_eq!(gen.generate_edges(), gen.generate_edges());
        let other = RmatGenerator::new(RmatParams::graph500(7), 8).unwrap();
        assert_ne!(gen.generate_edges(), other.generate_edges());
    }

    #[test]
    fn parallel_generation_is_deterministic_and_complete() {
        let gen = RmatGenerator::new(RmatParams::graph500(8), 3).unwrap();
        let a = gen.generate_edges_parallel(4);
        let b = gen.generate_edges_parallel(4);
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, gen.params().requested_edges());
    }

    #[test]
    fn skew_favours_low_vertex_ids() {
        // With a = 0.57 the low-numbered vertices receive far more edges than
        // the high-numbered ones — the hallmark of the R-MAT skew.
        let gen = RmatGenerator::new(RmatParams::graph500(10), 11).unwrap();
        let edges = gen.generate_edges();
        let n = gen.params().vertices();
        let low = edges.iter().filter(|&&(u, _)| u < n / 4).count();
        let high = edges.iter().filter(|&&(u, _)| u >= 3 * n / 4).count();
        assert!(
            low > 3 * high,
            "low quartile {low} should dominate high quartile {high}"
        );
    }

    #[test]
    fn noise_keeps_indices_in_range() {
        let mut p = RmatParams::graph500(8);
        p.noise = 0.1;
        let gen = RmatGenerator::new(p, 5).unwrap();
        let n = p.vertices();
        assert!(gen.generate_edges().iter().all(|&(u, v)| u < n && v < n));
    }
}
