//@ path: crates/core/src/under_test.rs
use std::cmp::Ordering;
use std::sync::atomic::AtomicU64;

pub fn bump(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed — independent counter increment, read only after workers join
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

pub fn rank(a: u64, b: u64) -> Ordering {
    if a < b {
        Ordering::Less
    } else {
        Ordering::Greater
    }
}
