//@ path: crates/core/src/lib.rs
#![forbid(unsafe_code)]
pub mod under_test;
