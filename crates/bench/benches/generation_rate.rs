//! Criterion benchmark behind Figure 3: edge-generation throughput as a
//! function of worker count, for both the block-materialising and the
//! streaming generator.

// The legacy entry points are this benchmark's subject: they are measured
// against the pipeline on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rayon::prelude::*;

use kron_bench::paper;
use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{
    count_block_edges, stream_block_edges, GeneratorConfig, ParallelGenerator, Partition,
};

fn design() -> KroneckerDesign {
    KroneckerDesign::from_star_points(paper::MACHINE_SCALE, SelfLoop::None).expect("valid design")
}

fn bench_generation_rate(c: &mut Criterion) {
    let design = design();
    let edges = design.edges().to_u64().expect("machine scale");
    let mut group = c.benchmark_group("generation_rate");
    group.throughput(Throughput::Elements(edges));
    group.sample_size(10);

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("materialised", workers),
            &workers,
            |b, &workers| {
                let generator = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 200_000,
                    max_total_edges: 60_000_000,
                });
                b.iter(|| {
                    generator
                        .generate_with_split(&design, paper::MACHINE_SCALE_SPLIT)
                        .expect("generation succeeds")
                        .edge_count()
                });
            },
        );
        // Both streaming paths time the same work: factors realised and
        // ordered outside the measured region, expansion inside it.
        let (b_design, c_design) = design
            .split(paper::MACHINE_SCALE_SPLIT)
            .expect("valid split");
        let bf = b_design.realize_raw(60_000_000).expect("fits");
        let c = c_design.realize_raw(60_000_000).expect("fits");
        let triples = kron_gen::partition::csc_ordered_triples(&bf);

        // Closure-free counting fast path (the chunked pipeline's arithmetic).
        group.bench_with_input(
            BenchmarkId::new("streaming_fast_path", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let partition = Partition::even(triples.len(), workers);
                    (0..workers)
                        .into_par_iter()
                        .map(|worker| count_block_edges(&triples[partition.range(worker)], &c))
                        .sum::<u64>()
                });
            },
        );
        // Per-edge closure baseline, same partitioning and factor realisation.
        group.bench_with_input(
            BenchmarkId::new("streaming_per_edge", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let partition = Partition::even(triples.len(), workers);
                    (0..workers)
                        .into_par_iter()
                        .map(|worker| {
                            let mut checksum = 0u64;
                            let produced = stream_block_edges(
                                &triples[partition.range(worker)],
                                &c,
                                |row, col| {
                                    checksum =
                                        checksum.wrapping_add(row).rotate_left(1).wrapping_add(col);
                                },
                            );
                            criterion::black_box(checksum);
                            produced
                        })
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation_rate);
criterion_main!(benches);
