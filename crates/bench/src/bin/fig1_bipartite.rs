//! Figure 1: the Kronecker product of two bipartite star graphs.
//!
//! Reproduces the figure's content: the product of the m̂=5 and m̂=3 stars is
//! a 24-vertex graph whose degree distribution lies exactly on n(d) = 15/d,
//! and whose structure consists of two bipartite sub-graphs (so it has zero
//! triangles).

use kron_bench::{design, figure_header, print_distribution_series};
use kron_bignum::BigUint;
use kron_core::validate::measure_properties;
use kron_core::SelfLoop;

fn main() {
    figure_header(
        "Figure 1",
        "Kronecker product of two bipartite star graphs (m̂ = 5, 3)",
    );

    let design = design(kron_bench::paper::FIG1, SelfLoop::None);
    println!(
        "constituents: stars with m̂ = {:?}, no self-loops",
        design.star_points().unwrap()
    );
    println!();
    println!(
        "predicted: {} vertices, {} edges, {} triangles",
        design.vertices(),
        design.edges(),
        design.triangles().unwrap()
    );

    println!("\npredicted degree distribution (exactly n(d) = 15/d):");
    let dist = design.degree_distribution();
    print_distribution_series(&dist, 16);
    println!(
        "perfect power-law constant: {:?}",
        dist.perfect_power_law_constant().map(|c| c.to_string())
    );

    // Realise the 24-vertex graph and confirm the prediction by measurement.
    let graph = design.realize(10_000).expect("tiny graph");
    let measured = measure_properties(&graph).expect("measurable");
    println!("\nmeasured on the realised graph:");
    println!(
        "vertices {}   edges {}   triangles {:?}",
        measured.vertices,
        measured.edges,
        measured.triangles.as_ref().map(BigUint::to_string)
    );
    assert!(design.properties().exactly_matches(&measured));
    println!("\nFigure 1 reproduced: measured distribution equals n(d) = 15/d exactly.");
}
