//! Edge sinks: the pluggable consumers every generation backend streams
//! into.
//!
//! A sink is one worker's view of "where the edges go".  The
//! [`Pipeline`](crate::pipeline::Pipeline) expands each worker's slice of
//! `B_p ⊗ C` straight into the sink the run's factory creates for that
//! worker, so adding a new output backend — a socket, a compressed file, a
//! columnar store — is one [`EdgeSink`] impl, not a new generation entry
//! point.
//!
//! Concrete sinks:
//!
//! * [`CountingSink`] — counts edges, stores nothing (throughput and
//!   validation-only runs).
//! * [`CooSink`] — materialises the worker's block as a COO matrix (tests
//!   and small graphs).
//! * [`TsvShardSink`] / [`BinaryShardSink`] — one buffered TSV or
//!   interleaved-binary shard per worker.
//! * [`CompressedShardSink`] — one delta/varint-compressed (v4) shard per
//!   worker, ~3x smaller than the raw binary layout.
//! * [`DegreeOnlySink`] — accumulates the worker's exact degree counts and
//!   writes nothing: measured-equals-predicted validation with zero output.
//!
//! Combinators:
//!
//! * [`TeeSink`] — fan one stream out to two sinks.
//! * [`DoubleBufferedSink`] — move any sink onto its own writer thread,
//!   overlapping encode+write with generation behind a bounded queue.
//! * [`FilterMapSink`] — transform or drop edges before an inner sink sees
//!   them.
//! * [`PermuteSink`] — relabel both endpoints through a seeded
//!   [`FeistelPermutation`] before an inner sink sees them: Graph500-style
//!   vertex scrambling in O(1) memory.

use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use kron_sparse::reduce::DegreeAccumulator;
use kron_sparse::{CooMatrix, SparseError};

use crate::codec::{encode_frame, FRAME_EDGES};
use crate::permute::FeistelPermutation;
use crate::writer::{
    write_tsv_edges, Fnv1a, BLOCK_HEADER_LEN, BLOCK_MAGIC, BLOCK_VERSION_CHECKSUM,
    BLOCK_VERSION_COMPRESSED,
};

/// A per-worker consumer of generated edge chunks.
///
/// A sink receives every chunk its worker produces (already filtered of the
/// removable self-loop unless the run keeps the raw product) and is
/// finalised exactly once at the end of the worker's stream.  Sinks that
/// buffer nothing — writers, counters — keep the whole run in bounded memory
/// no matter how many edges pass through.
pub trait EdgeSink {
    /// What the sink leaves behind when the stream ends (a path, a count, a
    /// matrix, …).
    type Output;

    /// Consume one chunk of `(row, col)` edges with global indices.
    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError>;

    /// Finalise the sink (flush buffers, patch headers) and return its
    /// output.
    #[must_use = "finish flushes buffers and returns the sink's output; dropping the result loses both"]
    fn finish(self) -> Result<Self::Output, SparseError>;

    /// Deliberately discard the sink without finishing it — the clean way to
    /// throw a failed attempt away.  File-backed sinks remove their
    /// temporary file and suppress the dropped-without-`finish` warning;
    /// the default just drops the sink.
    fn abandon(self)
    where
        Self: Sized,
    {
        drop(self);
    }

    /// The checksum of everything the sink has written so far, if the sink
    /// produces a durable artefact worth checksumming.  File shard sinks
    /// return the FNV-1a hash the progress journal records; in-memory sinks
    /// return `None`.
    fn payload_checksum(&self) -> Option<u64> {
        None
    }

    /// Finalise the sink and return its output together with the payload
    /// checksum of the *finished* artefact.
    ///
    /// The default reads [`EdgeSink::payload_checksum`] and then finishes —
    /// correct for sinks whose byte stream is complete before `finish()`.
    /// Sinks that seal trailing state during finalisation (a partial
    /// compression frame, a footer) override this so the checksum covers
    /// every payload byte; sinks that hand their state to another thread
    /// (double buffering) override it because the checksum only exists
    /// where the inner sink lives.
    #[must_use = "finish flushes buffers and returns the sink's output; dropping the result loses both"]
    fn finish_with_checksum(self) -> Result<(Self::Output, Option<u64>), SparseError>
    where
        Self: Sized,
    {
        let checksum = self.payload_checksum();
        Ok((self.finish()?, checksum))
    }
}

/// `<path>.tmp` — where a shard sink stages its bytes until `finish()`
/// atomically renames them into place.
pub(crate) fn tmp_shard_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Best-effort fsync of `path`'s parent directory so the rename that put
/// `path` in place is itself durable.  Failures are ignored: not every
/// platform lets a directory be opened for syncing, and the shard data
/// itself is already synced.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// An [`EdgeSink`] that only counts — the sink behind throughput
/// measurements and histogram-only validation runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingSink {
    edges: u64,
}

impl CountingSink {
    /// Create a fresh counter (identical to [`CountingSink::default`]).
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl EdgeSink for CountingSink {
    type Output = u64;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.edges += edges.len() as u64;
        Ok(())
    }

    fn finish(self) -> Result<u64, SparseError> {
        Ok(self.edges)
    }
}

/// An [`EdgeSink`] that materialises its worker's block as a COO matrix —
/// for tests and small graphs, where it makes the streaming pipeline
/// directly comparable with the materialising generator.
#[derive(Debug, Clone)]
pub struct CooSink {
    block: CooMatrix<u64>,
    rows: Vec<u64>,
    cols: Vec<u64>,
    ones: Vec<u64>,
}

impl CooSink {
    /// Create a sink collecting into a `vertices × vertices` pattern matrix.
    pub fn new(vertices: u64) -> Self {
        CooSink {
            block: CooMatrix::new(vertices, vertices),
            rows: Vec::new(),
            cols: Vec::new(),
            ones: Vec::new(),
        }
    }
}

impl EdgeSink for CooSink {
    type Output = CooMatrix<u64>;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        // De-interleave into reusable scratch buffers and append in bulk —
        // one capacity check per chunk instead of one per edge.
        self.rows.clear();
        self.cols.clear();
        self.rows.extend(edges.iter().map(|&(row, _)| row));
        self.cols.extend(edges.iter().map(|&(_, col)| col));
        if self.ones.len() < edges.len() {
            self.ones.resize(edges.len(), 1);
        }
        self.block
            .extend_from_triples(&self.rows, &self.cols, &self.ones[..edges.len()])
    }

    fn finish(self) -> Result<CooMatrix<u64>, SparseError> {
        Ok(self.block)
    }
}

/// An [`EdgeSink`] writing `row<TAB>col<TAB>1` triples through a buffered
/// writer — one TSV shard per worker.
///
/// The shard is staged at `<path>.tmp`, fsynced, and atomically renamed to
/// `path` by `finish()`, so a crash can never leave a truncated file under
/// the final name: a shard that exists is a shard that finished.  The sink
/// also maintains a running FNV-1a checksum of every byte written
/// ([`EdgeSink::payload_checksum`]) — the sidecar checksum the run's
/// progress journal and manifest record for later verification.
pub struct TsvShardSink {
    writer: Option<BufWriter<std::fs::File>>,
    path: PathBuf,
    tmp: PathBuf,
    hasher: Fnv1a,
    scratch: Vec<u8>,
    finished: bool,
}

impl TsvShardSink {
    /// Create the shard, staging bytes at `<path>.tmp` until `finish()`.
    pub fn create(path: &Path) -> Result<Self, SparseError> {
        let tmp = tmp_shard_path(path);
        let file =
            std::fs::File::create(&tmp).map_err(|e| SparseError::with_path(&tmp, e.into()))?;
        Ok(TsvShardSink {
            writer: Some(BufWriter::with_capacity(1 << 18, file)),
            path: path.to_path_buf(),
            tmp,
            hasher: Fnv1a::new(),
            scratch: Vec::new(),
            finished: false,
        })
    }
}

impl EdgeSink for TsvShardSink {
    type Output = PathBuf;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        // Format into a reusable buffer first so the checksum sees exactly
        // the bytes that reach the file.
        self.scratch.clear();
        write_tsv_edges(&mut self.scratch, edges)?;
        self.hasher.update(&self.scratch);
        self.writer
            .as_mut()
            // lint:allow(no-expect) -- the writer is Some until finish(); use-after-finish is a caller contract violation documented on the type
            .expect("sink used after finish")
            .write_all(&self.scratch)?;
        Ok(())
    }

    fn finish(mut self) -> Result<PathBuf, SparseError> {
        self.finished = true;
        // lint:allow(no-expect) -- the finished flag checked above guarantees the writer has not been taken yet
        let mut writer = self.writer.take().expect("finish called once");
        writer.flush()?;
        let file = writer
            .into_inner()
            .map_err(|e| SparseError::Io(e.to_string()))?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)
            .map_err(|e| SparseError::with_path(&self.path, e.into()))?;
        sync_parent_dir(&self.path);
        Ok(self.path.clone())
    }

    fn abandon(mut self) {
        self.finished = true;
        self.writer.take();
        let _ = std::fs::remove_file(&self.tmp);
    }

    fn payload_checksum(&self) -> Option<u64> {
        Some(self.hasher.finish())
    }
}

impl Drop for TsvShardSink {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            eprintln!(
                "warning: TSV shard sink for {} dropped without finish(); \
                 the partial shard stays at {}",
                self.path.display(),
                self.tmp.display()
            );
        }
    }
}

/// An [`EdgeSink`] writing the checksummed interleaved binary shard layout
/// ([`BLOCK_VERSION_CHECKSUM`]): the block header with a zero entry count
/// and zero checksum, then `(row, col)` pairs appended as they stream;
/// `finish` seeks back and patches the true count and the payload's FNV-1a
/// checksum into the header.  16 bytes per edge, no buffering beyond the
/// write buffer.
///
/// Like [`TsvShardSink`], the shard is staged at `<path>.tmp` and
/// atomically renamed into place by `finish()` after an fsync, so the final
/// name only ever holds a complete, checksummed shard.
pub struct BinaryShardSink {
    writer: Option<BufWriter<std::fs::File>>,
    path: PathBuf,
    tmp: PathBuf,
    written: u64,
    hasher: Fnv1a,
    scratch: Vec<u8>,
    finished: bool,
}

impl BinaryShardSink {
    /// Create the shard for a `nrows × ncols` graph, staging bytes at
    /// `<path>.tmp` until `finish()`.
    pub fn create(path: &Path, nrows: u64, ncols: u64) -> Result<Self, SparseError> {
        let tmp = tmp_shard_path(path);
        let file =
            std::fs::File::create(&tmp).map_err(|e| SparseError::with_path(&tmp, e.into()))?;
        let mut writer = BufWriter::with_capacity(1 << 18, file);
        writer.write_all(&BLOCK_MAGIC)?;
        writer.write_all(&BLOCK_VERSION_CHECKSUM.to_le_bytes())?;
        writer.write_all(&nrows.to_le_bytes())?;
        writer.write_all(&ncols.to_le_bytes())?;
        writer.write_all(&0u64.to_le_bytes())?; // entry count, patched by finish()
        writer.write_all(&0u64.to_le_bytes())?; // checksum, patched by finish()
        Ok(BinaryShardSink {
            writer: Some(writer),
            path: path.to_path_buf(),
            tmp,
            written: 0,
            hasher: Fnv1a::new(),
            scratch: Vec::new(),
            finished: false,
        })
    }
}

impl EdgeSink for BinaryShardSink {
    type Output = PathBuf;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        // Serialise the whole chunk into a reusable buffer and issue one
        // write per chunk, not two per edge.
        self.scratch.clear();
        self.scratch.reserve(16 * edges.len());
        for &(row, col) in edges {
            self.scratch.extend_from_slice(&row.to_le_bytes());
            self.scratch.extend_from_slice(&col.to_le_bytes());
        }
        self.hasher.update(&self.scratch);
        self.writer
            .as_mut()
            // lint:allow(no-expect) -- the writer is Some until finish(); use-after-finish is a caller contract violation documented on the type
            .expect("sink used after finish")
            .write_all(&self.scratch)?;
        self.written += edges.len() as u64;
        Ok(())
    }

    fn finish(mut self) -> Result<PathBuf, SparseError> {
        self.finished = true;
        // lint:allow(no-expect) -- the finished flag checked above guarantees the writer has not been taken yet
        let mut writer = self.writer.take().expect("finish called once");
        writer.flush()?;
        let mut file = writer
            .into_inner()
            .map_err(|e| SparseError::Io(e.to_string()))?;
        // The count sits at the same offset in every layout version; the
        // checksum follows it directly in v3.
        file.seek(SeekFrom::Start(BLOCK_HEADER_LEN - 8))?;
        file.write_all(&self.written.to_le_bytes())?;
        file.write_all(&self.hasher.finish().to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)
            .map_err(|e| SparseError::with_path(&self.path, e.into()))?;
        sync_parent_dir(&self.path);
        Ok(self.path.clone())
    }

    fn abandon(mut self) {
        self.finished = true;
        self.writer.take();
        let _ = std::fs::remove_file(&self.tmp);
    }

    fn payload_checksum(&self) -> Option<u64> {
        Some(self.hasher.finish())
    }
}

impl Drop for BinaryShardSink {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            eprintln!(
                "warning: binary shard sink for {} dropped without finish(); \
                 the partial shard stays at {}",
                self.path.display(),
                self.tmp.display()
            );
        }
    }
}

/// An [`EdgeSink`] writing the compressed block layout
/// ([`crate::writer::BLOCK_VERSION_COMPRESSED`]):
/// the v4 header with zeroed count/length/checksum fields, then
/// delta/varint frames (see [`crate::codec`]) appended as edges stream;
/// `finish` seals the final partial frame and patches the true entry
/// count, payload length, and payload FNV-1a checksum into the header.
/// Several times smaller than [`BinaryShardSink`] on generated streams
/// (see `compression_ratio` in `BENCH_shard_driver.json`).
///
/// Edges accumulate in an internal buffer and are encoded in frames of
/// exactly [`codec::FRAME_EDGES`](crate::codec::FRAME_EDGES) (plus one
/// final short frame), so the bytes on disk depend only on the edge
/// stream — never on the chunk size the pipeline happened to use.  That
/// invariant is what lets a resumed run reproduce a shard bit-identically.
///
/// Like the other shard sinks, bytes stage at `<path>.tmp` and `finish()`
/// fsyncs and atomically renames, so the final name only ever holds a
/// complete, checksummed shard.
pub struct CompressedShardSink {
    writer: Option<BufWriter<std::fs::File>>,
    path: PathBuf,
    tmp: PathBuf,
    pending: Vec<(u64, u64)>,
    written: u64,
    payload_len: u64,
    hasher: Fnv1a,
    scratch: Vec<u8>,
    finished: bool,
}

impl CompressedShardSink {
    /// Create the shard for a `nrows × ncols` graph, staging bytes at
    /// `<path>.tmp` until `finish()`.
    pub fn create(path: &Path, nrows: u64, ncols: u64) -> Result<Self, SparseError> {
        let tmp = tmp_shard_path(path);
        let file =
            std::fs::File::create(&tmp).map_err(|e| SparseError::with_path(&tmp, e.into()))?;
        let mut writer = BufWriter::with_capacity(1 << 18, file);
        writer.write_all(&BLOCK_MAGIC)?;
        writer.write_all(&BLOCK_VERSION_COMPRESSED.to_le_bytes())?;
        writer.write_all(&nrows.to_le_bytes())?;
        writer.write_all(&ncols.to_le_bytes())?;
        writer.write_all(&0u64.to_le_bytes())?; // entry count, patched by finish()
        writer.write_all(&0u64.to_le_bytes())?; // payload length, patched by finish()
        writer.write_all(&0u64.to_le_bytes())?; // checksum, patched by finish()
        Ok(CompressedShardSink {
            writer: Some(writer),
            path: path.to_path_buf(),
            tmp,
            pending: Vec::with_capacity(FRAME_EDGES),
            written: 0,
            payload_len: 0,
            hasher: Fnv1a::new(),
            scratch: Vec::new(),
            finished: false,
        })
    }

    /// Encode and write the pending edges as one frame.
    fn flush_frame(&mut self) -> Result<(), SparseError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        encode_frame(&self.pending, &mut self.scratch);
        self.hasher.update(&self.scratch);
        self.writer
            .as_mut()
            // lint:allow(no-expect) -- the writer is Some until finish(); use-after-finish is a caller contract violation documented on the type
            .expect("sink used after finish")
            .write_all(&self.scratch)?;
        self.payload_len += self.scratch.len() as u64;
        self.written += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }
}

impl EdgeSink for CompressedShardSink {
    type Output = PathBuf;

    fn consume(&mut self, mut edges: &[(u64, u64)]) -> Result<(), SparseError> {
        while !edges.is_empty() {
            let take = (FRAME_EDGES - self.pending.len()).min(edges.len());
            self.pending.extend_from_slice(&edges[..take]);
            edges = &edges[take..];
            if self.pending.len() == FRAME_EDGES {
                self.flush_frame()?;
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<PathBuf, SparseError> {
        self.flush_frame()?;
        self.finished = true;
        // lint:allow(no-expect) -- the finished flag checked above guarantees the writer has not been taken yet
        let mut writer = self.writer.take().expect("finish called once");
        writer.flush()?;
        let mut file = writer
            .into_inner()
            .map_err(|e| SparseError::Io(e.to_string()))?;
        // Patch the three fields finish() owns: count at 24, payload length
        // at 32, checksum at 40.
        file.seek(SeekFrom::Start(BLOCK_HEADER_LEN - 8))?;
        file.write_all(&self.written.to_le_bytes())?;
        file.write_all(&self.payload_len.to_le_bytes())?;
        file.write_all(&self.hasher.finish().to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)
            .map_err(|e| SparseError::with_path(&self.path, e.into()))?;
        sync_parent_dir(&self.path);
        Ok(self.path.clone())
    }

    fn abandon(mut self) {
        self.finished = true;
        self.writer.take();
        let _ = std::fs::remove_file(&self.tmp);
    }

    // payload_checksum() keeps the default `None` on purpose: edges still
    // sitting in the pending frame have not been encoded yet, so no
    // mid-stream hash can match the finished file.  The journal checksum
    // comes from finish_with_checksum(), which seals the last frame first.

    fn finish_with_checksum(mut self) -> Result<(PathBuf, Option<u64>), SparseError> {
        self.flush_frame()?;
        let checksum = self.hasher.finish();
        Ok((self.finish()?, Some(checksum)))
    }
}

impl Drop for CompressedShardSink {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            eprintln!(
                "warning: compressed shard sink for {} dropped without finish(); \
                 the partial shard stays at {}",
                self.path.display(),
                self.tmp.display()
            );
        }
    }
}

/// How many encoded chunks may sit between the generating worker and the
/// writer thread of a [`DoubleBufferedSink`] before the generator blocks.
/// Two is the classic double buffer: one chunk being written, one ready.
const QUEUE_DEPTH: usize = 2;

/// An [`EdgeSink`] combinator that moves an inner sink onto its own writer
/// thread, overlapping encode+write with generation: the generating worker
/// hands each chunk over a bounded channel and immediately goes back to
/// producing edges while the writer thread serialises the previous chunk.
///
/// Buffers are recycled through a return channel, so the steady state
/// allocates nothing; the bounded queue (`QUEUE_DEPTH`) keeps memory use
/// flat when generation outruns the disk.  If the inner sink fails, the
/// writer thread keeps draining (so the sender never blocks on a dead
/// consumer), abandons the inner sink, and the error surfaces on the next
/// `consume()` or at `finish()`.
pub struct DoubleBufferedSink<S: EdgeSink> {
    sender: Option<std::sync::mpsc::SyncSender<Vec<(u64, u64)>>>,
    recycle: std::sync::mpsc::Receiver<Vec<(u64, u64)>>,
    handle: Option<std::thread::JoinHandle<WriterVerdict<S>>>,
    failed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    abandoned: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

/// The writer thread's tri-state verdict: `Ok(Some((output, checksum)))`
/// after a clean finish, `Ok(None)` when the front half abandoned the run,
/// `Err` when the inner sink failed.
type WriterVerdict<S> = Result<Option<(<S as EdgeSink>::Output, Option<u64>)>, SparseError>;

impl<S> DoubleBufferedSink<S>
where
    S: EdgeSink + Send + 'static,
    S::Output: Send + 'static,
{
    /// Move `inner` onto a writer thread and return the front half.
    pub fn new(inner: S) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Vec<(u64, u64)>>(QUEUE_DEPTH);
        let (recycle_tx, recycle) = std::sync::mpsc::channel::<Vec<(u64, u64)>>();
        let failed = std::sync::Arc::new(AtomicBool::new(false));
        let abandoned = std::sync::Arc::new(AtomicBool::new(false));
        let thread_failed = std::sync::Arc::clone(&failed);
        let thread_abandoned = std::sync::Arc::clone(&abandoned);
        let handle = std::thread::spawn(move || {
            let mut sink = Some(inner);
            let mut error = None;
            for buffer in receiver {
                if error.is_none() {
                    // lint:allow(no-expect) -- the sink is taken exactly once, on the first error
                    if let Err(e) = sink.as_mut().expect("sink present").consume(&buffer) {
                        // ordering: Release — pairs with the Acquire load in consume(); a front half that observes `failed` must also observe the draining state this thread is in
                        thread_failed.store(true, Ordering::Release);
                        // lint:allow(no-expect) -- error.is_none() guarantees the sink has not been taken
                        sink.take().expect("sink present").abandon();
                        error = Some(e);
                    }
                }
                // Hand the buffer back; the front half may already be gone,
                // which is fine — the buffer just drops.
                let _ = recycle_tx.send(buffer);
            }
            if let Some(e) = error {
                return Err(e);
            }
            // lint:allow(no-expect) -- error was None on every chunk, so the sink was never taken
            let sink = sink.take().expect("sink present");
            // ordering: Acquire — pairs with the Release store in abandon(); the flag was set before the channel closed, so the drain loop above happened-after it
            if thread_abandoned.load(Ordering::Acquire) {
                sink.abandon();
                return Ok(None);
            }
            sink.finish_with_checksum().map(Some)
        });
        DoubleBufferedSink {
            sender: Some(sender),
            recycle,
            handle: Some(handle),
            failed,
            abandoned,
        }
    }

    /// Close the channel, join the writer thread, and return its verdict.
    fn join(&mut self) -> WriterVerdict<S> {
        drop(self.sender.take());
        match self.handle.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| SparseError::Io("shard writer thread panicked".into()))?,
            None => Err(SparseError::Io("shard writer thread already joined".into())),
        }
    }

    /// Join after a failure and surface the inner sink's error.
    fn join_error(&mut self) -> SparseError {
        match self.join() {
            Err(e) => e,
            Ok(_) => SparseError::Io("shard writer thread stopped without an error".into()),
        }
    }
}

impl<S> EdgeSink for DoubleBufferedSink<S>
where
    S: EdgeSink + Send + 'static,
    S::Output: Send + 'static,
{
    type Output = S::Output;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        use std::sync::atomic::Ordering;
        // ordering: Acquire — pairs with the writer thread's Release store; observing the flag means the thread is draining, so join() cannot block
        if self.failed.load(Ordering::Acquire) {
            return Err(self.join_error());
        }
        let mut buffer = self.recycle.try_recv().unwrap_or_default();
        buffer.clear();
        buffer.extend_from_slice(edges);
        let sender = match self.sender.as_ref() {
            Some(sender) => sender,
            None => return Err(SparseError::Io("shard writer channel closed".into())),
        };
        if sender.send(buffer).is_err() {
            return Err(self.join_error());
        }
        Ok(())
    }

    fn finish(self) -> Result<S::Output, SparseError> {
        self.finish_with_checksum().map(|(output, _)| output)
    }

    fn abandon(mut self) {
        use std::sync::atomic::Ordering;
        // ordering: Release — pairs with the writer thread's Acquire load after the channel closes; the thread must observe the flag once the drain loop ends, or it would finish (and publish) an abandoned shard
        self.abandoned.store(true, Ordering::Release);
        let _ = self.join();
    }

    fn finish_with_checksum(mut self) -> Result<(S::Output, Option<u64>), SparseError> {
        match self.join()? {
            Some(pair) => Ok(pair),
            None => Err(SparseError::Io(
                "shard writer thread abandoned the sink".into(),
            )),
        }
    }
}

impl<S: EdgeSink> Drop for DoubleBufferedSink<S> {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering;
        // A front half dropped without finish()/abandon() must not let the
        // writer thread seal a shard nobody asked to complete: flag the
        // abandon, close the channel, and wait the thread out.
        if self.handle.is_some() {
            // ordering: Release — same pairing as abandon(): the writer thread's post-drain Acquire load must observe the flag
            self.abandoned.store(true, Ordering::Release);
            drop(self.sender.take());
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// An [`EdgeSink`] that accumulates exact per-vertex degree counts and
/// writes nothing at all — the cheapest way to run the paper's
/// measured-equals-predicted validation when the edges themselves are not
/// wanted.  Its output is the worker's [`DegreeAccumulator`]; merge the
/// per-worker outputs for a run-wide histogram.
#[derive(Debug, Clone)]
pub struct DegreeOnlySink {
    degrees: DegreeAccumulator,
}

impl DegreeOnlySink {
    /// Create a sink counting row-endpoint degrees of a
    /// `vertices × vertices` graph.
    pub fn new(vertices: u64) -> Self {
        DegreeOnlySink {
            degrees: DegreeAccumulator::rows_only(vertices, vertices),
        }
    }
}

impl EdgeSink for DegreeOnlySink {
    type Output = DegreeAccumulator;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.degrees.record(edges);
        Ok(())
    }

    fn finish(self) -> Result<DegreeAccumulator, SparseError> {
        Ok(self.degrees)
    }
}

/// An [`EdgeSink`] that fans every chunk out to two inner sinks — write a
/// shard *and* count, or feed two independent backends from one expansion.
#[derive(Debug, Clone)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: EdgeSink, B: EdgeSink> TeeSink<A, B> {
    /// Fan the stream out to `first` and `second` (in that order per chunk).
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }
}

impl<A: EdgeSink, B: EdgeSink> EdgeSink for TeeSink<A, B> {
    type Output = (A::Output, B::Output);

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.first.consume(edges)?;
        self.second.consume(edges)
    }

    fn finish(self) -> Result<(A::Output, B::Output), SparseError> {
        let first = self.first.finish()?;
        let second = self.second.finish()?;
        Ok((first, second))
    }

    fn abandon(self) {
        self.first.abandon();
        self.second.abandon();
    }
}

/// An [`EdgeSink`] that applies a `(row, col) → Option<(row, col)>`
/// transform to every edge before an inner sink sees it — drop edges by
/// returning `None`, or rewrite them (relabelling, masking, sampling by
/// index arithmetic) by returning `Some` of the new pair.
///
/// Transformed chunks are staged in an internal buffer so the inner sink
/// still receives whole slices; the buffer is reused across chunks, so the
/// steady state allocates nothing.
#[derive(Debug, Clone)]
pub struct FilterMapSink<S, F> {
    inner: S,
    transform: F,
    buffer: Vec<(u64, u64)>,
}

impl<S, F> FilterMapSink<S, F>
where
    S: EdgeSink,
    F: FnMut(u64, u64) -> Option<(u64, u64)>,
{
    /// Wrap `inner`, passing every edge through `transform` first.
    pub fn new(inner: S, transform: F) -> Self {
        FilterMapSink {
            inner,
            transform,
            buffer: Vec::new(),
        }
    }
}

impl<S, F> EdgeSink for FilterMapSink<S, F>
where
    S: EdgeSink,
    F: FnMut(u64, u64) -> Option<(u64, u64)>,
{
    type Output = S::Output;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.buffer.clear();
        let transform = &mut self.transform;
        self.buffer
            .extend(edges.iter().filter_map(|&(row, col)| transform(row, col)));
        self.inner.consume(&self.buffer)
    }

    fn finish(self) -> Result<S::Output, SparseError> {
        self.inner.finish()
    }

    fn abandon(self) {
        self.inner.abandon();
    }

    fn payload_checksum(&self) -> Option<u64> {
        self.inner.payload_checksum()
    }
}

/// An [`EdgeSink`] that relabels both endpoints of every edge through a
/// seeded [`FeistelPermutation`] before an inner sink sees them — the
/// pipeline's [`permute_vertices`](crate::pipeline::Pipeline::permute_vertices)
/// stage as a standalone combinator, so any hand-built sink stack (or a
/// legacy entry point) can scramble vertex labels in O(1) memory too.
///
/// Relabelled chunks are staged in an internal buffer so the inner sink
/// still receives whole slices; the buffer is reused across chunks, so the
/// steady state allocates nothing.
#[derive(Debug, Clone)]
pub struct PermuteSink<S> {
    inner: S,
    permutation: FeistelPermutation,
    buffer: Vec<(u64, u64)>,
}

impl<S: EdgeSink> PermuteSink<S> {
    /// Wrap `inner`, relabelling every endpoint through `permutation`.
    pub fn new(inner: S, permutation: FeistelPermutation) -> Self {
        PermuteSink {
            inner,
            permutation,
            buffer: Vec::new(),
        }
    }

    /// Wrap `inner` with a fresh permutation of `[0, vertices)` keyed by
    /// `seed`.
    pub fn seeded(inner: S, vertices: u64, seed: u64) -> Self {
        PermuteSink::new(inner, FeistelPermutation::new(vertices, seed))
    }

    /// The permutation this sink applies.
    pub fn permutation(&self) -> &FeistelPermutation {
        &self.permutation
    }
}

impl<S: EdgeSink> EdgeSink for PermuteSink<S> {
    type Output = S::Output;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        self.buffer.clear();
        self.buffer
            .extend(edges.iter().map(|&e| self.permutation.apply_edge(e)));
        self.inner.consume(&self.buffer)
    }

    fn finish(self) -> Result<S::Output, SparseError> {
        self.inner.finish()
    }

    fn abandon(self) {
        self.inner.abandon();
    }

    fn payload_checksum(&self) -> Option<u64> {
        self.inner.payload_checksum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &[(u64, u64)] = &[(0, 1), (1, 1), (2, 0), (3, 3)];

    #[test]
    fn counting_sink_counts_and_default_is_new() {
        assert_eq!(CountingSink::new(), CountingSink::default());
        let mut sink = CountingSink::new();
        sink.consume(EDGES).unwrap();
        sink.consume(&EDGES[..2]).unwrap();
        assert_eq!(sink.finish().unwrap(), 6);
    }

    #[test]
    fn tee_sink_feeds_both_branches() {
        let mut tee = TeeSink::new(CountingSink::new(), CooSink::new(4));
        tee.consume(EDGES).unwrap();
        let (count, block) = tee.finish().unwrap();
        assert_eq!(count, 4);
        assert_eq!(block.nnz(), 4);
        assert_eq!(
            block.iter().map(|(r, c, _)| (r, c)).collect::<Vec<_>>(),
            EDGES
        );
    }

    #[test]
    fn filter_map_sink_drops_and_rewrites() {
        // Drop self-loops, transpose everything else.
        let mut sink = FilterMapSink::new(CooSink::new(4), |row, col| {
            (row != col).then_some((col, row))
        });
        sink.consume(EDGES).unwrap();
        let block = sink.finish().unwrap();
        assert_eq!(
            block.iter().map(|(r, c, _)| (r, c)).collect::<Vec<_>>(),
            vec![(1, 0), (0, 2)]
        );
    }

    #[test]
    fn permute_sink_relabels_bijectively_and_preserves_structure() {
        let mut sink = PermuteSink::seeded(CooSink::new(4), 4, 31);
        let perm = sink.permutation().clone();
        sink.consume(EDGES).unwrap();
        let block = sink.finish().unwrap();
        let relabelled: Vec<(u64, u64)> = block.iter().map(|(r, c, _)| (r, c)).collect();
        let expected: Vec<(u64, u64)> = EDGES.iter().map(|&e| perm.apply_edge(e)).collect();
        assert_eq!(relabelled, expected);
        // Self-loops stay self-loops under any bijection.
        assert_eq!(
            relabelled.iter().filter(|&&(r, c)| r == c).count(),
            EDGES.iter().filter(|&&(r, c)| r == c).count()
        );
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kron_gen_sink_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_sinks_stage_in_tmp_and_rename_on_finish() {
        let dir = temp_dir("atomic");
        let tsv = dir.join("shard.tsv");
        let mut sink = TsvShardSink::create(&tsv).unwrap();
        sink.consume(EDGES).unwrap();
        assert!(!tsv.exists(), "the final name must not exist mid-stream");
        assert!(tmp_shard_path(&tsv).exists());
        let out = sink.finish().unwrap();
        assert_eq!(out, tsv);
        assert!(tsv.exists());
        assert!(!tmp_shard_path(&tsv).exists());

        let kbk = dir.join("shard.kbk");
        let mut sink = BinaryShardSink::create(&kbk, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        assert!(!kbk.exists());
        sink.finish().unwrap();
        assert!(kbk.exists());
        assert!(!tmp_shard_path(&kbk).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_sinks_never_produce_a_complete_looking_shard() {
        let dir = temp_dir("dropped");
        let tsv = dir.join("shard.tsv");
        let mut sink = TsvShardSink::create(&tsv).unwrap();
        sink.consume(EDGES).unwrap();
        drop(sink); // simulates a worker dying mid-stream (warns on stderr)
        assert!(!tsv.exists(), "no shard may appear without finish()");
        assert!(tmp_shard_path(&tsv).exists(), "the partial stays visible");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abandon_removes_the_partial_and_stays_silent() {
        let dir = temp_dir("abandon");
        let kbk = dir.join("shard.kbk");
        let mut sink = BinaryShardSink::create(&kbk, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        sink.abandon();
        assert!(!kbk.exists());
        assert!(!tmp_shard_path(&kbk).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn payload_checksums_match_the_bytes_on_disk() {
        use crate::writer::{shard_checksum, BlockFormat};
        let dir = temp_dir("checksums");
        let tsv = dir.join("shard.tsv");
        let mut sink = TsvShardSink::create(&tsv).unwrap();
        sink.consume(EDGES).unwrap();
        let reported = sink.payload_checksum().unwrap();
        sink.finish().unwrap();
        assert_eq!(reported, shard_checksum(&tsv, BlockFormat::Tsv).unwrap());
        assert_eq!(reported, Fnv1a::hash(&std::fs::read(&tsv).unwrap()));

        let kbk = dir.join("shard.kbk");
        let mut sink = BinaryShardSink::create(&kbk, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        let reported = sink.payload_checksum().unwrap();
        sink.finish().unwrap();
        assert_eq!(reported, shard_checksum(&kbk, BlockFormat::Binary).unwrap());
        // …and the header stores the same checksum the trait reported.
        let bytes = std::fs::read(&kbk).unwrap();
        let stored = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        assert_eq!(stored, reported);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_sink_stages_atomically_and_checksums_its_payload() {
        use crate::writer::{read_block_bin, shard_checksum, BlockFormat};
        let dir = temp_dir("compressed_atomic");
        let kbkz = dir.join("shard.kbkz");
        let mut sink = CompressedShardSink::create(&kbkz, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        assert!(!kbkz.exists(), "the final name must not exist mid-stream");
        assert!(tmp_shard_path(&kbkz).exists());
        // The trailing partial frame is not encoded yet, so the trait
        // reports no mid-stream checksum — finish_with_checksum is the one
        // that seals and reports.
        assert_eq!(sink.payload_checksum(), None);
        let (out, checksum) = sink.finish_with_checksum().unwrap();
        assert_eq!(out, kbkz);
        assert!(kbkz.exists());
        assert!(!tmp_shard_path(&kbkz).exists());
        let checksum = checksum.expect("compressed shards are checksummed");
        assert_eq!(
            checksum,
            shard_checksum(&kbkz, BlockFormat::Compressed).unwrap()
        );
        // …and the header stores the same checksum (offset 40 in the v4
        // layout), over a payload that decodes back to the exact edges.
        let bytes = std::fs::read(&kbkz).unwrap();
        let stored = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        assert_eq!(stored, checksum);
        let block = read_block_bin(&kbkz).unwrap();
        let decoded: Vec<(u64, u64)> = block.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(decoded, EDGES);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_shard_bytes_are_independent_of_consume_granularity() {
        let dir = temp_dir("compressed_granularity");
        let edges: Vec<(u64, u64)> = (0..1000u64).map(|i| (i % 64, (i * 7) % 64)).collect();

        let whole = dir.join("whole.kbkz");
        let mut sink = CompressedShardSink::create(&whole, 64, 64).unwrap();
        sink.consume(&edges).unwrap();
        sink.finish().unwrap();

        let pieces = dir.join("pieces.kbkz");
        let mut sink = CompressedShardSink::create(&pieces, 64, 64).unwrap();
        for piece in edges.chunks(7) {
            sink.consume(piece).unwrap();
        }
        sink.finish().unwrap();

        assert_eq!(
            std::fs::read(&whole).unwrap(),
            std::fs::read(&pieces).unwrap(),
            "shard bytes must depend only on the edge stream, never its chunking"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_sink_abandon_and_drop_leave_no_complete_shard() {
        let dir = temp_dir("compressed_abandon");
        let kbkz = dir.join("shard.kbkz");
        let mut sink = CompressedShardSink::create(&kbkz, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        sink.abandon();
        assert!(!kbkz.exists());
        assert!(!tmp_shard_path(&kbkz).exists());

        let mut sink = CompressedShardSink::create(&kbkz, 4, 4).unwrap();
        sink.consume(EDGES).unwrap();
        drop(sink); // a dying worker: partial stays, final name never appears
        assert!(!kbkz.exists());
        assert!(tmp_shard_path(&kbkz).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sink that fails on the `n`-th consume, for exercising the
    /// double-buffered writer thread's error path.
    struct FailAfter {
        remaining: usize,
    }

    impl EdgeSink for FailAfter {
        type Output = ();

        fn consume(&mut self, _edges: &[(u64, u64)]) -> Result<(), SparseError> {
            if self.remaining == 0 {
                return Err(SparseError::Parse {
                    line: 0,
                    message: "injected sink failure".into(),
                });
            }
            self.remaining -= 1;
            Ok(())
        }

        fn finish(self) -> Result<(), SparseError> {
            Ok(())
        }
    }

    #[test]
    fn double_buffered_sink_delegates_and_matches_the_plain_sink() {
        let dir = temp_dir("double_buffered");
        let plain = dir.join("plain.kbkz");
        let mut sink = CompressedShardSink::create(&plain, 64, 64).unwrap();
        let edges: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 64, (i * 3) % 64)).collect();
        for piece in edges.chunks(33) {
            sink.consume(piece).unwrap();
        }
        let (_, plain_checksum) = sink.finish_with_checksum().unwrap();

        let buffered = dir.join("buffered.kbkz");
        let mut sink =
            DoubleBufferedSink::new(CompressedShardSink::create(&buffered, 64, 64).unwrap());
        for piece in edges.chunks(33) {
            sink.consume(piece).unwrap();
        }
        let (out, checksum) = sink.finish_with_checksum().unwrap();
        assert_eq!(out, buffered);
        assert_eq!(checksum, plain_checksum);
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&buffered).unwrap(),
            "the writer thread must not change the bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_buffered_sink_surfaces_the_writer_threads_error() {
        let mut sink = DoubleBufferedSink::new(FailAfter { remaining: 1 });
        sink.consume(EDGES).unwrap(); // accepted by the inner sink
                                      // The failure lands on the writer thread; it must reach the caller
                                      // on a later consume or at finish, never panic or hang.
        let mut failed = false;
        for _ in 0..100 {
            if sink.consume(EDGES).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            let err = sink.finish().unwrap_err();
            assert!(err.to_string().contains("injected sink failure"), "{err}");
        }
    }

    #[test]
    fn double_buffered_sink_abandon_and_drop_remove_the_partial() {
        let dir = temp_dir("double_buffered_abandon");
        let kbkz = dir.join("abandoned.kbkz");
        let mut sink = DoubleBufferedSink::new(CompressedShardSink::create(&kbkz, 4, 4).unwrap());
        sink.consume(EDGES).unwrap();
        sink.abandon();
        assert!(!kbkz.exists());
        assert!(!tmp_shard_path(&kbkz).exists());

        // Dropping without finish must abandon, not seal a truncated shard.
        let dropped = dir.join("dropped.kbkz");
        let mut sink =
            DoubleBufferedSink::new(CompressedShardSink::create(&dropped, 4, 4).unwrap());
        sink.consume(EDGES).unwrap();
        drop(sink);
        assert!(
            !dropped.exists(),
            "drop must never produce a complete shard"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degree_only_sink_measures_without_writing() {
        let mut sink = DegreeOnlySink::new(4);
        sink.consume(EDGES).unwrap();
        let degrees = sink.finish().unwrap();
        assert_eq!(degrees.edge_count(), 4);
        assert_eq!(degrees.self_loop_count(), 2);
        assert_eq!(degrees.row_counts(), &[1, 1, 1, 1]);
    }
}
