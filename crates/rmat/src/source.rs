//! R-MAT as a first-class pipeline source.
//!
//! [`RmatSource`] implements [`kron_gen::EdgeSource`], so the Graph500-style
//! sampler runs through the exact same `Pipeline` terminals, streamed
//! histogram validation, `RunReport`, and `RunManifest` as the exact
//! Kronecker designs — the head-to-head the paper's §II and §VI are about,
//! now executable at out-of-core scale:
//!
//! ```
//! use kron_gen::Pipeline;
//! use kron_rmat::{RmatParams, RmatSource};
//!
//! let source = RmatSource::new(RmatParams::graph500(10), 42)?;
//! let report = Pipeline::for_source(source).workers(4).count()?;
//! // R-MAT can predict its sample count, but not its degree distribution:
//! assert!(report.predicted.is_none());
//! assert!(report.is_valid()); // the predictable fields (counts) do match
//! assert_eq!(report.manifest.source, "rmat");
//! # Ok::<(), kron_core::CoreError>(())
//! ```
//!
//! Each worker owns a contiguous range of the requested sample indices and
//! draws them through [`RmatGenerator::edge_at`] — deterministic per
//! `(seed, index)` — into the pipeline's reusable chunk, so the edge
//! multiset is identical for every worker count and chunk size, nothing is
//! ever materialised, and memory stays bounded by the chunk.  Because R-MAT
//! only *samples*, [`SourceRun::predicted_properties`] is `None` and
//! validation checks just the fields the parameters fix ahead of time —
//! vertex and sample counts; the degree distribution, duplicate fraction,
//! and triangle count remain measured-only, which is exactly the
//! measure-after-the-fact workflow the exact designer replaces.

use kron_core::validate::{FieldCheck, ValidationReport};
use kron_core::{CoreError, GraphProperties};
use kron_sparse::SparseError;

use kron_gen::chunk::EdgeChunk;
use kron_gen::split::SplitPlan;
use kron_gen::{EdgeSource, SourceDescriptor, SourceRun};

use crate::rmat::{RmatGenerator, RmatParams};

/// The Graph500-style R-MAT sampler as a pipeline [`EdgeSource`].
#[derive(Debug, Clone)]
pub struct RmatSource {
    generator: RmatGenerator,
}

impl RmatSource {
    /// Build a source from validated parameters and a sampling seed.
    pub fn new(params: RmatParams, seed: u64) -> Result<Self, CoreError> {
        Ok(RmatSource {
            generator: RmatGenerator::new(params, seed)?,
        })
    }

    /// Wrap an existing generator.
    pub fn from_generator(generator: RmatGenerator) -> Self {
        RmatSource { generator }
    }

    /// The underlying generator.
    pub fn generator(&self) -> &RmatGenerator {
        &self.generator
    }
}

impl EdgeSource for RmatSource {
    type Run = RmatRun;

    fn vertices(&self) -> Result<u64, CoreError> {
        Ok(self.generator.params().vertices())
    }

    fn prepare(&self, workers: usize) -> Result<(RmatRun, Vec<String>), CoreError> {
        if workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "an R-MAT run needs at least one worker".into(),
            });
        }
        Ok((
            RmatRun {
                generator: self.generator.clone(),
                workers,
            },
            Vec::new(),
        ))
    }
}

/// The prepared state of one R-MAT run: the generator plus the worker count
/// that fixes each worker's contiguous slice of the sample indices.
#[derive(Debug, Clone)]
pub struct RmatRun {
    generator: RmatGenerator,
    workers: usize,
}

impl RmatRun {
    /// Worker `worker`'s contiguous range of global sample indices — the
    /// one shared even split of [`RmatGenerator::sample_range`].
    fn sample_range(&self, worker: usize) -> std::ops::Range<u64> {
        self.generator.sample_range(worker, self.workers)
    }
}

impl SourceRun for RmatRun {
    fn stream_worker<E, F>(
        &self,
        worker: usize,
        chunk: &mut EdgeChunk,
        mut sink: F,
    ) -> Result<u64, E>
    where
        E: From<SparseError>,
        F: FnMut(&[(u64, u64)]) -> Result<(), E>,
    {
        chunk.try_flush(&mut sink)?;
        let range = self.sample_range(worker);
        let delivered = range.end - range.start;
        // Draw chunk-sized runs straight into the chunk's spare capacity
        // through the batched quadrant walk (bit-identical to edge_at per
        // index): the sampler touches each edge slot exactly once and the
        // per-edge push/is_full round trip disappears.  Runs are sized by
        // the chunk's remaining space, so worker count and chunk size still
        // never change the stream or the flush boundaries.
        let sampler = self.generator.batch_sampler();
        let mut index = range.start;
        while index < range.end {
            let len = ((range.end - index) as usize).min(chunk.remaining());
            chunk.fill_spare(len, |slots| sampler.fill(index, slots));
            if chunk.is_full() {
                chunk.try_flush(&mut sink)?;
            }
            index += len as u64;
        }
        chunk.try_flush(&mut sink)?;
        Ok(delivered)
    }

    fn predicted_properties(&self) -> Option<GraphProperties> {
        // R-MAT samples; its property sheet exists only after measurement.
        None
    }

    fn validate(&self, measured: &GraphProperties) -> ValidationReport {
        // The only quantities the parameters fix ahead of generation: the
        // vertex-space size and the number of samples drawn.  Everything
        // else — degree distribution, duplicates, triangles — is
        // measured-only.
        let params = self.generator.params();
        ValidationReport::from_checks(vec![
            FieldCheck::exact("vertices", params.vertices(), &measured.vertices),
            FieldCheck::exact("edges", params.requested_edges(), &measured.edges),
        ])
    }

    fn split_plan(&self) -> Option<SplitPlan> {
        None
    }

    fn descriptor(&self) -> SourceDescriptor {
        let params = self.generator.params();
        SourceDescriptor {
            kind: "rmat",
            seed: Some(self.generator.seed()),
            star_points: Vec::new(),
            self_loop: "None".to_string(),
            vertices: params.vertices().to_string(),
            predicted_edges: params.requested_edges().to_string(),
            split_index: 0,
            max_c_edges: 0,
            max_b_edges: 0,
            self_loop_policy: "raw_samples".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_stream(run: &RmatRun, worker: usize, chunk_capacity: usize) -> Vec<(u64, u64)> {
        let mut edges = Vec::new();
        let mut chunk = EdgeChunk::new(chunk_capacity);
        run.stream_worker::<SparseError, _>(worker, &mut chunk, |slice| {
            edges.extend_from_slice(slice);
            Ok(())
        })
        .unwrap();
        edges
    }

    #[test]
    fn worker_ranges_cover_every_sample_exactly_once() {
        let source = RmatSource::new(RmatParams::graph500(6), 5).unwrap();
        for workers in [1usize, 2, 3, 7] {
            let (run, warnings) = source.prepare(workers).unwrap();
            assert!(warnings.is_empty());
            let mut covered = 0u64;
            let mut previous_end = 0u64;
            for worker in 0..workers {
                let range = run.sample_range(worker);
                assert_eq!(range.start, previous_end, "ranges must be contiguous");
                previous_end = range.end;
                covered += range.end - range.start;
            }
            assert_eq!(covered, source.generator().params().requested_edges());
        }
    }

    #[test]
    fn stream_is_identical_across_worker_counts_and_chunk_sizes() {
        let source = RmatSource::new(RmatParams::graph500(6), 11).unwrap();
        let (reference_run, _) = source.prepare(1).unwrap();
        let reference = collect_stream(&reference_run, 0, 4096);
        assert_eq!(
            reference.len() as u64,
            source.generator().params().requested_edges()
        );
        for workers in [2usize, 3, 5] {
            for chunk_capacity in [1usize, 7, 1024] {
                let (run, _) = source.prepare(workers).unwrap();
                let mut all = Vec::new();
                for worker in 0..workers {
                    all.extend(collect_stream(&run, worker, chunk_capacity));
                }
                assert_eq!(
                    all, reference,
                    "w{workers} c{chunk_capacity} changed the sample stream"
                );
            }
        }
    }

    #[test]
    fn descriptor_records_the_sampling_seed() {
        let source = RmatSource::new(RmatParams::graph500(5), 777).unwrap();
        let (run, _) = source.prepare(2).unwrap();
        let descriptor = run.descriptor();
        assert_eq!(descriptor.kind, "rmat");
        assert_eq!(descriptor.seed, Some(777));
        assert!(descriptor.star_points.is_empty());
        assert_eq!(descriptor.vertices, "32");
        assert_eq!(descriptor.predicted_edges, "512");
        assert!(run.predicted_properties().is_none());
        assert!(run.split_plan().is_none());
    }

    #[test]
    fn zero_workers_rejected_at_prepare() {
        let source = RmatSource::new(RmatParams::graph500(5), 1).unwrap();
        assert!(matches!(
            source.prepare(0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn invalid_parameters_surface_the_core_error() {
        let mut params = RmatParams::graph500(5);
        params.a = 2.0;
        assert!(matches!(
            RmatSource::new(params, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
