//! # extreme-graphs
//!
//! Design, generation, and validation of extreme-scale power-law graphs —
//! a Rust workspace reproducing Kepner et al. (IPDPS 2018).
//!
//! This crate is the facade over the workspace:
//!
//! * [`bignum`] (re-export of `kron-bignum`) — exact arbitrary-precision
//!   arithmetic for 10^30-edge designs.
//! * [`sparse`] (re-export of `kron-sparse`) — the GraphBLAS-style sparse
//!   matrix substrate (semirings, COO/CSR/CSC, Kronecker products, SpGEMM).
//! * [`core`] (re-export of `kron-core`) — the paper's contribution: exact
//!   design of power-law Kronecker graphs from star constituents.
//! * [`gen`] (re-export of `kron-gen`) — communication-free parallel
//!   generation with rayon workers standing in for the paper's processors.
//! * [`rmat`] (re-export of `kron-rmat`) — the R-MAT / Graph500 baseline and
//!   its trial-and-error design loop.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use extreme_graphs::{KroneckerDesign, ParallelGenerator, GeneratorConfig, SelfLoop};
//!
//! // Design a graph with exactly known properties…
//! let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
//! assert_eq!(design.edges().to_string(), "13166");
//!
//! // …generate it in parallel with no inter-worker communication…
//! let generator = ParallelGenerator::new(GeneratorConfig {
//!     workers: 4,
//!     max_c_edges: 10_000,
//!     max_total_edges: 1_000_000,
//! });
//! let graph = generator.generate(&design).unwrap();
//!
//! // …and verify the realisation matches the design exactly.
//! assert_eq!(graph.edge_count().to_string(), design.edges().to_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kron_bignum as bignum;
pub use kron_core as core;
pub use kron_gen as gen;
pub use kron_rmat as rmat;
pub use kron_sparse as sparse;

pub use kron_bignum::{BigInt, BigRatio, BigUint};
pub use kron_core::{
    Constituent, DegreeDistribution, DesignSearch, DesignTargets, GraphProperties, KroneckerDesign,
    SelfLoop, StarGraph, ValidationReport,
};
pub use kron_gen::{
    DistributedGraph, DriverConfig, GenerationStats, GeneratorConfig, ParallelGenerator,
    ShardDriver, ShardRun,
};
pub use kron_rmat::{RmatGenerator, RmatParams};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert_eq!(design.vertices(), BigUint::from(20u64));
        let params = RmatParams::graph500(5);
        assert!(params.is_valid());
    }
}
