//! Reductions: degree vectors, nnz-per-row/column, degree histograms.
//!
//! For an adjacency matrix the "degree" of vertex `i` used throughout the
//! paper is the number of stored entries in row `i` plus column `i` for a
//! directed interpretation, or simply the row count for the symmetric
//! matrices the star constituents produce.  These helpers operate on the
//! *pattern* (stored entries), matching the paper's `nnz`-based definitions.

use std::collections::BTreeMap;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::semiring::Scalar;

/// Number of stored entries in each row of a COO matrix.
pub fn row_counts<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    let nrows = usize::try_from(m.nrows()).expect("row count vector must fit in memory");
    let mut counts = vec![0u64; nrows];
    for &r in m.row_indices() {
        counts[r as usize] += 1;
    }
    counts
}

/// Number of stored entries in each column of a COO matrix.
pub fn col_counts<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    let ncols = usize::try_from(m.ncols()).expect("column count vector must fit in memory");
    let mut counts = vec![0u64; ncols];
    for &c in m.col_indices() {
        counts[c as usize] += 1;
    }
    counts
}

/// Row-pattern degrees of a CSR matrix (`nnz` per row).
pub fn csr_row_degrees<T: Scalar>(m: &CsrMatrix<T>) -> Vec<u64> {
    (0..m.nrows()).map(|r| m.row_nnz(r) as u64).collect()
}

/// Undirected vertex degrees of a symmetric adjacency matrix in COO form:
/// the number of stored entries in the vertex's row.  For matrices that are
/// not symmetric use [`total_degrees`], which counts row + column entries.
pub fn symmetric_degrees<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    row_counts(m)
}

/// Total (in + out) pattern degree of each vertex of a square COO matrix.
pub fn total_degrees<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    assert!(m.is_square(), "total_degrees requires a square matrix");
    let n = usize::try_from(m.nrows()).expect("degree vector must fit in memory");
    let mut counts = vec![0u64; n];
    for (r, c, _) in m.iter() {
        counts[r as usize] += 1;
        if r != c {
            counts[c as usize] += 1;
        }
    }
    counts
}

/// Histogram of a degree vector: map from degree `d` to the number of
/// vertices with that degree.  Vertices of degree zero are included under
/// key `0` (the paper's generator guarantees there are none).
pub fn degree_histogram(degrees: &[u64]) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    for &d in degrees {
        *hist.entry(d).or_insert(0u64) += 1;
    }
    hist
}

/// Histogram of row-pattern degrees of a COO matrix.
pub fn degree_distribution<T: Scalar>(m: &CooMatrix<T>) -> BTreeMap<u64, u64> {
    let mut hist = degree_histogram(&row_counts(m));
    // Vertices with no stored entries at all still count as degree 0.
    let total_vertices: u64 = m.nrows();
    let seen: u64 = hist.values().sum();
    if total_vertices > seen {
        *hist.entry(0).or_insert(0) += total_vertices - seen;
    }
    // `degree_histogram(&row_counts)` already counts zero-degree rows, so the
    // adjustment above only matters if row_counts was truncated, which it is
    // not; keep the invariant explicit anyway.
    hist
}

/// Total number of stored entries per row, returned as `(max, min, mean)`;
/// useful for checking the paper's per-processor load balance claim.
pub fn balance_stats(counts: &[usize]) -> (usize, usize, f64) {
    if counts.is_empty() {
        return (0, 0, 0.0);
    }
    let max = *counts.iter().max().expect("non-empty");
    let min = *counts.iter().min().expect("non-empty");
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    (max, min, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn star5_with_center_loop() -> CooMatrix<u64> {
        // Centre 0 with 5 leaves plus a self-loop on the centre.
        let mut edges = vec![(0u64, 0u64)];
        for leaf in 1..=5u64 {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        CooMatrix::from_edges(6, 6, edges).unwrap()
    }

    #[test]
    fn row_and_col_counts() {
        let m = star5_with_center_loop();
        let rows = row_counts(&m);
        assert_eq!(rows[0], 6);
        assert_eq!(rows[1..], [1, 1, 1, 1, 1]);
        let cols = col_counts(&m);
        assert_eq!(cols, rows, "symmetric matrix has equal row/col counts");
    }

    #[test]
    fn csr_degrees_match_coo() {
        let m = star5_with_center_loop();
        let csr = CsrMatrix::from_coo::<PlusTimes>(&m).unwrap();
        assert_eq!(csr_row_degrees(&csr), row_counts(&m));
    }

    #[test]
    fn degree_histogram_counts_vertices() {
        let m = star5_with_center_loop();
        let hist = degree_distribution(&m);
        assert_eq!(hist.get(&1), Some(&5));
        assert_eq!(hist.get(&6), Some(&1));
        assert_eq!(hist.values().sum::<u64>(), 6);
    }

    #[test]
    fn zero_degree_vertices_are_counted() {
        let m = CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0)]).unwrap();
        let hist = degree_distribution(&m);
        assert_eq!(hist.get(&0), Some(&2));
        assert_eq!(hist.get(&1), Some(&2));
    }

    #[test]
    fn total_degrees_counts_both_endpoints() {
        let m = CooMatrix::from_edges(3, 3, vec![(0, 1), (2, 2)]).unwrap();
        let degs = total_degrees(&m);
        assert_eq!(degs, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn total_degrees_requires_square() {
        let m = CooMatrix::from_edges(2, 3, vec![(0, 1)]).unwrap();
        let _ = total_degrees(&m);
    }

    #[test]
    fn balance_stats_basics() {
        assert_eq!(balance_stats(&[]), (0, 0, 0.0));
        let (max, min, mean) = balance_stats(&[4, 4, 4, 4]);
        assert_eq!((max, min), (4, 4));
        assert!((mean - 4.0).abs() < 1e-12);
        let (max, min, _) = balance_stats(&[1, 7, 4]);
        assert_eq!((max, min), (7, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..15, 1u64..15).prop_flat_map(|(nr, nc)| {
            proptest::collection::vec((0..nr, 0..nc, 1u64..3), 0..40)
                .prop_map(move |es| CooMatrix::from_entries(nr, nc, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn counts_sum_to_nnz(m in arb_coo()) {
            prop_assert_eq!(row_counts(&m).iter().sum::<u64>() as usize, m.nnz());
            prop_assert_eq!(col_counts(&m).iter().sum::<u64>() as usize, m.nnz());
        }

        #[test]
        fn histogram_sums_to_vertex_count(m in arb_coo()) {
            let hist = degree_distribution(&m);
            prop_assert_eq!(hist.values().sum::<u64>(), m.nrows());
        }

        #[test]
        fn transpose_swaps_row_col_counts(m in arb_coo()) {
            prop_assert_eq!(row_counts(&m), col_counts(&m.transpose()));
        }
    }
}
