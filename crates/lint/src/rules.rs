//! The rule engine: file classification, the invariant rules, and the
//! inline suppression syntax.
//!
//! Every rule guards an invariant the rest of the workspace depends on:
//!
//! * **Determinism** — edge streams must be bit-identical per
//!   `(seed, index)` for any worker count, so library code may not read
//!   ambient clocks, ambient randomness, or iterate hash containers.
//! * **Durability** — all final-name shard files must pass through the
//!   fsync→rename atomic sinks (or the fsynced journal), so `kron-gen`
//!   may not touch raw file-creation APIs outside those modules.
//! * **Error typing** — failures surface as typed errors naming the
//!   shard, so library code may not `unwrap`/`expect`/`panic!` and
//!   public signatures may not erase error types behind `Box<dyn Error>`.
//! * **Hygiene** — every crate root forbids `unsafe_code`, and every
//!   `#[allow(..)]` (like every lint suppression) carries a written
//!   justification.
//!
//! Suppression syntax, one exception documented in place:
//!
//! ```text
//! // lint:allow(no-expect) -- mutex poisoning means a worker already panicked
//! ```
//!
//! A trailing suppression covers its own line; a standalone suppression
//! comment covers itself and the line directly below.  The reason after
//! `--` is mandatory: a reasonless `lint:allow` is itself a finding.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rayon::prelude::*;

use crate::lexer::{lex, test_mask, Comment, Lexed, TokKind, Token};
use crate::parser::{parse_file, ParsedFile};
use crate::semantic;

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Shipped library code (`crates/*/src`, the facade `src/`): every
    /// rule applies.
    Library,
    /// `examples/`: user-facing idiom, so the error-typing rules apply,
    /// but determinism rules do not (examples may print timings).
    Example,
    /// Integration tests and `#[cfg(test)]` regions: only the
    /// suppression-syntax rule applies.
    Test,
    /// Benchmarks and the figure binaries: measurement code is allowed
    /// clocks, hash maps, and `expect`; only suppression syntax applies.
    Bench,
}

/// A classified workspace source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    pub rel: String,
    pub kind: FileKind,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    pub suppressed: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule identifiers (also the names accepted by `lint:allow(..)`).
pub const NO_UNWRAP: &str = "no-unwrap";
pub const NO_EXPECT: &str = "no-expect";
pub const NO_PANIC: &str = "no-panic";
pub const BOX_DYN_ERROR: &str = "box-dyn-error";
pub const NO_HASH_COLLECTIONS: &str = "no-hash-collections";
pub const NO_AMBIENT_TIME: &str = "no-ambient-time";
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
pub const RAW_FS_SHARD: &str = "raw-fs-shard";
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
pub const ALLOW_WITHOUT_REASON: &str = "allow-without-reason";
pub const BAD_SUPPRESSION: &str = "bad-suppression";
pub const PANIC_REACHABILITY: &str = "panic-reachability";
pub const MANIFEST_SCHEMA_DRIFT: &str = "manifest-schema-drift";
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every shipped rule with a one-line rationale, for `--rules` output
/// and the README table.
pub const RULES: &[(&str, &str)] = &[
    (NO_UNWRAP, "library/example code must not call .unwrap()"),
    (NO_EXPECT, "library/example code must not call .expect(..)"),
    (NO_PANIC, "library/example code must not invoke panic!"),
    (
        BOX_DYN_ERROR,
        "public signatures must keep typed errors, not Box<dyn Error>",
    ),
    (
        NO_HASH_COLLECTIONS,
        "HashMap/HashSet iteration order is nondeterministic; use BTree maps",
    ),
    (
        NO_AMBIENT_TIME,
        "SystemTime::now/Instant::now are ambient inputs that break replay",
    ),
    (
        NO_AMBIENT_RNG,
        "thread_rng/from_entropy/rand::random break (seed, index) determinism",
    ),
    (
        RAW_FS_SHARD,
        "kron-gen file creation must go through the atomic sink/journal modules",
    ),
    (
        MISSING_FORBID_UNSAFE,
        "crate roots must carry #![forbid(unsafe_code)]",
    ),
    (
        ALLOW_WITHOUT_REASON,
        "#[allow(..)] needs a justification comment beside it",
    ),
    (
        BAD_SUPPRESSION,
        "lint:allow(..) must carry a reason after ` -- `",
    ),
    (
        PANIC_REACHABILITY,
        "no call path from a Pipeline public entry point may reach a panic site",
    ),
    (
        MANIFEST_SCHEMA_DRIFT,
        "every JSON key the manifest/journal writers emit must be parsed back, and vice versa",
    ),
    (
        ATOMIC_ORDERING,
        "every atomic op site carries an adjacent comment justifying its memory ordering",
    ),
    (
        UNUSED_SUPPRESSION,
        "a lint:allow that suppresses no finding is dead and must be deleted",
    ),
];

/// `kron-gen` modules that own the atomic write path and may therefore
/// touch raw file-creation APIs: the fsync→rename sinks and the
/// fsynced manifest/progress journal.
const GEN_FS_OWNERS: &[&str] = &["crates/gen/src/sink.rs", "crates/gen/src/manifest.rs"];

/// Classify a workspace-relative path (forward slashes).  `None` means
/// the file is outside the lint's jurisdiction (vendored code, build
/// output, the lint's own rule fixtures).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/lint/fixtures/")
    {
        return None;
    }
    let kind = if rel.starts_with("crates/bench/") || rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::Test
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/")) {
        FileKind::Library
    } else {
        // Stray root-level .rs files (build scripts, future tooling)
        // get full library scrutiny by default.
        FileKind::Library
    };
    Some(FileClass {
        rel: rel.to_string(),
        kind,
    })
}

/// Whether `rel` is a crate root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs"] | ["crates", _, "src", "main.rs"]
    )
}

/// A parsed, well-formed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rules: Vec<String>,
    /// Lines this suppression covers.
    pub lines: Vec<u32>,
    pub reason: String,
}

/// Parse every `lint:allow` comment: returns the valid suppressions and
/// a finding for each malformed one (missing rule list or missing
/// ` -- reason`).
pub fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut valid = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        // Doc comments *describe* the syntax; only plain `//` comments
        // can suppress.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow".len()..];
        let parsed = parse_allow_body(rest);
        match parsed {
            Ok((rules, reason)) => {
                let mut lines = vec![c.line];
                if c.standalone {
                    lines.push(c.line + 1);
                }
                valid.push(Suppression {
                    rules,
                    lines,
                    reason,
                });
            }
            Err(why) => malformed.push((c.line, why)),
        }
    }
    (valid, malformed)
}

/// Parse `(rule, rule, ..) -- reason` after the `lint:allow` keyword.
fn parse_allow_body(rest: &str) -> Result<(Vec<String>, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_string());
    };
    let Some(close) = body.find(')') else {
        return Err("unclosed rule list in lint:allow(..)".to_string());
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("lint:allow(..) names no rules".to_string());
    }
    let known: BTreeSet<&str> = RULES.iter().map(|(id, _)| *id).collect();
    if let Some(unknown) = rules.iter().find(|r| !known.contains(r.as_str())) {
        return Err(format!("lint:allow names unknown rule `{unknown}`"));
    }
    let tail = body[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err(
            "lint:allow(..) is missing ` -- <reason>`: every suppression documents why".to_string(),
        );
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(
            "lint:allow(..) has an empty reason: every suppression documents why".to_string(),
        );
    }
    Ok((rules, reason.to_string()))
}

/// The per-file analysis phase: classification, lexing, test masking,
/// suppression parsing, item parsing, and every per-file rule scan.
/// Independent across files, so [`lint_root`] runs it in parallel; the
/// workspace phase ([`lint_workspace`]) then runs the cross-file rules
/// and suppression accounting sequentially.
#[derive(Debug)]
pub struct FileAnalysis {
    pub class: FileClass,
    pub lexed: Lexed,
    pub mask: Vec<bool>,
    pub suppressions: Vec<Suppression>,
    pub parsed: ParsedFile,
    /// Per-file raw findings, before suppression matching.
    raw: Vec<(u32, &'static str, String)>,
}

/// Analyze one source file.  `None` when the path is outside the lint's
/// jurisdiction.
pub fn analyze_file(rel: &str, source: &str) -> Option<FileAnalysis> {
    let class = classify(rel)?;
    let lexed = lex(source);
    let mask = test_mask(&lexed.tokens);
    let (suppressions, malformed) = parse_suppressions(&lexed.line_comments);
    let parsed = parse_file(rel, &lexed, &mask);

    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    for (line, why) in malformed {
        raw.push((line, BAD_SUPPRESSION, why));
    }

    let error_typing = matches!(class.kind, FileKind::Library | FileKind::Example);
    let determinism = class.kind == FileKind::Library;
    if error_typing {
        scan_error_typing(&lexed, &mask, &mut raw);
        scan_allow_attrs(&lexed, &mut raw);
    }
    if determinism {
        scan_determinism(&lexed, &mask, &mut raw);
        scan_pub_signatures(&lexed, &mask, &mut raw);
        semantic::scan_atomic_ordering(&lexed, &mask, &mut raw);
        if semantic::is_manifest_file(&class.rel) {
            semantic::scan_manifest_schema(&lexed, &mask, &mut raw);
        }
        if class.rel.starts_with("crates/gen/src/") && !GEN_FS_OWNERS.contains(&class.rel.as_str())
        {
            scan_raw_fs(&lexed, &mask, &mut raw);
        }
        if is_crate_root(&class.rel) && !has_forbid_unsafe(&lexed.tokens) {
            raw.push((
                1,
                MISSING_FORBID_UNSAFE,
                "crate root lacks #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }

    Some(FileAnalysis {
        class,
        lexed,
        mask,
        suppressions,
        parsed,
        raw,
    })
}

/// The whole-workspace phase: apply suppressions to every per-file
/// finding, run the cross-file panic-reachability rule, then report
/// every suppression that matched nothing (`unused-suppression`).
///
/// Passing a single file still runs every rule — the call graph is just
/// confined to that file — which is what [`lint_source`] and the
/// single-file fixtures rely on.
pub fn lint_workspace(files: &[FileAnalysis]) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    // used[file][suppression] — a suppression is "used" once it covers
    // at least one finding of one of its rules.
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.suppressions.len()])
        .collect();
    // Round 1: per-file raw findings.
    let mut open_panics: Vec<Vec<u32>> = vec![Vec::new(); files.len()];
    for (fi, f) in files.iter().enumerate() {
        for (line, rule, message) in &f.raw {
            let suppressed = apply_suppressions(f, &mut used[fi], *line, rule);
            if !suppressed && matches!(*rule, NO_UNWRAP | NO_EXPECT | NO_PANIC) {
                open_panics[fi].push(*line);
            }
            findings.push(Finding {
                file: f.class.rel.clone(),
                line: *line,
                rule,
                message: message.clone(),
                suppressed,
            });
        }
    }
    // Round 2: cross-file panic-reachability.
    let reach_files: Vec<semantic::ReachFile<'_>> = files
        .iter()
        .enumerate()
        .map(|(fi, f)| semantic::ReachFile {
            lexed: &f.lexed,
            parsed: &f.parsed,
            mask: &f.mask,
            is_library: f.class.kind == FileKind::Library,
            open_panic_lines: &open_panics[fi],
        })
        .collect();
    for (fi, line, rule, message) in semantic::panic_reachability(&reach_files) {
        let f = &files[fi];
        let suppressed = apply_suppressions(f, &mut used[fi], line, rule);
        findings.push(Finding {
            file: f.class.rel.clone(),
            line,
            rule,
            message,
            suppressed,
        });
    }
    // Round 3: suppressions that covered nothing are themselves
    // findings — suppressible only by an explicit allow naming the
    // unused-suppression rule (self-suppression included, as the
    // documented way to keep an exemplar).
    for (fi, f) in files.iter().enumerate() {
        let unused: Vec<(u32, String)> = f
            .suppressions
            .iter()
            .zip(&used[fi])
            .filter(|(_, &u)| !u)
            .map(|(s, _)| (s.lines[0], s.rules.join(", ")))
            .collect();
        for (line, rules) in unused {
            let suppressed = apply_suppressions(f, &mut used[fi], line, UNUSED_SUPPRESSION);
            findings.push(Finding {
                file: f.class.rel.clone(),
                line,
                rule: UNUSED_SUPPRESSION,
                message: format!(
                    "`lint:allow({rules})` suppresses no finding; delete the dead suppression"
                ),
                suppressed,
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Whether any suppression in `f` covers `(line, rule)`; every covering
/// suppression is marked used.
fn apply_suppressions(f: &FileAnalysis, used: &mut [bool], line: u32, rule: &str) -> bool {
    let mut hit = false;
    for (k, s) in f.suppressions.iter().enumerate() {
        if s.lines.contains(&line) && s.rules.iter().any(|r| r == rule) {
            used[k] = true;
            hit = true;
        }
    }
    hit
}

/// Lint one source file under its classification.  Returns every
/// finding, with `suppressed` set where a valid `lint:allow` covers it.
/// Cross-file rules see only this file.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    match analyze_file(rel, source) {
        Some(fa) => lint_workspace(&[fa]),
        None => Vec::new(),
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// `a :: b` starting at index `i` (where `a` is already matched).
fn path_seg(tokens: &[Token], i: usize, seg: &str) -> bool {
    punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':') && ident_at(tokens, i + 2) == Some(seg)
}

fn scan_error_typing(lexed: &Lexed, mask: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        if punct_at(t, i, '.') && punct_at(t, i + 2, '(') {
            match ident_at(t, i + 1) {
                Some("unwrap") => out.push((
                    t[i + 1].line,
                    NO_UNWRAP,
                    "`.unwrap()` panics instead of returning a typed error".to_string(),
                )),
                Some("expect") => out.push((
                    t[i + 1].line,
                    NO_EXPECT,
                    "`.expect(..)` panics instead of returning a typed error".to_string(),
                )),
                _ => {}
            }
        }
        if ident_at(t, i) == Some("panic") && punct_at(t, i + 1, '!') {
            out.push((
                t[i].line,
                NO_PANIC,
                "`panic!` aborts instead of returning a typed error".to_string(),
            ));
        }
    }
}

fn scan_determinism(lexed: &Lexed, mask: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        match ident_at(t, i) {
            Some(name @ ("HashMap" | "HashSet")) => out.push((
                t[i].line,
                NO_HASH_COLLECTIONS,
                format!("`{name}` iteration order is nondeterministic; use the BTree equivalent"),
            )),
            Some(name @ ("SystemTime" | "Instant")) if path_seg(t, i + 1, "now") => out.push((
                t[i].line,
                NO_AMBIENT_TIME,
                format!("`{name}::now()` reads an ambient clock; pass time in explicitly"),
            )),
            Some(name @ ("thread_rng" | "from_entropy")) => out.push((
                t[i].line,
                NO_AMBIENT_RNG,
                format!("`{name}` draws ambient randomness; derive streams from an explicit seed"),
            )),
            Some("rand") if path_seg(t, i + 1, "random") => out.push((
                t[i].line,
                NO_AMBIENT_RNG,
                "`rand::random` draws ambient randomness; derive streams from an explicit seed"
                    .to_string(),
            )),
            _ => {}
        }
    }
}

fn scan_raw_fs(lexed: &Lexed, mask: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        let hit = match ident_at(t, i) {
            Some("fs") if path_seg(t, i + 1, "write") => Some("fs::write"),
            Some("fs") if path_seg(t, i + 1, "rename") => Some("fs::rename"),
            Some("File") if path_seg(t, i + 1, "create") => Some("File::create"),
            Some("OpenOptions") => Some("OpenOptions"),
            _ => None,
        };
        if let Some(api) = hit {
            out.push((
                t[i].line,
                RAW_FS_SHARD,
                format!(
                    "`{api}` outside the atomic sink/journal modules can leave a truncated \
                     final-name shard; write through kron_gen::sink or the manifest journal"
                ),
            ));
        }
    }
}

/// Scan `pub fn` signatures for `Box<dyn .. Error ..>`.
fn scan_pub_signatures(lexed: &Lexed, mask: &[bool], out: &mut Vec<(u32, &'static str, String)>) {
    let t = &lexed.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if mask[i] || ident_at(t, i) != Some("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(in ..)` visibility qualifier.
        if punct_at(t, j, '(') {
            let mut depth = 0usize;
            while j < t.len() {
                if punct_at(t, j, '(') {
                    depth += 1;
                } else if punct_at(t, j, ')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Skip qualifiers like `const`, `async`, `unsafe`, `extern "C"`.
        while matches!(
            ident_at(t, j),
            Some("const" | "async" | "unsafe" | "extern")
        ) {
            j += 1;
        }
        if ident_at(t, j) != Some("fn") {
            i += 1;
            continue;
        }
        // Signature runs to the body `{` or a trait-style `;`.
        let mut k = j;
        let sig_end = loop {
            if k >= t.len() {
                break k;
            }
            if punct_at(t, k, '{') || punct_at(t, k, ';') {
                break k;
            }
            k += 1;
        };
        scan_box_dyn_error(&t[j..sig_end], t[j].line, out);
        i = sig_end.max(i + 1);
    }
}

fn scan_box_dyn_error(sig: &[Token], _line: u32, out: &mut Vec<(u32, &'static str, String)>) {
    for i in 0..sig.len() {
        if ident_at(sig, i) == Some("Box")
            && punct_at(sig, i + 1, '<')
            && ident_at(sig, i + 2) == Some("dyn")
        {
            // Walk the angle-bracket group looking for an `Error` ident.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < sig.len() {
                if punct_at(sig, j, '<') {
                    depth += 1;
                } else if punct_at(sig, j, '>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if ident_at(sig, j).is_some_and(|s| s.ends_with("Error")) {
                    out.push((
                        sig[i].line,
                        BOX_DYN_ERROR,
                        "public signature erases the error type behind `Box<dyn Error>`; \
                         return a typed error so callers can match on failures"
                            .to_string(),
                    ));
                    break;
                }
                j += 1;
            }
        }
    }
}

/// Every `#[allow(..)]` / `#![allow(..)]` needs a comment on its own
/// line or the line above.
fn scan_allow_attrs(lexed: &Lexed, out: &mut Vec<(u32, &'static str, String)>) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if !punct_at(t, i, '#') {
            continue;
        }
        let mut j = i + 1;
        if punct_at(t, j, '!') {
            j += 1;
        }
        if punct_at(t, j, '[') && ident_at(t, j + 1) == Some("allow") && punct_at(t, j + 2, '(') {
            let line = t[i].line;
            let justified =
                lexed.comment_lines.contains(&line) || lexed.comment_lines.contains(&(line - 1));
            if !justified {
                out.push((
                    line,
                    ALLOW_WITHOUT_REASON,
                    "`#[allow(..)]` without a justification comment beside it".to_string(),
                ));
            }
        }
    }
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    for i in 0..tokens.len() {
        if punct_at(tokens, i, '#')
            && punct_at(tokens, i + 1, '!')
            && punct_at(tokens, i + 2, '[')
            && ident_at(tokens, i + 3) == Some("forbid")
            && punct_at(tokens, i + 4, '(')
            && ident_at(tokens, i + 5) == Some("unsafe_code")
        {
            return true;
        }
    }
    false
}

/// Recursively collect workspace `.rs` sources under `root`, skipping
/// vendored code, build output, VCS metadata, and the lint fixtures.
/// Returned paths are workspace-relative with `/` separators, sorted.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        let mut entries: Vec<_> = fs::read_dir(&abs)?.collect::<io::Result<Vec<_>>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if matches!(name.as_str(), "vendor" | "target" | ".git")
                    || rel_str == "crates/lint/fixtures"
                {
                    continue;
                }
                stack.push(rel);
            } else if ty.is_file() && rel_str.ends_with(".rs") {
                out.push(rel_str);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace source under `root`.  The per-file analysis
/// phase (lex, parse, per-file scans) runs in parallel; the cross-file
/// phase is sequential.
pub fn lint_root(root: &Path) -> io::Result<Vec<Finding>> {
    let sources: Vec<(String, String)> = collect_sources(root)?
        .into_iter()
        .map(|rel| {
            let source = fs::read_to_string(root.join(&rel))?;
            Ok((rel, source))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let analyses: Vec<FileAnalysis> = sources
        .into_par_iter()
        .map(|(rel, source)| analyze_file(&rel, &source))
        .collect::<Vec<Option<FileAnalysis>>>()
        .into_iter()
        .flatten()
        .collect();
    Ok(lint_workspace(&analyses))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_requires_reason() {
        let lexed = lex("// lint:allow(no-unwrap)\nlet x = 1;\n");
        let (valid, malformed) = parse_suppressions(&lexed.line_comments);
        assert!(valid.is_empty());
        assert_eq!(malformed.len(), 1);
        assert!(malformed[0].1.contains("reason"));
    }

    #[test]
    fn suppression_rejects_empty_reason() {
        let lexed = lex("// lint:allow(no-unwrap) -- \nlet x = 1;\n");
        let (valid, malformed) = parse_suppressions(&lexed.line_comments);
        assert!(valid.is_empty());
        assert_eq!(malformed.len(), 1);
    }

    #[test]
    fn suppression_rejects_unknown_rule() {
        let lexed = lex("// lint:allow(no-such-rule) -- because\n");
        let (_, malformed) = parse_suppressions(&lexed.line_comments);
        assert_eq!(malformed.len(), 1);
        assert!(malformed[0].1.contains("unknown rule"));
    }

    #[test]
    fn suppression_parses_rule_list_and_reason() {
        let lexed = lex("foo(); // lint:allow(no-unwrap, no-expect) -- test helper\n");
        let (valid, malformed) = parse_suppressions(&lexed.line_comments);
        assert!(malformed.is_empty());
        assert_eq!(valid.len(), 1);
        assert_eq!(valid[0].rules, vec!["no-unwrap", "no-expect"]);
        assert_eq!(valid[0].reason, "test helper");
        assert_eq!(valid[0].lines, vec![1]);
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let src = "#![forbid(unsafe_code)]\n\
                   // lint:allow(no-unwrap) -- demo of the next-line span\n\
                   pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let findings = lint_source("crates/core/src/demo.rs", src);
        assert!(findings.iter().all(|f| f.suppressed), "{findings:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_error_typing() {
        let src = "pub fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); }\n\
                   }\n";
        let findings = lint_source("crates/core/src/demo.rs", src);
        assert!(findings.iter().all(|f| f.rule != NO_UNWRAP), "{findings:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "pub fn ok() -> &'static str {\n\
                       // .unwrap() and panic! in a comment\n\
                       \"fs::write .expect( HashMap\"\n\
                   }\n";
        let findings = lint_source("crates/core/src/demo.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(
            classify("crates/gen/src/sink.rs").map(|c| c.kind),
            Some(FileKind::Library)
        );
        assert_eq!(
            classify("examples/quickstart.rs").map(|c| c.kind),
            Some(FileKind::Example)
        );
        assert_eq!(classify("tests/a.rs").map(|c| c.kind), Some(FileKind::Test));
        assert_eq!(
            classify("crates/bench/src/lib.rs").map(|c| c.kind),
            Some(FileKind::Bench)
        );
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/lint/fixtures/x.rs").is_none());
    }
}
