//! Writing distributed graphs to disk.
//!
//! The natural on-disk form of a distributed Kronecker graph is one file per
//! worker — exactly what a distributed file system would hold after the
//! paper's generation run.  Blocks are written in parallel (each worker owns
//! its file, so there is still no coordination), and two formats are
//! supported:
//!
//! * **TSV triples** (`block_<p>.tsv`) — the interchange format
//!   Graph500-style tooling ingests; emission is fed by [`EdgeChunk`]s
//!   through a per-worker [`BufWriter`], so a block streams to disk without
//!   ever being materialised in memory.
//! * **Compact binary** (`block_<p>.kbk`) — a fixed little-endian header
//!   (magic, version, dimensions, edge count) followed by the raw row and
//!   column index arrays.  16 bytes per edge, no parsing on the way back in;
//!   [`read_block_bin`] round-trips it through the checked bulk COO APIs.

use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use kron_core::CoreError;
use kron_sparse::io::{read_tsv_file, write_tsv_file};
use kron_sparse::{CooMatrix, SparseError};

use crate::chunk::EdgeChunk;
use crate::generator::DistributedGraph;
use crate::partition::{csc_ordered_triples, Partition};
use crate::stream::try_stream_block_edges_into;

/// Magic bytes opening a binary block file.
pub const BLOCK_MAGIC: [u8; 4] = *b"KBLK";
/// Version of the binary block layout with split row/column arrays
/// (see [`write_block_bin`]).
pub const BLOCK_VERSION: u32 = 1;
/// Version of the binary block layout with interleaved `(row, col)` pairs —
/// the streaming shard layout: edges append sequentially as they are
/// generated, and only the header's count is patched at the end, so a shard
/// never has to be buffered in memory (see
/// [`crate::driver::BinaryShardSink`]).
pub const BLOCK_VERSION_PAIRS: u32 = 2;
/// Version of the binary block layout with interleaved pairs **and** an
/// FNV-1a checksum of the payload appended to the header.  The shard sinks
/// write this version; the checksum (like the count) is patched in at
/// `finish()`, and every reader verifies it so a flipped byte on disk is
/// caught before the shard is trusted (see
/// [`crate::sink::BinaryShardSink`]).
pub const BLOCK_VERSION_CHECKSUM: u32 = 3;
/// Version of the binary block layout with a delta/varint-compressed
/// payload: the edges arrive in [`crate::codec`] frames (each up to
/// [`crate::codec::FRAME_EDGES`] edges, zigzag-encoded deltas between
/// consecutive endpoints), so a generated stream with locality costs a few
/// bytes per edge instead of 16.  The header keeps the v3 fields and adds
/// the payload byte length — with variable-width frames the edge count no
/// longer determines the file size, so truncation detection needs the
/// length spelled out (see [`crate::sink::CompressedShardSink`]).
pub const BLOCK_VERSION_COMPRESSED: u32 = 4;
/// Size in bytes of the binary block header (magic, version, dimensions,
/// entry count) shared by the v1/v2 layout versions.
pub const BLOCK_HEADER_LEN: u64 = 4 + 4 + 8 + 8 + 8;
/// Size in bytes of the v3 ([`BLOCK_VERSION_CHECKSUM`]) header: the shared
/// fields followed by the `u64` payload checksum.  The checksum is appended
/// *after* the entry count so the count stays at the same offset in every
/// version.
pub const BLOCK_HEADER_CHECKSUM_LEN: u64 = BLOCK_HEADER_LEN + 8;
/// Size in bytes of the v4 ([`BLOCK_VERSION_COMPRESSED`]) header: the
/// shared fields, then the payload byte length, then the payload checksum —
/// count and checksum keep their meaning from v3, and the payload length is
/// inserted before the checksum so every fixed-width field sits at a
/// version-independent offset from either end of the header.
pub const BLOCK_HEADER_COMPRESSED_LEN: u64 = BLOCK_HEADER_LEN + 8 + 8;

/// Streaming 64-bit FNV-1a hasher — the checksum every shard carries.
///
/// FNV-1a is not cryptographic; it is a fast, dependency-free integrity
/// check that reliably catches the corruption modes a crash or a bad disk
/// produces (flipped bytes, truncation combined with the length check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh hash.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Absorb a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
    }

    /// The hash of everything absorbed so far (non-consuming — more bytes
    /// may still be absorbed afterwards).
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Hash a complete byte slice in one call.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut hasher = Fnv1a::new();
        hasher.update(bytes);
        hasher.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// On-disk format of a block file set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockFormat {
    /// `row<TAB>col<TAB>value` text triples.
    Tsv,
    /// The compact binary layout (see [`write_block_bin`]).
    Binary,
    /// The delta/varint-compressed binary layout
    /// ([`BLOCK_VERSION_COMPRESSED`]).
    Compressed,
}

/// The files produced by one of the block writers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockFileSet {
    /// Directory containing the block files.
    pub directory: PathBuf,
    /// One file per worker, in worker order.
    pub files: Vec<PathBuf>,
    /// Vertex count of the graph the files describe.
    pub vertices: u64,
    /// Format every file in the set is written in.
    pub format: BlockFormat,
}

impl BlockFileSet {
    /// Read every block file back and assemble the full adjacency matrix.
    ///
    /// A failure names the shard it occurred in
    /// ([`SparseError::WithPath`]), so a corrupt file in a large set is
    /// identifiable from the error alone.
    pub fn read_assembled(&self) -> Result<CooMatrix<u64>, CoreError> {
        let mut all = CooMatrix::new(self.vertices, self.vertices);
        for file in &self.files {
            let block = match self.format {
                BlockFormat::Tsv => read_tsv_file(self.vertices, self.vertices, file),
                // Both binary layouts carry their version in the header, so
                // one reader serves them; the format only picks the writer.
                BlockFormat::Binary | BlockFormat::Compressed => read_block_bin(file),
            }
            .map_err(|e| SparseError::with_path(file, e))?;
            all.append(&block)
                .map_err(|e| SparseError::with_path(file, e))?;
        }
        Ok(all)
    }
}

pub(crate) fn prepare_directory(
    directory: &Path,
    workers: usize,
    extension: &str,
) -> Result<Vec<PathBuf>, CoreError> {
    std::fs::create_dir_all(directory)
        .map_err(|e| CoreError::Sparse(SparseError::Io(e.to_string())))?;
    Ok((0..workers)
        .map(|worker| directory.join(format!("block_{worker:05}.{extension}")))
        .collect())
}

/// Write each block of a materialised distributed graph to
/// `<directory>/block_<p>.tsv` (0-based triples, one file per worker,
/// written in parallel).
pub fn write_blocks_tsv(
    graph: &DistributedGraph,
    directory: &Path,
) -> Result<BlockFileSet, CoreError> {
    let files = prepare_directory(directory, graph.blocks.len(), "tsv")?;
    graph
        .blocks
        .par_iter()
        .zip(files.par_iter())
        .try_for_each(|(block, path)| write_tsv_file(&block.edges, path))
        .map_err(CoreError::Sparse)?;
    Ok(BlockFileSet {
        directory: directory.to_path_buf(),
        files,
        vertices: graph.vertices,
        format: BlockFormat::Tsv,
    })
}

/// Write one chunk of pattern edges in the TSV triple format
/// (`row<TAB>col<TAB>1`) — the single definition of the line layout shared
/// by every TSV emitter (and matched by the reader behind
/// [`BlockFileSet::read_assembled`]).
pub(crate) fn write_tsv_edges(
    writer: &mut impl Write,
    edges: &[(u64, u64)],
) -> Result<(), std::io::Error> {
    for &(row, col) in edges {
        writeln!(writer, "{row}\t{col}\t1")?;
    }
    Ok(())
}

/// Stream one worker's block straight to a TSV file without materialising
/// it: the Kronecker expansion fills the caller's reusable chunk, and each
/// flush formats into a buffered writer.  Returns the number of edges
/// written (every edge of the raw product has value 1).
pub fn stream_block_tsv(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    chunk: &mut EdgeChunk,
    path: &Path,
) -> Result<u64, SparseError> {
    // lint:allow(raw-fs-shard) -- legacy materialising writer, documented non-atomic; new code writes through the sinks
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::with_capacity(1 << 18, file);
    // The first write error aborts the whole expansion (a full disk must
    // not cost the remaining hours of edge generation).
    let result = try_stream_block_edges_into(b_triples, c, chunk, |edges| {
        write_tsv_edges(&mut writer, edges)
    });
    let written = match result {
        Ok(written) => written,
        Err(e) => {
            // The undelivered edges have nowhere to go; drop them so the
            // buffer is clean if the caller reuses it.
            chunk.clear();
            return Err(e.into());
        }
    };
    writer.flush()?;
    Ok(written)
}

/// Generate a design's raw product directly to per-worker TSV files, never
/// holding more than one [`EdgeChunk`] per worker in memory.
///
/// This writes the *raw* `B ⊗ C` product — the streaming pipeline's view of
/// the graph, before any self-loop removal — with **no** per-vertex state at
/// all: unlike `Pipeline::raw_product().write_tsv(dir)`, which also streams
/// an `O(vertices)` degree histogram for validation and drops a
/// `manifest.json`, this raw dump keeps only the factors and one chunk per
/// worker in memory.  Prefer the pipeline unless the vertex count itself is
/// too large for a histogram.
#[deprecated(
    since = "0.1.0",
    note = "use kron_gen::Pipeline::for_design(..).raw_product().write_tsv(dir) \
            (adds streamed validation and a run manifest at O(vertices) memory)"
)]
pub fn stream_blocks_tsv(
    design: &kron_core::KroneckerDesign,
    split_index: usize,
    workers: usize,
    max_factor_edges: u64,
    directory: &Path,
) -> Result<BlockFileSet, CoreError> {
    if workers == 0 {
        return Err(CoreError::InvalidConfig {
            message: "streaming generation needs at least one worker".into(),
        });
    }
    let (b_design, c_design) = design.split(split_index)?;
    let b = b_design.realize_raw(max_factor_edges)?;
    let c = c_design.realize_raw(max_factor_edges)?;
    let vertices = design
        .vertices()
        .to_u64()
        .ok_or_else(|| CoreError::TooLargeToRealise {
            vertices: design.vertices().to_string(),
            edges: design.nnz_with_loops().to_string(),
        })?;
    let triples = csc_ordered_triples(&b);
    let partition = Partition::even(triples.len(), workers);
    let files = prepare_directory(directory, workers, "tsv")?;

    (0..workers)
        .into_par_iter()
        .map(|worker| {
            let mut chunk = EdgeChunk::with_default_capacity();
            stream_block_tsv(
                &triples[partition.range(worker)],
                &c,
                &mut chunk,
                &files[worker],
            )
            .map(|_| ())
        })
        .collect::<Vec<Result<(), SparseError>>>()
        .into_iter()
        .collect::<Result<(), SparseError>>()
        .map_err(CoreError::Sparse)?;

    Ok(BlockFileSet {
        directory: directory.to_path_buf(),
        files,
        vertices,
        format: BlockFormat::Tsv,
    })
}

/// Write one block in the compact binary layout:
///
/// ```text
/// "KBLK"  u32 version  u64 nrows  u64 ncols  u64 nnz
/// nnz x u64 row indices, then nnz x u64 column indices (little-endian)
/// ```
///
/// Values are not stored — a generated raw-product block is an unweighted
/// pattern (every stored entry is 1), which is what makes the format 16
/// bytes per edge.
pub fn write_block_bin(edges: &CooMatrix<u64>, path: &Path) -> Result<(), SparseError> {
    // lint:allow(raw-fs-shard) -- legacy materialising writer, documented non-atomic; new code writes through the sinks
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::with_capacity(1 << 18, file);
    w.write_all(&BLOCK_MAGIC)?;
    w.write_all(&BLOCK_VERSION.to_le_bytes())?;
    w.write_all(&edges.nrows().to_le_bytes())?;
    w.write_all(&edges.ncols().to_le_bytes())?;
    w.write_all(&(edges.nnz() as u64).to_le_bytes())?;
    for &row in edges.row_indices() {
        w.write_all(&row.to_le_bytes())?;
    }
    for &col in edges.col_indices() {
        w.write_all(&col.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// The validated header of a binary block file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockHeader {
    /// Layout version ([`BLOCK_VERSION`], [`BLOCK_VERSION_PAIRS`] or
    /// [`BLOCK_VERSION_CHECKSUM`]).
    pub version: u32,
    /// Declared number of rows.
    pub nrows: u64,
    /// Declared number of columns.
    pub ncols: u64,
    /// Declared number of stored entries.
    pub nnz: u64,
    /// Declared payload byte length — present only for
    /// [`BLOCK_VERSION_COMPRESSED`] files, whose body size is not a
    /// function of the entry count.
    pub payload_len: Option<u64>,
    /// FNV-1a checksum of the payload — present from
    /// [`BLOCK_VERSION_CHECKSUM`] on; `None` for v1/v2 files.
    pub checksum: Option<u64>,
}

/// Read and validate the shared binary block header — magic, version, and
/// the declared entry count against the actual file length (both layouts
/// store 16 bytes per edge after the header), so a corrupt header fails
/// cleanly before anything is allocated or streamed from it.  The single
/// owner of the header format, shared by the materialising reader
/// ([`read_block_bin`]) and the streaming replay source.
pub(crate) fn read_block_header(
    file_len: u64,
    reader: &mut impl Read,
) -> Result<BlockHeader, SparseError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != BLOCK_MAGIC {
        return Err(SparseError::Parse {
            line: 0,
            message: format!("bad block magic {magic:?}, expected {BLOCK_MAGIC:?}"),
        });
    }
    let mut version = [0u8; 4];
    reader.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != BLOCK_VERSION
        && version != BLOCK_VERSION_PAIRS
        && version != BLOCK_VERSION_CHECKSUM
        && version != BLOCK_VERSION_COMPRESSED
    {
        return Err(SparseError::Parse {
            line: 0,
            message: format!("unsupported block version {version}"),
        });
    }
    let mut header = [0u8; 24];
    reader.read_exact(&mut header)?;
    // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: fixed slices of the 24-byte header
    let nrows = le_u64(&header[0..8]);
    // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: fixed slices of the 24-byte header
    let ncols = le_u64(&header[8..16]);
    // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: fixed slices of the 24-byte header
    let nnz = le_u64(&header[16..24]);
    let payload_len = if version == BLOCK_VERSION_COMPRESSED {
        let mut len = [0u8; 8];
        reader.read_exact(&mut len)?;
        Some(u64::from_le_bytes(len))
    } else {
        None
    };
    let checksum = if version == BLOCK_VERSION_CHECKSUM || version == BLOCK_VERSION_COMPRESSED {
        let mut sum = [0u8; 8];
        reader.read_exact(&mut sum)?;
        Some(u64::from_le_bytes(sum))
    } else {
        None
    };
    let expected_len = if let Some(payload) = payload_len {
        // A compressed body's size is its declared byte length, not a
        // function of the entry count.
        payload
            .checked_add(BLOCK_HEADER_COMPRESSED_LEN)
            .ok_or(SparseError::TooLarge {
                what: "compressed block payload length",
                requested: payload as u128,
            })?
    } else {
        let header_len = if checksum.is_some() {
            BLOCK_HEADER_CHECKSUM_LEN
        } else {
            BLOCK_HEADER_LEN
        };
        nnz.checked_mul(16)
            .and_then(|body| body.checked_add(header_len))
            .ok_or(SparseError::TooLarge {
                what: "binary block entry count",
                requested: nnz as u128,
            })?
    };
    if expected_len != file_len {
        return Err(SparseError::Parse {
            line: 0,
            message: format!(
                "binary block declares {nnz} entries ({expected_len} bytes) but the file is {file_len} bytes"
            ),
        });
    }
    Ok(BlockHeader {
        version,
        nrows,
        ncols,
        nnz,
        payload_len,
        checksum,
    })
}

/// Decode a little-endian `u64` from an exactly-8-byte slice.
///
/// Single owner of the slice→array conversion for block decoding: every
/// caller passes a `chunks_exact(8)` chunk or a fixed 8-byte range, so
/// the length is right by construction.
pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    // lint:allow(no-expect) -- single owner of the 8-byte slice contract; callers only pass chunks_exact(8) or fixed ranges
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

fn read_u64_array(reader: &mut impl Read, count: usize) -> Result<Vec<u64>, SparseError> {
    let mut bytes = vec![0u8; count * 8];
    reader.read_exact(&mut bytes)?;
    Ok(bytes.chunks_exact(8).map(le_u64).collect())
}

/// Read a binary block file back into a COO matrix (all values 1), with the
/// header validated — including the declared entry count against the actual
/// file length, before anything is allocated from it — and every index
/// bounds-checked.
pub fn read_block_bin(path: &Path) -> Result<CooMatrix<u64>, SparseError> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = std::io::BufReader::with_capacity(1 << 18, file);
    let BlockHeader {
        version,
        nrows,
        ncols,
        nnz,
        payload_len,
        checksum,
    } = read_block_header(file_len, &mut reader)?;
    let nnz = usize::try_from(nnz).map_err(|_| SparseError::TooLarge {
        what: "binary block entry count",
        requested: nnz as u128,
    })?;

    let (rows, cols) = if version == BLOCK_VERSION_COMPRESSED {
        // lint:allow(no-expect) -- read_block_header always sets payload_len for v4
        let payload_len = payload_len.expect("v4 header carries a payload length");
        read_compressed_body(&mut reader, nnz, payload_len, checksum)?
    } else if version == BLOCK_VERSION {
        let rows = read_u64_array(&mut reader, nnz)?;
        let cols = read_u64_array(&mut reader, nnz)?;
        (rows, cols)
    } else {
        // De-interleave while reading, in bounded buffers: the transient
        // cost stays one I/O buffer, not a second full copy of the body.
        let mut rows = Vec::with_capacity(nnz);
        let mut cols = Vec::with_capacity(nnz);
        let mut buffer = [0u8; 16 * 4096];
        let mut remaining = nnz;
        let mut hasher = Fnv1a::new();
        while remaining > 0 {
            let pairs = remaining.min(4096);
            let bytes = &mut buffer[..16 * pairs];
            reader.read_exact(bytes)?;
            if checksum.is_some() {
                hasher.update(bytes);
            }
            for pair in bytes.chunks_exact(16) {
                rows.push(le_u64(&pair[..8]));
                cols.push(le_u64(&pair[8..]));
            }
            remaining -= pairs;
        }
        // Verify before the indices are trusted: a flipped byte must fail
        // as corruption, not as a confusing out-of-bounds index.
        if let Some(expected) = checksum {
            let actual = hasher.finish();
            if actual != expected {
                return Err(SparseError::ChecksumMismatch { expected, actual });
            }
        }
        (rows, cols)
    };
    for (&r, &c) in rows.iter().zip(cols.iter()) {
        if r >= nrows || c >= ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: r,
                col: c,
                nrows,
                ncols,
            });
        }
    }
    // The vectors become the matrix's storage directly — no copy, and the
    // all-ones value vector is the only extra allocation.
    let mut m = CooMatrix::new(nrows, ncols);
    m.append_raw(rows, cols, vec![1u64; nnz]);
    Ok(m)
}

/// Decode a v4 compressed block body: a sequence of delta/varint frames
/// (see [`crate::codec`]), FNV-hashed as read and verified against the
/// header checksum before the decoded indices are returned.
///
/// The payload is read whole (it is the *compressed* size — a few bytes
/// per edge), then decoded frame by frame so a truncated or overlapping
/// frame fails as a parse error rather than a silent short count.
fn read_compressed_body(
    reader: &mut impl Read,
    nnz: usize,
    payload_len: u64,
    checksum: Option<u64>,
) -> Result<(Vec<u64>, Vec<u64>), SparseError> {
    let payload_len = usize::try_from(payload_len).map_err(|_| SparseError::TooLarge {
        what: "compressed block payload length",
        requested: payload_len as u128,
    })?;
    let mut payload = vec![0u8; payload_len];
    reader.read_exact(&mut payload)?;
    // Verify before the frames are trusted: a flipped byte must fail as
    // corruption, not as a confusing varint or out-of-bounds index error.
    if let Some(expected) = checksum {
        let mut hasher = Fnv1a::new();
        hasher.update(&payload);
        let actual = hasher.finish();
        if actual != expected {
            return Err(SparseError::ChecksumMismatch { expected, actual });
        }
    }
    let mut rows = Vec::with_capacity(nnz);
    let mut cols = Vec::with_capacity(nnz);
    let mut frame = Vec::new();
    let mut offset = 0usize;
    let mut decoded = 0usize;
    while offset < payload.len() {
        let header: [u8; crate::codec::FRAME_HEADER_LEN] = payload[offset..]
            .get(..crate::codec::FRAME_HEADER_LEN)
            .and_then(|bytes| bytes.try_into().ok())
            .ok_or(SparseError::Parse {
                line: 0,
                message: format!("compressed block frame header truncated at byte {offset}"),
            })?;
        let (count, byte_len) = crate::codec::frame_header(&header);
        let (count, byte_len) = (count as usize, byte_len as usize);
        offset += crate::codec::FRAME_HEADER_LEN;
        let body = payload
            .get(offset..offset + byte_len)
            .ok_or(SparseError::Parse {
                line: 0,
                message: format!(
                    "compressed block frame declares {byte_len} bytes at offset {offset} but the payload ends at {}",
                    payload.len()
                ),
            })?;
        crate::codec::decode_frame(count as u32, body, &mut frame)?;
        offset += byte_len;
        decoded += count;
        if decoded > nnz {
            return Err(SparseError::Parse {
                line: 0,
                message: format!("compressed block decodes more than the declared {nnz} entries"),
            });
        }
        for &(r, c) in &frame {
            rows.push(r);
            cols.push(c);
        }
    }
    if decoded != nnz {
        return Err(SparseError::Parse {
            line: 0,
            message: format!(
                "compressed block declares {nnz} entries but its frames decode {decoded}"
            ),
        });
    }
    Ok((rows, cols))
}

/// Recompute the checksum a shard *should* carry by streaming its bytes
/// back from disk: for TSV shards the FNV-1a hash of the whole file, for
/// binary shards the hash of the payload after the header (equal to the
/// checksum a v3 header stores).  Errors are annotated with the shard path.
///
/// This is what `Pipeline::resume` uses to decide whether a shard recorded
/// in the progress journal is still intact or must be regenerated.
pub fn shard_checksum(path: &Path, format: BlockFormat) -> Result<u64, SparseError> {
    let attempt = || -> Result<u64, SparseError> {
        let file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = std::io::BufReader::with_capacity(1 << 18, file);
        if matches!(format, BlockFormat::Binary | BlockFormat::Compressed) {
            // Position the reader past the (version-dependent) header; the
            // header itself is validated in passing.
            read_block_header(file_len, &mut reader)?;
        }
        let mut hasher = Fnv1a::new();
        let mut buffer = [0u8; 1 << 16];
        loop {
            let read = reader.read(&mut buffer)?;
            if read == 0 {
                break;
            }
            hasher.update(&buffer[..read]);
        }
        Ok(hasher.finish())
    };
    attempt().map_err(|e| SparseError::with_path(path, e))
}

/// Write each block of a materialised distributed graph in the compact
/// binary format, one `block_<p>.kbk` file per worker, in parallel.
pub fn write_blocks_bin(
    graph: &DistributedGraph,
    directory: &Path,
) -> Result<BlockFileSet, CoreError> {
    let files = prepare_directory(directory, graph.blocks.len(), "kbk")?;
    graph
        .blocks
        .par_iter()
        .zip(files.par_iter())
        .try_for_each(|(block, path)| write_block_bin(&block.edges, path))
        .map_err(CoreError::Sparse)?;
    Ok(BlockFileSet {
        directory: directory.to_path_buf(),
        files,
        vertices: graph.vertices,
        format: BlockFormat::Binary,
    })
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy wrappers on purpose
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ParallelGenerator};
    use kron_core::{KroneckerDesign, SelfLoop};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_writer_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn generated(workers: usize) -> (KroneckerDesign, DistributedGraph) {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let graph = ParallelGenerator::new(GeneratorConfig {
            workers,
            max_c_edges: 1_000,
            max_total_edges: 100_000,
        })
        .generate(&design)
        .unwrap();
        (design, graph)
    }

    #[test]
    fn blocks_round_trip_through_disk() {
        let (_, graph) = generated(3);
        let dir = temp_dir("round_trip");
        let files = write_blocks_tsv(&graph, &dir).unwrap();
        assert_eq!(files.files.len(), 3);
        assert_eq!(files.format, BlockFormat::Tsv);
        for f in &files.files {
            assert!(f.exists(), "missing block file {f:?}");
        }

        let mut from_disk = files.read_assembled().unwrap();
        let mut in_memory = graph.assemble();
        from_disk.sort();
        in_memory.sort();
        assert_eq!(from_disk, in_memory);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_blocks_round_trip_and_are_compact() {
        let (_, graph) = generated(4);
        let dir = temp_dir("binary_round_trip");
        let files = write_blocks_bin(&graph, &dir).unwrap();
        assert_eq!(files.format, BlockFormat::Binary);

        let mut from_disk = files.read_assembled().unwrap();
        let mut in_memory = graph.assemble();
        from_disk.sort();
        in_memory.sort();
        assert_eq!(from_disk, in_memory);

        // Header (32 bytes) + 16 bytes per edge, exactly.
        for (file, block) in files.files.iter().zip(graph.blocks.iter()) {
            let len = std::fs::metadata(file).unwrap().len();
            assert_eq!(len, 32 + 16 * block.edge_count() as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_reader_rejects_corrupt_headers() {
        let dir = temp_dir("binary_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.kbk");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(read_block_bin(&path).is_err());
        let mut with_version = BLOCK_MAGIC.to_vec();
        with_version.extend_from_slice(&99u32.to_le_bytes());
        with_version.extend_from_slice(&[0u8; 24]);
        std::fs::write(&path, &with_version).unwrap();
        assert!(read_block_bin(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_tsv_matches_raw_product() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("streamed_tsv");
        let files = stream_blocks_tsv(&design, 1, 3, 100_000, &dir).unwrap();
        assert_eq!(files.files.len(), 3);

        // The streamed files hold the raw product: every constituent keeps
        // its self-loops, so compare against the design's raw nnz.
        let assembled = files.read_assembled().unwrap();
        assert_eq!(
            assembled.nnz() as u64,
            design.nnz_with_loops().to_u64().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_tsv_equals_materialised_blocks_before_loop_removal() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
        let dir = temp_dir("streamed_equals_materialised");
        let files = stream_blocks_tsv(&design, 2, 4, 100_000, &dir).unwrap();

        // SelfLoop::None has no removable loop, so the generated graph *is*
        // the raw product and the two pipelines must agree bit for bit.
        let graph = ParallelGenerator::new(GeneratorConfig {
            workers: 4,
            max_c_edges: 100_000,
            max_total_edges: 100_000,
        })
        .generate_with_split(&design, 2)
        .unwrap();

        let mut streamed = files.read_assembled().unwrap();
        let mut materialised = graph.assemble();
        streamed.sort();
        materialised.sort();
        assert_eq!(streamed, materialised);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Write a valid v4 compressed shard and return its path, for the
    /// corruption tests to mutilate.  Offsets in the v4 layout: nnz at 24,
    /// payload_len at 32, checksum at 40, payload (frames) at 48; a frame
    /// is [count u32][byte_len u32][varint body].
    fn compressed_fixture(name: &str) -> (PathBuf, Vec<(u64, u64)>) {
        use crate::sink::{CompressedShardSink, EdgeSink};
        let dir = temp_dir(name);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("block_00000.kbkz");
        let edges: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 64, (i * 7) % 64)).collect();
        let mut sink = CompressedShardSink::create(&path, 64, 64).unwrap();
        sink.consume(&edges).unwrap();
        sink.finish().unwrap();
        (path, edges)
    }

    fn patched(path: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
        let mut bytes = std::fs::read(path).unwrap();
        mutate(&mut bytes);
        std::fs::write(path, &bytes).unwrap();
    }

    /// Re-seal a deliberately mutated payload so the corruption under test
    /// is reached *past* the checksum gate.
    fn refresh_v4_checksum(bytes: &mut [u8]) {
        let sum = Fnv1a::hash(&bytes[BLOCK_HEADER_COMPRESSED_LEN as usize..]);
        bytes[40..48].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn compressed_round_trip_and_header_fields() {
        let (path, edges) = compressed_fixture("v4_round_trip");
        let block = read_block_bin(&path).unwrap();
        let decoded: Vec<(u64, u64)> = block.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(decoded, edges);
        let bytes = std::fs::read(&path).unwrap();
        let file_len = bytes.len() as u64;
        let header = read_block_header(file_len, &mut &bytes[..]).unwrap();
        assert_eq!(header.version, BLOCK_VERSION_COMPRESSED);
        assert_eq!(header.nnz, edges.len() as u64);
        let payload_len = header.payload_len.unwrap();
        assert_eq!(file_len, BLOCK_HEADER_COMPRESSED_LEN + payload_len);
        assert!(
            payload_len < 16 * edges.len() as u64,
            "the fixture must actually compress"
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_flipped_payload_byte_fails_as_checksum_mismatch() {
        let (path, _) = compressed_fixture("v4_flip");
        patched(&path, |bytes| bytes[60] ^= 1);
        match read_block_bin(&path) {
            Err(SparseError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual)
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_truncated_file_fails_the_length_check() {
        let (path, _) = compressed_fixture("v4_truncate");
        patched(&path, |bytes| {
            bytes.pop();
        });
        let err = read_block_bin(&path).unwrap_err();
        assert!(
            err.to_string().contains("but the file is"),
            "truncation must fail on declared vs actual length: {err}"
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_inflated_payload_len_fails_the_length_check() {
        let (path, _) = compressed_fixture("v4_payload_len");
        patched(&path, |bytes| {
            let declared = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
            bytes[32..40].copy_from_slice(&(declared + 1).to_le_bytes());
        });
        let err = read_block_bin(&path).unwrap_err();
        assert!(err.to_string().contains("but the file is"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_frame_overrunning_the_payload_is_rejected() {
        let (path, _) = compressed_fixture("v4_frame_overrun");
        patched(&path, |bytes| {
            // Inflate the first frame's byte_len (offset 52) past the
            // payload's end, then re-seal so the checksum gate passes.
            let byte_len = u32::from_le_bytes(bytes[52..56].try_into().unwrap());
            bytes[52..56].copy_from_slice(&(byte_len + 8).to_le_bytes());
            refresh_v4_checksum(bytes);
        });
        let err = read_block_bin(&path).unwrap_err();
        assert!(err.to_string().contains("payload ends"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_frame_count_disagreeing_with_nnz_is_rejected() {
        // nnz inflated, payload untouched: the checksum still matches, the
        // frames decode cleanly, and only the decoded-entry count can tell.
        let (path, _) = compressed_fixture("v4_nnz");
        patched(&path, |bytes| {
            let nnz = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
            bytes[24..32].copy_from_slice(&(nnz + 1).to_le_bytes());
        });
        let err = read_block_bin(&path).unwrap_err();
        assert!(err.to_string().contains("frames decode"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn compressed_truncated_frame_header_is_rejected() {
        let (path, _) = compressed_fixture("v4_frame_header");
        patched(&path, |bytes| {
            // Append 4 junk bytes (half a frame header), grow the declared
            // payload to match, and re-seal: every outer gate passes and the
            // frame loop must catch the dangling half-header itself.
            bytes.extend_from_slice(&[0u8; 4]);
            let declared = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
            bytes[32..40].copy_from_slice(&(declared + 4).to_le_bytes());
            refresh_v4_checksum(bytes);
        });
        let err = read_block_bin(&path).unwrap_err();
        assert!(err.to_string().contains("frame header truncated"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fnv1a_matches_published_test_vectors() {
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x8594_4171_f739_67e8);
        // Incremental hashing equals one-shot hashing.
        let mut hasher = Fnv1a::new();
        hasher.update(b"foo");
        hasher.update(b"bar");
        assert_eq!(hasher.finish(), Fnv1a::hash(b"foobar"));
    }

    #[test]
    fn file_names_are_worker_ordered() {
        let (_, graph) = generated(2);
        let dir = temp_dir("names");
        let files = write_blocks_tsv(&graph, &dir).unwrap();
        assert!(files.files[0].to_string_lossy().contains("block_00000"));
        assert!(files.files[1].to_string_lossy().contains("block_00001"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
