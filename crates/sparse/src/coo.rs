//! Coordinate-format (triple) sparse matrices.
//!
//! COO is the working format of the paper's generator: every processor holds
//! its block of the final graph as a list of `(row, col, value)` triples, and
//! Kronecker products are most naturally expressed triple-by-triple.  Indices
//! are `u64` so a block can address the full vertex space of a multi-billion
//! vertex graph even though the block itself is small.

use serde::{Deserialize, Serialize};

use crate::error::SparseError;
use crate::semiring::{PlusTimes, Scalar, Semiring};

/// A single stored entry of a [`CooMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Triple<T> {
    /// Row index (0-based).
    pub row: u64,
    /// Column index (0-based).
    pub col: u64,
    /// Stored value.
    pub val: T,
}

/// A sparse matrix in coordinate (triple) format.
///
/// Entries are not required to be sorted or unique; [`CooMatrix::sum_duplicates`]
/// and [`CooMatrix::sort`] establish canonical form when needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix<T> {
    nrows: u64,
    ncols: u64,
    rows: Vec<u64>,
    cols: Vec<u64>,
    vals: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Create an empty matrix with the given dimensions.
    pub fn new(nrows: u64, ncols: u64) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create an empty matrix with preallocated capacity for `cap` entries.
    pub fn with_capacity(nrows: u64, ncols: u64, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Build a matrix from parallel triple vectors.
    ///
    /// Returns an error if any index is out of bounds or the vectors have
    /// mismatched lengths.
    pub fn from_triples(
        nrows: u64,
        ncols: u64,
        rows: Vec<u64>,
        cols: Vec<u64>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::Parse {
                line: 0,
                message: format!(
                    "triple vectors have mismatched lengths: {} rows, {} cols, {} vals",
                    rows.len(),
                    cols.len(),
                    vals.len()
                ),
            });
        }
        for (&r, &c) in rows.iter().zip(cols.iter()) {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Build a matrix from an iterator of entries.
    pub fn from_entries<I>(nrows: u64, ncols: u64, entries: I) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = (u64, u64, T)>,
    {
        let mut m = CooMatrix::new(nrows, ncols);
        for (r, c, v) in entries {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// The identity matrix of size `n` (ones on the diagonal).
    pub fn identity(n: u64) -> Self
    where
        PlusTimes: Semiring<T>,
    {
        let mut m = CooMatrix::with_capacity(n, n, usize::try_from(n).unwrap_or(0));
        for i in 0..n {
            m.push(i, i, <PlusTimes as Semiring<T>>::one())
                // lint:allow(no-expect) -- indices were bounds-checked by the enclosing constructor before this push
                .expect("in bounds");
        }
        m
    }

    /// Append one entry.
    pub fn push(&mut self, row: u64, col: u64, val: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Reserve capacity for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        self.cols.reserve(additional);
        self.vals.reserve(additional);
    }

    /// Remove every stored entry, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Bulk-append triples from parallel slices, validating lengths and
    /// bounds up front (one pass over the indices, no per-entry branch in the
    /// copy itself).  This is the safe wrapper around
    /// [`CooMatrix::extend_from_triples_unchecked`].
    pub fn extend_from_triples(
        &mut self,
        rows: &[u64],
        cols: &[u64],
        vals: &[T],
    ) -> Result<(), SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::Parse {
                line: 0,
                message: format!(
                    "triple slices have mismatched lengths: {} rows, {} cols, {} vals",
                    rows.len(),
                    cols.len(),
                    vals.len()
                ),
            });
        }
        for (&r, &c) in rows.iter().zip(cols.iter()) {
            if r >= self.nrows || c >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
        }
        self.extend_from_triples_unchecked(rows, cols, vals);
        Ok(())
    }

    /// Bulk-append triples from parallel slices without validating indices.
    ///
    /// This is the generation hot path: the Kronecker expansion produces
    /// indices that are within the product dimensions by construction, so the
    /// per-edge bounds check of [`CooMatrix::push`] is pure overhead there.
    /// Out-of-bounds indices are debug-asserted; in release builds they are
    /// stored as-is and will surface through the checked consumers.
    pub fn extend_from_triples_unchecked(&mut self, rows: &[u64], cols: &[u64], vals: &[T]) {
        debug_assert_eq!(rows.len(), cols.len(), "parallel triple slices must match");
        debug_assert_eq!(rows.len(), vals.len(), "parallel triple slices must match");
        debug_assert!(
            rows.iter()
                .zip(cols.iter())
                .all(|(&r, &c)| r < self.nrows && c < self.ncols),
            "unchecked extend received out-of-bounds indices"
        );
        self.rows.extend_from_slice(rows);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
    }

    /// Take ownership of whole triple vectors and append them, avoiding any
    /// copy when the matrix is still empty.
    ///
    /// Like [`CooMatrix::extend_from_triples_unchecked`], indices are trusted
    /// (debug-asserted only): this is the bulk hand-off from a worker that
    /// built its triples with in-bounds arithmetic.
    ///
    /// # Panics
    /// Panics if the vectors have mismatched lengths.
    pub fn append_raw(&mut self, rows: Vec<u64>, cols: Vec<u64>, vals: Vec<T>) {
        assert_eq!(rows.len(), cols.len(), "parallel triple vectors must match");
        assert_eq!(rows.len(), vals.len(), "parallel triple vectors must match");
        debug_assert!(
            rows.iter()
                .zip(cols.iter())
                .all(|(&r, &c)| r < self.nrows && c < self.ncols),
            "append_raw received out-of-bounds indices"
        );
        if self.is_empty() {
            self.rows = rows;
            self.cols = cols;
            self.vals = vals;
        } else {
            self.rows.extend_from_slice(&rows);
            self.cols.extend_from_slice(&cols);
            self.vals.extend_from_slice(&vals);
        }
    }

    /// Append a translated and scaled copy of a triple block: entry `i`
    /// becomes `(row_offset + rows[i], col_offset + cols[i], scale ⊗ vals[i])`.
    ///
    /// This is the inner step of a Kronecker expansion — one factor entry
    /// `(rb, cb, vb)` contributes the whole of the other factor shifted to
    /// `(rb·nrows, cb·ncols)` and scaled by `vb` — expressed as three
    /// slice-to-slice loops the compiler can vectorize, with no per-edge
    /// bounds check or closure dispatch.  Offsets are trusted
    /// (debug-asserted): callers derive them from factor dimensions.
    pub fn append_translated<S: Semiring<T>>(
        &mut self,
        row_offset: u64,
        col_offset: u64,
        scale: T,
        rows: &[u64],
        cols: &[u64],
        vals: &[T],
    ) {
        debug_assert_eq!(rows.len(), cols.len(), "parallel triple slices must match");
        debug_assert_eq!(rows.len(), vals.len(), "parallel triple slices must match");
        debug_assert!(
            rows.iter()
                .zip(cols.iter())
                .all(|(&r, &c)| { row_offset + r < self.nrows && col_offset + c < self.ncols }),
            "append_translated received out-of-bounds indices"
        );
        self.rows.extend(rows.iter().map(|&r| row_offset + r));
        self.cols.extend(cols.iter().map(|&c| col_offset + c));
        self.vals.extend(vals.iter().map(|&v| S::mul(scale, v)));
    }

    /// Remove the entry at position `index` (in storage order) by swapping in
    /// the last entry, and return it.  O(1); storage order is not preserved.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn swap_remove(&mut self, index: usize) -> (u64, u64, T) {
        let row = self.rows.swap_remove(index);
        let col = self.cols.swap_remove(index);
        let val = self.vals.swap_remove(index);
        (row, col, val)
    }

    /// Position of the first stored entry at `(row, col)`, if any.
    pub fn find_entry(&self, row: u64, col: u64) -> Option<usize> {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .position(|(&r, &c)| r == row && c == col)
    }

    /// Number of rows.
    pub fn nrows(&self) -> u64 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// Number of stored entries (including any duplicates or explicit zeros).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Whether the matrix stores no entries.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow the row index slice.
    pub fn row_indices(&self) -> &[u64] {
        &self.rows
    }

    /// Borrow the column index slice.
    pub fn col_indices(&self) -> &[u64] {
        &self.cols
    }

    /// Borrow the value slice.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterate over stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, T)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Iterate over stored entries as [`Triple`]s.
    pub fn triples(&self) -> impl Iterator<Item = Triple<T>> + '_ {
        self.iter().map(|(row, col, val)| Triple { row, col, val })
    }

    /// Consume the matrix and return its parallel triple vectors.
    pub fn into_triples(self) -> (Vec<u64>, Vec<u64>, Vec<T>) {
        (self.rows, self.cols, self.vals)
    }

    /// Look up the value at `(row, col)`, combining duplicates with ⊕.
    /// Linear scan — intended for tests and small constituent matrices.
    pub fn get<S: Semiring<T>>(&self, row: u64, col: u64) -> T {
        let mut acc = S::zero();
        for (r, c, v) in self.iter() {
            if r == row && c == col {
                acc = S::add(acc, v);
            }
        }
        acc
    }

    /// Apply a function to every stored value, producing a new matrix.
    pub fn map_values<U: Scalar>(&self, f: impl Fn(T) -> U) -> CooMatrix<U> {
        CooMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Keep only entries satisfying the predicate.
    pub fn filter(&self, keep: impl Fn(u64, u64, T) -> bool) -> CooMatrix<T> {
        let mut out = CooMatrix::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            if keep(r, c, v) {
                out.rows.push(r);
                out.cols.push(c);
                out.vals.push(v);
            }
        }
        out
    }

    /// Transpose (swap rows and columns).
    pub fn transpose(&self) -> CooMatrix<T> {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Sort entries into row-major (row, then column) order.
    pub fn sort(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));
        self.rows = order.iter().map(|&i| self.rows[i]).collect();
        self.cols = order.iter().map(|&i| self.cols[i]).collect();
        self.vals = order.iter().map(|&i| self.vals[i]).collect();
    }

    /// Sort and combine duplicate coordinates with the semiring ⊕, dropping
    /// entries that become the additive identity.
    pub fn sum_duplicates<S: Semiring<T>>(&mut self) {
        self.sort();
        let mut out_rows = Vec::with_capacity(self.nnz());
        let mut out_cols = Vec::with_capacity(self.nnz());
        let mut out_vals: Vec<T> = Vec::with_capacity(self.nnz());
        for (r, c, v) in self.iter() {
            if let (Some(&lr), Some(&lc)) = (out_rows.last(), out_cols.last()) {
                if lr == r && lc == c {
                    // lint:allow(no-expect) -- out_vals grows in lockstep with out_rows, so last_mut is Some
                    let last = out_vals.last_mut().expect("parallel vectors");
                    *last = S::add(*last, v);
                    continue;
                }
            }
            out_rows.push(r);
            out_cols.push(c);
            out_vals.push(v);
        }
        // Drop entries that cancelled to the additive identity.
        let mut rows = Vec::with_capacity(out_vals.len());
        let mut cols = Vec::with_capacity(out_vals.len());
        let mut vals = Vec::with_capacity(out_vals.len());
        for i in 0..out_vals.len() {
            if !S::is_zero(out_vals[i]) {
                rows.push(out_rows[i]);
                cols.push(out_cols[i]);
                vals.push(out_vals[i]);
            }
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Whether the stored pattern is symmetric (requires canonical form for a
    /// reliable answer; duplicates are combined with ⊕ internally).
    pub fn is_symmetric<S: Semiring<T>>(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let mut canonical = self.clone();
        canonical.sum_duplicates::<S>();
        let mut transposed = canonical.transpose();
        transposed.sum_duplicates::<S>();
        canonical == transposed
    }

    /// Number of stored entries on the main diagonal.
    pub fn diagonal_nnz(&self) -> usize {
        self.iter().filter(|&(r, c, _)| r == c).count()
    }

    /// Append all entries of `other`, which must have the same dimensions.
    pub fn append(&mut self, other: &CooMatrix<T>) -> Result<(), SparseError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "append",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
        Ok(())
    }

    /// Convert to a dense row-major `Vec<Vec<T>>` (tests and tiny examples
    /// only; returns an error if dimensions exceed `max_dense` entries).
    pub fn to_dense<S: Semiring<T>>(&self, max_dense: usize) -> Result<Vec<Vec<T>>, SparseError> {
        let total = self.nrows as u128 * self.ncols as u128;
        if total > max_dense as u128 {
            return Err(SparseError::TooLarge {
                what: "dense conversion",
                requested: total,
            });
        }
        let nrows = self.nrows as usize;
        let ncols = self.ncols as usize;
        let mut dense = vec![vec![S::zero(); ncols]; nrows];
        for (r, c, v) in self.iter() {
            let cell = &mut dense[r as usize][c as usize];
            *cell = S::add(*cell, v);
        }
        Ok(dense)
    }
}

impl CooMatrix<u64> {
    /// Convenience constructor for unweighted (all-ones) adjacency matrices
    /// from an edge list.
    pub fn from_edges(
        nrows: u64,
        ncols: u64,
        edges: impl IntoIterator<Item = (u64, u64)>,
    ) -> Result<Self, SparseError> {
        CooMatrix::from_entries(nrows, ncols, edges.into_iter().map(|(r, c)| (r, c, 1u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<u64> {
        CooMatrix::from_entries(3, 3, vec![(0, 1, 1), (1, 0, 1), (2, 2, 5), (0, 1, 2)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert!(m.is_square());
        assert!(!m.is_empty());
        assert_eq!(m.get::<PlusTimes>(0, 1), 3); // duplicates combined
        assert_eq!(m.get::<PlusTimes>(1, 1), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = CooMatrix::<u64>::new(2, 2);
        assert!(m.push(2, 0, 1).is_err());
        assert!(m.push(0, 2, 1).is_err());
        assert!(m.push(1, 1, 1).is_ok());
        assert!(CooMatrix::from_triples(2, 2, vec![5], vec![0], vec![1u64]).is_err());
        assert!(CooMatrix::from_triples(2, 2, vec![0, 1], vec![0], vec![1u64]).is_err());
    }

    #[test]
    fn sum_duplicates_combines_and_drops_zeros() {
        let mut m = CooMatrix::from_entries(
            2,
            2,
            vec![(0, 0, 1i64), (0, 0, 2), (1, 1, 5), (1, 1, -5), (0, 1, 0)],
        )
        .unwrap();
        m.sum_duplicates::<PlusTimes>();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get::<PlusTimes>(0, 0), 3);
        assert_eq!(m.get::<PlusTimes>(1, 1), 0);
    }

    #[test]
    fn sort_orders_row_major() {
        let mut m =
            CooMatrix::from_entries(3, 3, vec![(2, 0, 1u64), (0, 2, 1), (0, 1, 1), (1, 1, 1)])
                .unwrap();
        m.sort();
        let coords: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(coords, vec![(0, 1), (0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = CooMatrix::from_entries(2, 3, vec![(0, 2, 7u64), (1, 0, 9)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get::<PlusTimes>(2, 0), 7);
        assert_eq!(t.get::<PlusTimes>(0, 1), 9);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 0), (2, 2)]).unwrap();
        assert!(sym.is_symmetric::<PlusTimes>());
        let asym = CooMatrix::from_edges(3, 3, vec![(0, 1)]).unwrap();
        assert!(!asym.is_symmetric::<PlusTimes>());
        let rect = CooMatrix::from_edges(2, 3, vec![(0, 1)]).unwrap();
        assert!(!rect.is_symmetric::<PlusTimes>());
    }

    #[test]
    fn identity_and_diagonal() {
        let eye = CooMatrix::<u64>::identity(4);
        assert_eq!(eye.nnz(), 4);
        assert_eq!(eye.diagonal_nnz(), 4);
        assert!(eye.is_symmetric::<PlusTimes>());
    }

    #[test]
    fn map_filter_append() {
        let m = sample();
        let doubled = m.map_values(|v| v * 2);
        assert_eq!(doubled.get::<PlusTimes>(2, 2), 10);
        let only_diag = m.filter(|r, c, _| r == c);
        assert_eq!(only_diag.nnz(), 1);
        let mut acc = CooMatrix::<u64>::new(3, 3);
        acc.append(&m).unwrap();
        acc.append(&only_diag).unwrap();
        assert_eq!(acc.nnz(), 5);
        let wrong = CooMatrix::<u64>::new(2, 2);
        assert!(acc.append(&wrong).is_err());
    }

    #[test]
    fn dense_conversion() {
        let m = sample();
        let d = m.to_dense::<PlusTimes>(100).unwrap();
        assert_eq!(d[0][1], 3);
        assert_eq!(d[2][2], 5);
        assert_eq!(d[1][1], 0);
        assert!(m.to_dense::<PlusTimes>(2).is_err());
    }

    #[test]
    fn into_triples_round_trip() {
        let m = sample();
        let (r, c, v) = m.clone().into_triples();
        let rebuilt = CooMatrix::from_triples(3, 3, r, c, v).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn bulk_extend_matches_pushes() {
        let mut pushed = CooMatrix::<u64>::new(4, 4);
        let mut extended = CooMatrix::<u64>::new(4, 4);
        let (rows, cols, vals) = ([0u64, 1, 3], [1u64, 2, 0], [5u64, 6, 7]);
        for i in 0..3 {
            pushed.push(rows[i], cols[i], vals[i]).unwrap();
        }
        extended.extend_from_triples(&rows, &cols, &vals).unwrap();
        assert_eq!(extended, pushed);
        let mut unchecked = CooMatrix::<u64>::new(4, 4);
        unchecked.extend_from_triples_unchecked(&rows, &cols, &vals);
        assert_eq!(unchecked, pushed);
    }

    #[test]
    fn bulk_extend_rejects_bad_input() {
        let mut m = CooMatrix::<u64>::new(2, 2);
        assert!(m.extend_from_triples(&[0], &[0, 1], &[1]).is_err());
        assert!(m.extend_from_triples(&[5], &[0], &[1]).is_err());
        assert!(m.extend_from_triples(&[0], &[5], &[1]).is_err());
        assert_eq!(m.nnz(), 0, "failed extends must not append anything");
    }

    #[test]
    fn append_raw_moves_vectors() {
        let mut m = CooMatrix::<u64>::new(3, 3);
        m.append_raw(vec![0, 1], vec![1, 2], vec![9, 8]);
        assert_eq!(m.nnz(), 2);
        m.append_raw(vec![2], vec![0], vec![7]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get::<PlusTimes>(2, 0), 7);
    }

    #[test]
    fn append_translated_is_a_shifted_scaled_copy() {
        let c = CooMatrix::from_entries(2, 2, vec![(0, 1, 2u64), (1, 0, 3)]).unwrap();
        let mut out = CooMatrix::<u64>::new(6, 6);
        out.append_translated::<PlusTimes>(2, 4, 5, c.row_indices(), c.col_indices(), c.values());
        assert_eq!(out.nnz(), 2);
        assert_eq!(out.get::<PlusTimes>(2, 5), 10);
        assert_eq!(out.get::<PlusTimes>(3, 4), 15);
    }

    #[test]
    fn swap_remove_and_find_entry() {
        let mut m = sample();
        assert_eq!(m.find_entry(2, 2), Some(2));
        assert_eq!(m.find_entry(1, 2), None);
        let (r, c, v) = m.swap_remove(0);
        assert_eq!((r, c, v), (0, 1, 1));
        assert_eq!(m.nnz(), 3);
        // Duplicate (0,1) entry still present; diagonal untouched.
        assert_eq!(m.get::<PlusTimes>(0, 1), 2);
        assert_eq!(m.get::<PlusTimes>(2, 2), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..20, 1u64..20).prop_flat_map(|(nr, nc)| {
            let entries = proptest::collection::vec((0..nr, 0..nc, 1u64..10), 0..60);
            entries.prop_map(move |es| CooMatrix::from_entries(nr, nc, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn transpose_involution(m in arb_coo()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn sum_duplicates_preserves_total(m in arb_coo()) {
            let before: u64 = m.values().iter().sum();
            let mut canonical = m.clone();
            canonical.sum_duplicates::<PlusTimes>();
            let after: u64 = canonical.values().iter().sum();
            prop_assert_eq!(before, after);
        }

        #[test]
        fn sum_duplicates_has_unique_coordinates(m in arb_coo()) {
            let mut canonical = m;
            canonical.sum_duplicates::<PlusTimes>();
            let mut coords: Vec<(u64, u64)> =
                canonical.iter().map(|(r, c, _)| (r, c)).collect();
            let len = coords.len();
            coords.sort_unstable();
            coords.dedup();
            prop_assert_eq!(coords.len(), len);
        }

        #[test]
        fn get_matches_dense(m in arb_coo()) {
            let dense = m.to_dense::<PlusTimes>(10_000).unwrap();
            for (i, row) in dense.iter().enumerate() {
                for (j, &val) in row.iter().enumerate() {
                    prop_assert_eq!(m.get::<PlusTimes>(i as u64, j as u64), val);
                }
            }
        }
    }
}
