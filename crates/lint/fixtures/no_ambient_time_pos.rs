//@ path: crates/core/src/under_test.rs
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now() //~ no-ambient-time
}
