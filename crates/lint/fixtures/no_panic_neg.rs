//@ path: crates/core/src/under_test.rs
pub fn checked(flag: bool) -> Result<(), String> {
    // assert! and debug_assert! document invariants without the ban.
    debug_assert!(flag);
    if !flag {
        return Err("invariant violated".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        if false {
            panic!("test-only");
        }
    }
}
