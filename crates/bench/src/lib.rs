//! # kron-bench
//!
//! Shared harness code for the per-figure reproduction binaries and the
//! Criterion benchmarks.  Each binary in `src/bin/` regenerates the series or
//! rows of one figure of Kepner et al. (2018); the helpers here keep their
//! output format consistent and provide the scaled-down configurations used
//! when a figure's full-scale experiment cannot fit on one machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kron_bignum::BigUint;
use kron_core::{DegreeDistribution, KroneckerDesign, SelfLoop};
use kron_gen::{DesignPipeline, Pipeline};

/// The star sets used across the paper's evaluation section.
pub mod paper {
    /// Figure 1: two bipartite stars.
    pub const FIG1: &[u64] = &[5, 3];
    /// Figures 3 and 4: the trillion-edge construction
    /// (`B = {3,4,5,9,16,25}`, `C = {81,256}`).
    pub const FIG3_4: &[u64] = &[3, 4, 5, 9, 16, 25, 81, 256];
    /// Index at which Figures 3/4 split into `B ⊗ C`.
    pub const FIG3_4_SPLIT: usize = 6;
    /// Figures 5 and 6: the quadrillion-edge construction.
    pub const FIG5_6: &[u64] = &[3, 4, 5, 9, 16, 25, 81, 256, 625];
    /// Figure 7: the decetta-scale construction.
    pub const FIG7: &[u64] = &[
        3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
    ];
    /// Machine-scale stand-in with the same structure as Figures 3/4, used
    /// whenever a figure requires actually generating edges.
    pub const MACHINE_SCALE: &[u64] = &[3, 4, 5, 9, 16];
    /// Split index for the machine-scale stand-in.
    pub const MACHINE_SCALE_SPLIT: usize = 2;
}

/// Print a figure header in a consistent format.
pub fn figure_header(figure: &str, description: &str) {
    println!("==================================================================");
    println!("{figure}: {description}");
    println!("==================================================================");
}

/// Print a `(degree, count)` series as the log-log rows the paper plots,
/// decimating to at most `max_rows` rows.
pub fn print_distribution_series(dist: &DegreeDistribution, max_rows: usize) {
    let pairs = dist.to_pairs();
    let step = (pairs.len() / max_rows.max(1)).max(1);
    println!(
        "{:>24} {:>24} {:>12} {:>12}",
        "degree d", "count n(d)", "log10 d", "log10 n"
    );
    for (d, n) in pairs.iter().step_by(step) {
        println!(
            "{:>24} {:>24} {:>12.4} {:>12.4}",
            truncate_decimal(d),
            truncate_decimal(n),
            d.log10().unwrap_or(0.0),
            n.log10().unwrap_or(0.0),
        );
    }
    println!("({} exact support points total)", pairs.len());
}

/// Render a potentially enormous integer compactly: full decimal up to 24
/// digits, scientific beyond.
pub fn truncate_decimal(value: &BigUint) -> String {
    let s = value.to_string();
    if s.len() <= 24 {
        s
    } else {
        kron_bignum::scientific(value)
    }
}

/// A standard machine-scale pipeline used by every generating figure: the
/// shared factor budgets, ready for a terminal (`.count()`,
/// `.collect_coo()`, …).
pub fn machine_pipeline(design: &KroneckerDesign, workers: usize) -> DesignPipeline<'_> {
    Pipeline::for_design(design)
        .workers(workers)
        .max_c_edges(200_000)
        .max_b_edges(1 << 26)
}

/// Build one of the paper's designs.
pub fn design(points: &[u64], self_loop: SelfLoop) -> KroneckerDesign {
    KroneckerDesign::from_star_points(points, self_loop).expect("paper star sets are valid")
}

/// Benchmark provenance: the host and revision facts a recorded number is
/// meaningless without.  Emitted into every `BENCH_*.json` so successive
/// PRs comparing trajectories know whether a delta is code or circumstance.
pub mod provenance {
    /// The host's available parallelism (0 when unknown).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    }

    /// The workspace's current git revision (short), or `"unknown"` when
    /// git or the repository is unavailable.
    pub fn git_rev() -> String {
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|rev| rev.trim().to_string())
            .filter(|rev| !rev.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// The provenance fields as a JSON fragment (no surrounding braces),
    /// ready to splice into a bench's JSON object alongside its results.
    pub fn json_fields() -> String {
        format!(
            "\"available_parallelism\": {}, \"git_rev\": \"{}\"",
            available_parallelism(),
            git_rev()
        )
    }
}

/// Measure the wall-clock edge generation rate (edges/second) of the
/// machine-scale design at a given worker count, using streaming generation
/// so the measurement is not dominated by allocation.
pub fn measure_generation_rate(workers: usize, points: &[u64], split: usize) -> (u64, f64) {
    let design = design(points, SelfLoop::None);
    let started = std::time::Instant::now();
    let edges = kron_gen::count_edges_streaming(&design, split, workers, 60_000_000)
        .expect("machine-scale design fits in memory");
    let seconds = started.elapsed().as_secs_f64();
    (edges, edges as f64 / seconds.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_valid_designs() {
        assert_eq!(
            design(paper::FIG1, SelfLoop::None).vertices(),
            BigUint::from(24u64)
        );
        assert_eq!(
            design(paper::FIG3_4, SelfLoop::Centre).edges().to_string(),
            "1853002140758"
        );
        assert_eq!(
            design(paper::FIG7, SelfLoop::Leaf)
                .triangles()
                .unwrap()
                .to_string(),
            "178940587"
        );
    }

    #[test]
    fn truncation_switches_to_scientific() {
        assert_eq!(truncate_decimal(&BigUint::from(42u64)), "42");
        let huge: BigUint = "2705963586782877716483871216764".parse().unwrap();
        assert!(truncate_decimal(&huge).contains('e'));
    }

    #[test]
    fn machine_pipeline_counts_and_validates() {
        let d = design(paper::MACHINE_SCALE, SelfLoop::None);
        let report = machine_pipeline(&d, 2)
            .split_index(paper::MACHINE_SCALE_SPLIT)
            .count()
            .unwrap();
        assert_eq!(report.edge_count(), 276_480);
        assert!(report.is_valid());
    }

    #[test]
    fn provenance_fields_are_well_formed() {
        let fields = provenance::json_fields();
        assert!(fields.contains("\"available_parallelism\": "));
        assert!(fields.contains("\"git_rev\": \""));
        // A raw fragment must splice into an object without trailing commas
        // or braces of its own.
        let object = format!("{{{fields}}}");
        assert!(!object.contains(",}"));
        assert!(!provenance::git_rev().is_empty());
    }

    #[test]
    fn machine_scale_rate_measurement_runs() {
        let (edges, rate) =
            measure_generation_rate(2, paper::MACHINE_SCALE, paper::MACHINE_SCALE_SPLIT);
        assert_eq!(edges, 276_480);
        assert!(rate > 0.0);
    }
}
