//! The delta/varint edge codec behind the compressed (v4) binary shard
//! layout.
//!
//! A v4 shard's payload is a sequence of self-describing **frames**:
//!
//! ```text
//! u32 edge_count   u32 byte_len   byte_len bytes of varint deltas
//! ```
//!
//! Within a frame both endpoints are delta-coded against the previous edge
//! (starting from `(0, 0)`), the wrapping difference is zigzag-mapped so
//! small negative jumps stay small, and each mapped delta is LEB128
//! varint-coded.  Generated edge streams have strong endpoint locality —
//! the Kronecker expansion walks `B` in CSC order and R-MAT is skewed
//! toward low vertex ids — so most deltas fit one or two bytes and a shard
//! shrinks to a fraction of the fixed 16 bytes per edge of the v2/v3
//! layouts.  Every frame resets the delta state, so a decoder can resume
//! at any frame boundary and a corrupt frame is contained.
//!
//! This module is pure byte-slice arithmetic: no file I/O (shard files are
//! owned by the sinks in [`crate::sink`]), no allocation beyond the
//! caller's buffers, and typed [`SparseError`] results on every malformed
//! input — truncated varints, overlong encodings, trailing bytes, and
//! frame counts that disagree with the payload all fail loudly instead of
//! decoding garbage.

use kron_sparse::SparseError;

/// Edges per full frame the compressed sink emits (the last frame of a
/// shard holds the remainder).  Frames are sized so a decoder's
/// edge-and-byte buffers stay comfortably in cache-friendly territory
/// (≤ 1 MiB of pairs) while the per-frame header overhead stays
/// negligible.
pub const FRAME_EDGES: usize = 1 << 16;

/// Bytes of the `[edge_count: u32][byte_len: u32]` frame header.
pub const FRAME_HEADER_LEN: usize = 8;

/// Map a signed delta into the unsigned varint space so small deltas of
/// either sign stay small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Invert [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Append `value` as an LEB128 varint (7 bits per byte, high bit =
/// continuation): 1 byte for values below 128, at most 10 for `u64::MAX`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Decode one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` past it.  Fails on truncation (the slice ends mid-varint) and on
/// non-canonical encodings that would overflow 64 bits.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, SparseError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| SparseError::Parse {
            line: 0,
            message: format!("varint truncated at byte offset {}", *pos),
        })?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(varint_overflow(*pos));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(varint_overflow(*pos));
        }
    }
}

fn varint_overflow(pos: usize) -> SparseError {
    SparseError::Parse {
        line: 0,
        message: format!("varint overflows u64 at byte offset {pos}"),
    }
}

/// Append one complete frame — header and delta-coded body — for `edges`
/// (at most `u32::MAX` of them; the sinks never exceed [`FRAME_EDGES`]).
/// The frame's byte length is patched into the header after the body is
/// encoded, so encoding is single-pass.
pub fn encode_frame(edges: &[(u64, u64)], out: &mut Vec<u8>) {
    debug_assert!(edges.len() <= u32::MAX as usize, "frame too large");
    let header = out.len();
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // byte_len, patched below
    let body = out.len();
    let (mut prev_row, mut prev_col) = (0u64, 0u64);
    for &(row, col) in edges {
        write_varint(out, zigzag_encode(row.wrapping_sub(prev_row) as i64));
        write_varint(out, zigzag_encode(col.wrapping_sub(prev_col) as i64));
        prev_row = row;
        prev_col = col;
    }
    let byte_len = (out.len() - body) as u32;
    out[header + 4..header + 8].copy_from_slice(&byte_len.to_le_bytes());
}

/// Decode one frame body of exactly `count` edges from `payload` into
/// `out` (cleared first).  The payload must be consumed exactly: trailing
/// bytes, truncation, and counts the bytes cannot hold are all typed
/// errors, so a corrupt frame never decodes silently.
pub fn decode_frame(
    count: u32,
    payload: &[u8],
    out: &mut Vec<(u64, u64)>,
) -> Result<(), SparseError> {
    out.clear();
    // Every edge costs at least two bytes (two one-byte varints), so a
    // count the payload cannot possibly hold is rejected before any
    // allocation is sized from it.
    if (count as usize)
        .checked_mul(2)
        .is_none_or(|min| min > payload.len())
    {
        return Err(SparseError::Parse {
            line: 0,
            message: format!(
                "compressed frame declares {count} edges but holds only {} byte(s)",
                payload.len()
            ),
        });
    }
    out.reserve(count as usize);
    let mut pos = 0usize;
    let (mut prev_row, mut prev_col) = (0u64, 0u64);
    for _ in 0..count {
        let row = prev_row.wrapping_add(zigzag_decode(read_varint(payload, &mut pos)?) as u64);
        let col = prev_col.wrapping_add(zigzag_decode(read_varint(payload, &mut pos)?) as u64);
        out.push((row, col));
        prev_row = row;
        prev_col = col;
    }
    if pos != payload.len() {
        return Err(SparseError::Parse {
            line: 0,
            message: format!(
                "compressed frame has {} trailing byte(s) after {count} edges",
                payload.len() - pos
            ),
        });
    }
    Ok(())
}

/// Decode the `[edge_count][byte_len]` frame header from an exactly-8-byte
/// slice.
#[inline]
pub fn frame_header(bytes: &[u8; FRAME_HEADER_LEN]) -> (u32, u32) {
    let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let byte_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    (count, byte_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SplitMix64 output function — the test-local pseudo-random
    /// driver for the property-style round-trip sweeps (deterministic, so
    /// failures reproduce).
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn round_trip(edges: &[(u64, u64)]) {
        let mut bytes = Vec::new();
        encode_frame(edges, &mut bytes);
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        let (count, byte_len) = frame_header(&header);
        assert_eq!(count as usize, edges.len());
        assert_eq!(byte_len as usize, bytes.len() - FRAME_HEADER_LEN);
        let mut decoded = Vec::new();
        decode_frame(count, &bytes[FRAME_HEADER_LEN..], &mut decoded).unwrap();
        assert_eq!(decoded, edges);
    }

    #[test]
    fn zigzag_is_a_bijection_on_the_interesting_values() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes (the point of the mapping).
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn varints_round_trip_across_every_length_class() {
        let mut values: Vec<u64> = vec![0, 1, 127, 128, 16_383, 16_384, u64::MAX];
        for shift in 0..64 {
            values.push(1u64 << shift);
            values.push((1u64 << shift).wrapping_sub(1));
        }
        for &value in &values {
            let mut bytes = Vec::new();
            write_varint(&mut bytes, value);
            assert!(bytes.len() <= 10);
            let mut pos = 0;
            assert_eq!(read_varint(&bytes, &mut pos).unwrap(), value);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn truncated_varints_fail_at_every_prefix() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX);
        for cut in 0..bytes.len() {
            let mut pos = 0;
            let error = read_varint(&bytes[..cut], &mut pos).unwrap_err();
            assert!(
                error.to_string().contains("truncated"),
                "cut={cut}: {error}"
            );
        }
    }

    #[test]
    fn overlong_varints_are_rejected_not_wrapped() {
        // 10 continuation bytes followed by a terminator: would need 70 bits.
        let eleven = [0x80u8; 10]
            .iter()
            .copied()
            .chain(std::iter::once(0x01))
            .collect::<Vec<u8>>();
        let mut pos = 0;
        assert!(read_varint(&eleven, &mut pos).is_err());
        // A 10-byte encoding whose final byte carries more than u64's last
        // bit must fail too, not silently truncate.
        let mut overweight = vec![0xFFu8; 9];
        overweight.push(0x02);
        let mut pos = 0;
        assert!(read_varint(&overweight, &mut pos).is_err());
    }

    #[test]
    fn frames_round_trip_empty_single_and_max_delta_edges() {
        round_trip(&[]);
        round_trip(&[(0, 0)]);
        round_trip(&[(u64::MAX, u64::MAX)]);
        // Maximal wrapping deltas in both directions.
        round_trip(&[(u64::MAX, 0), (0, u64::MAX), (u64::MAX, 0)]);
        round_trip(&[(1, u64::MAX), (u64::MAX, 1), (0, 0), (u64::MAX, u64::MAX)]);
    }

    #[test]
    fn property_random_edge_lists_round_trip() {
        // Deterministic property sweep: 64 random frames across wildly
        // different magnitude regimes, including cross-regime jumps that
        // exercise every delta width.
        for case in 0..64u64 {
            let len = (splitmix(case) % 200) as usize;
            let edges: Vec<(u64, u64)> = (0..len)
                .map(|i| {
                    let r = splitmix(case ^ (i as u64).wrapping_mul(0x9E37));
                    let mask = match r % 4 {
                        0 => 0xFF,
                        1 => 0xFFFF,
                        2 => 0xFFFF_FFFF,
                        _ => u64::MAX,
                    };
                    (splitmix(r) & mask, splitmix(r ^ 1) & mask)
                })
                .collect();
            round_trip(&edges);
        }
    }

    #[test]
    fn frame_counts_that_disagree_with_the_payload_fail() {
        let mut bytes = Vec::new();
        encode_frame(&[(5, 9), (6, 9)], &mut bytes);
        let payload = &bytes[FRAME_HEADER_LEN..];
        let mut out = Vec::new();
        // Fewer edges than encoded: trailing bytes.
        let error = decode_frame(1, payload, &mut out).unwrap_err();
        assert!(error.to_string().contains("trailing"), "{error}");
        // More edges than encoded: truncation (or the cheap length bound).
        assert!(decode_frame(3, payload, &mut out).is_err());
        // A count no payload of this size could hold is rejected before
        // any allocation is sized from it.
        let error = decode_frame(u32::MAX, payload, &mut out).unwrap_err();
        assert!(error.to_string().contains("declares"), "{error}");
    }

    #[test]
    fn locality_compresses_well_below_the_fixed_layout() {
        // A plausibly local stream (sorted-ish small deltas) must beat the
        // v2/v3 fixed 16 bytes per edge by a wide margin.
        let edges: Vec<(u64, u64)> = (0..10_000u64)
            .map(|i| (i / 16, splitmix(i) % 4096))
            .collect();
        let mut bytes = Vec::new();
        encode_frame(&edges, &mut bytes);
        let fixed = 16 * edges.len();
        assert!(
            bytes.len() * 3 < fixed,
            "compressed {} bytes vs fixed {fixed}",
            bytes.len()
        );
    }
}
