//@ path: crates/core/src/under_test.rs
// lint:allow(no-unwrap) -- stale: nothing below unwraps any more //~ unused-suppression
pub fn safe(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}
