//@ path: crates/gen/src/manifest.rs
pub fn to_json(out: &mut String, v: &str, n: u64) {
    write_string(out, "source", v);
    write_number(out, "edges", &n.to_string());
    out.push_str("{\"kind\": \"run\"}");
}

pub fn from_json(obj: &JsonObject) -> Option<u64> {
    let _ = get(obj, "source")?;
    let _ = get(obj, "kind")?;
    optional_u64(obj, "edges")
}
