//! Design exploration: invert the workflow and *search* for a star set whose
//! exact properties hit a target scale, then compare the cost of that exact
//! search against the R-MAT trial-and-error loop the paper criticises.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_explorer [target_edges]
//! ```

use std::time::Instant;

use extreme_graphs::bignum::BigUint;
use extreme_graphs::rmat::{TrialAndErrorDesigner, TrialTargets};
use extreme_graphs::{DesignSearch, DesignTargets, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_edges: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);

    println!("target: a power-law graph with ~{target_edges} edges\n");

    // --- Exact Kronecker design search -------------------------------------
    let started = Instant::now();
    let search = DesignSearch::default();
    let mut targets = DesignTargets::edges(BigUint::from(target_edges));
    targets.max_constituents = 5;
    let candidates = search.search(&targets, 5)?;
    let exact_elapsed = started.elapsed();

    println!("=== exact Kronecker design search ===");
    println!("evaluated analytically in {exact_elapsed:?} (no graph was generated)");
    println!(
        "{:<28} {:>14} {:>14} {:>10}",
        "star points m̂", "edges", "vertices", "log-error"
    );
    for candidate in &candidates {
        println!(
            "{:<28} {:>14} {:>14} {:>10.4}",
            format!("{:?}", candidate.points),
            candidate.edges.to_string(),
            candidate.vertices.to_string(),
            candidate.edge_log_error,
        );
    }
    let best = candidates[0].clone();
    let design = best.into_design(SelfLoop::None)?;
    println!("\nbest design, full property sheet (still nothing generated):");
    println!("{}", design.properties());

    // --- R-MAT trial-and-error baseline -------------------------------------
    println!("\n=== R-MAT trial-and-error loop (the workflow the paper replaces) ===");
    let started = Instant::now();
    let designer = TrialAndErrorDesigner::new(2024);
    let report = designer.run(&TrialTargets {
        unique_edges: target_edges,
        edge_tolerance: 0.05,
        max_iterations: 10,
    });
    let rmat_elapsed = started.elapsed();
    println!(
        "iterations: {}   converged: {}   edges generated along the way: {}   time: {rmat_elapsed:?}",
        report.iteration_count(),
        report.converged,
        report.total_edges_generated,
    );
    for (i, iteration) in report.iterations.iter().enumerate() {
        println!(
            "  iter {:>2}: scale {:>2}, edge_factor {:>3} -> {:>9} unique edges ({:>5.1}% off), {} empty vertices",
            i,
            iteration.params.scale,
            iteration.params.edge_factor,
            iteration.stats.unique_edges,
            iteration.relative_error * 100.0,
            iteration.stats.empty_vertices,
        );
    }

    println!(
        "\nsummary: exact design search inspected {} candidates without generating a single edge;",
        candidates.len()
    );
    println!(
        "the trial-and-error loop generated {} edges to reach (or fail to reach) the same target.",
        report.total_edges_generated
    );

    Ok(())
}
