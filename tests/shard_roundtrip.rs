//! Out-of-core shard driver: equivalence, validation, and corruption tests.
//!
//! The shard driver must be a pure re-plumbing of the materialising
//! generator: for any design, worker count, and sink, the union of the
//! shards is bit-for-bit the graph `ParallelGenerator::generate().assemble()`
//! produces, and the streamed degree histogram validates exactly against the
//! analytic prediction — including for designs whose edge count exceeds the
//! materialising generator's `max_total_edges` ceiling.  Shard files written
//! to disk must also survive hostile inputs: every corrupt-header and
//! corrupt-body variant of the binary layout has to fail cleanly.

// The deprecated ShardDriver::run_* wrappers are exercised deliberately:
// these tests pin them to the pipeline engine they now delegate to.
#![allow(deprecated)]

use std::path::PathBuf;

use extreme_graphs::gen::writer::{
    read_block_bin, BLOCK_HEADER_LEN, BLOCK_MAGIC, BLOCK_VERSION_PAIRS,
};
use extreme_graphs::gen::DriverConfig;
use extreme_graphs::sparse::SparseError;
use extreme_graphs::{GeneratorConfig, KroneckerDesign, ParallelGenerator, SelfLoop, ShardDriver};

fn driver(workers: usize) -> ShardDriver {
    ShardDriver::new(DriverConfig {
        workers,
        max_c_edges: 200_000,
        max_b_edges: 1 << 22,
        chunk_capacity: 1 << 12,
        ..DriverConfig::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_shard_roundtrip")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn shards_are_bit_identical_to_the_materialising_generator() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
        for workers in [1usize, 3, 8] {
            let reference = ParallelGenerator::new(GeneratorConfig {
                workers,
                max_c_edges: 200_000,
                max_total_edges: 10_000_000,
            })
            .generate_with_split(&design, 2)
            .unwrap();
            let mut materialised = reference.assemble();
            materialised.sort();

            let dir = temp_dir(&format!("equiv_{self_loop:?}_{workers}"));
            let (run, files) = driver(workers).run_binary(&design, 2, &dir).unwrap();
            let mut streamed = files.read_assembled().unwrap();
            streamed.sort();
            assert_eq!(
                streamed, materialised,
                "driver shards differ from the generator for {self_loop:?} × {workers} workers"
            );
            assert_eq!(run.edge_count(), reference.edge_count());
            assert!(
                run.validate().is_exact_match(),
                "streamed validation failed for {self_loop:?} × {workers} workers: {:?}",
                run.validate().failures()
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn driver_validates_beyond_the_materialising_ceiling_in_bounded_memory() {
    // 22,160,060 edges: more than four times this generator config's ceiling.
    let design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25], SelfLoop::Centre).unwrap();
    let config = GeneratorConfig {
        workers: 8,
        max_c_edges: 200_000,
        max_total_edges: 5_000_000,
    };
    assert!(
        ParallelGenerator::new(config)
            .generate_with_split(&design, 4)
            .is_err(),
        "the design must exceed the materialising ceiling for this test to mean anything"
    );

    let run = driver(8).run_counting(&design, 4).unwrap();
    assert_eq!(run.edge_count().to_string(), design.edges().to_string());
    let report = run.validate();
    assert!(
        report.is_exact_match(),
        "measured != predicted beyond the ceiling: {:?}",
        report.failures()
    );
    // The measured histogram is the paper's Figure-4 series: identical to
    // the analytic degree distribution, point by point.
    assert_eq!(
        run.measured.degree_distribution,
        design.degree_distribution()
    );
}

mod corrupt_binary_shards {
    use super::*;

    fn valid_shard_bytes() -> (Vec<u8>, PathBuf) {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let dir = temp_dir("corrupt_base");
        let (_, files) = driver(1).run_binary(&design, 1, &dir).unwrap();
        let bytes = std::fs::read(&files.files[0]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let scratch = temp_dir("corrupt_scratch");
        std::fs::create_dir_all(&scratch).unwrap();
        (bytes, scratch.join("shard.kbk"))
    }

    fn expect_parse_error(bytes: &[u8], path: &PathBuf, what: &str) {
        std::fs::write(path, bytes).unwrap();
        match read_block_bin(path) {
            Err(SparseError::Parse { .. }) => {}
            other => panic!("{what}: expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (mut bytes, path) = valid_shard_bytes();
        bytes[..4].copy_from_slice(b"NOPE");
        expect_parse_error(&bytes, &path, "bad magic");
    }

    #[test]
    fn bad_version_is_rejected() {
        let (mut bytes, path) = valid_shard_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        expect_parse_error(&bytes, &path, "bad version");
    }

    #[test]
    fn declared_count_must_match_file_length() {
        let (mut bytes, path) = valid_shard_bytes();
        // Inflate the declared entry count without adding bytes.
        let nnz_offset = BLOCK_HEADER_LEN as usize - 8;
        let declared = u64::from_le_bytes(bytes[nnz_offset..nnz_offset + 8].try_into().unwrap());
        bytes[nnz_offset..nnz_offset + 8].copy_from_slice(&(declared + 1).to_le_bytes());
        expect_parse_error(&bytes, &path, "length mismatch (inflated count)");
    }

    #[test]
    fn truncated_body_is_rejected() {
        let (bytes, path) = valid_shard_bytes();
        expect_parse_error(&bytes[..bytes.len() - 8], &path, "truncated body");
    }

    #[test]
    fn truncated_header_is_rejected() {
        let (bytes, path) = valid_shard_bytes();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(read_block_bin(&path).is_err(), "truncated header must fail");
    }

    #[test]
    fn out_of_bounds_indices_are_rejected() {
        // Hand-craft a one-edge interleaved shard whose column index exceeds
        // the declared dimensions.
        let (_, path) = valid_shard_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BLOCK_MAGIC);
        bytes.extend_from_slice(&BLOCK_VERSION_PAIRS.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes()); // nrows
        bytes.extend_from_slice(&4u64.to_le_bytes()); // ncols
        bytes.extend_from_slice(&1u64.to_le_bytes()); // nnz
        bytes.extend_from_slice(&1u64.to_le_bytes()); // row 1: in bounds
        bytes.extend_from_slice(&9u64.to_le_bytes()); // col 9: out of bounds
        std::fs::write(&path, &bytes).unwrap();
        match read_block_bin(&path) {
            Err(SparseError::IndexOutOfBounds { col: 9, .. }) => {}
            other => panic!("expected IndexOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn absurd_declared_count_fails_before_allocating() {
        let (mut bytes, path) = valid_shard_bytes();
        let nnz_offset = BLOCK_HEADER_LEN as usize - 8;
        bytes[nnz_offset..nnz_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match read_block_bin(&path) {
            Err(SparseError::TooLarge { .. }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}

mod random_designs {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn shards_merge_to_the_designed_graph(
            left_points in 2u64..6,
            right_points in 2u64..6,
            workers in 1usize..9,
            loop_choice in 0u8..3,
        ) {
            let self_loop = match loop_choice {
                0 => SelfLoop::None,
                1 => SelfLoop::Centre,
                _ => SelfLoop::Leaf,
            };
            let design =
                KroneckerDesign::from_star_points(&[left_points, right_points], self_loop)
                    .unwrap();
            let dir = temp_dir(&format!(
                "prop_{left_points}_{right_points}_{workers}_{loop_choice}"
            ));
            let (run, files) = driver(workers).run_binary(&design, 1, &dir).unwrap();
            prop_assert!(run.validate().is_exact_match());

            let mut streamed = files.read_assembled().unwrap();
            let mut designed = design.realize(1_000_000).unwrap();
            streamed.sort();
            designed.sort();
            prop_assert_eq!(streamed, designed);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
