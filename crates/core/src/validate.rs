//! Validation: measuring a realised graph and comparing it with predictions.
//!
//! The paper's headline validation (Figure 4) is that the measured degree
//! distribution of a generated trillion-edge graph *exactly* equals the
//! predicted one.  This module measures [`GraphProperties`] from a realised
//! adjacency matrix — or, for graphs too large to assemble, from a streamed
//! degree histogram — and produces a field-by-field [`ValidationReport`]
//! against the analytic prediction.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use kron_bignum::BigUint;
use kron_sparse::reduce::{
    col_counts, degree_distribution as measured_histogram, degree_histogram,
};
use kron_sparse::select::{empty_vertices, has_duplicates, self_loop_count};
use kron_sparse::triangles::count_triangles_coo;
use kron_sparse::CooMatrix;

use crate::degree::DegreeDistribution;
use crate::design::KroneckerDesign;
use crate::error::CoreError;
use crate::properties::GraphProperties;

/// Measure the exact properties of a realised adjacency matrix.
///
/// Triangle counting is only attempted when the graph has no self-loops
/// (the formula assumes a simple graph); otherwise `triangles` is `None`.
///
/// A non-square matrix is read as a bipartite adjacency between its row
/// vertices and its (disjoint) column vertices — the Figure-1 view of a
/// star's `E_out`/`E_in` factors: `vertices` is `nrows + ncols`, each stored
/// entry contributes a row endpoint and a column endpoint to the degree
/// distribution, self-loops do not exist (the diagonal has no meaning across
/// disjoint vertex sets), and triangles are not measured.
pub fn measure_properties(graph: &CooMatrix<u64>) -> Result<GraphProperties, CoreError> {
    if !graph.is_square() {
        return measure_bipartite_properties(graph);
    }
    let loops = self_loop_count(graph) as u64;
    let triangles = if loops == 0 {
        Some(BigUint::from(count_triangles_coo(graph)?))
    } else {
        None
    };
    let histogram = measured_histogram(graph);
    let mut properties = measure_from_histogram(graph.nrows(), &histogram, loops);
    properties.triangles = triangles;
    Ok(properties)
}

/// Measure a non-square matrix as a bipartite graph (see
/// [`measure_properties`]).
fn measure_bipartite_properties(graph: &CooMatrix<u64>) -> Result<GraphProperties, CoreError> {
    let mut histogram = degree_histogram(&kron_sparse::reduce::row_counts(graph));
    for (degree, count) in degree_histogram(&col_counts(graph)) {
        *histogram.entry(degree).or_insert(0) += count;
    }
    let vertices = graph
        .nrows()
        .checked_add(graph.ncols())
        .ok_or(CoreError::Sparse(kron_sparse::SparseError::TooLarge {
            what: "bipartite vertex count",
            requested: graph.nrows() as u128 + graph.ncols() as u128,
        }))?;
    let mut properties = measure_from_histogram(vertices, &histogram, 0);
    // The combined histogram counts both endpoints of every entry, so the
    // `Σ d·n(d)` edge recovery would double-count; the edge count of a
    // bipartite graph is simply its stored-entry count.
    properties.edges = BigUint::from(graph.nnz() as u64);
    properties.triangles = None;
    Ok(properties)
}

/// Build the measured property sheet from a streamed degree histogram — the
/// bounded-memory entry point behind the shard driver's validation path.
///
/// `histogram` maps row-endpoint degree to vertex count (the convention of
/// [`kron_sparse::reduce::degree_distribution`] and
/// [`kron_sparse::DegreeAccumulator::row_histogram`]); the edge count is
/// recovered exactly as `Σ d·n(d)`.  Degree-zero vertices stay out of the
/// distribution (they carry no edge endpoints) but are included in
/// `vertices`.  Triangles are never measured from a histogram.
pub fn measure_from_histogram(
    vertices: u64,
    histogram: &BTreeMap<u64, u64>,
    self_loops: u64,
) -> GraphProperties {
    let mut edges = BigUint::zero();
    for (&degree, &count) in histogram {
        edges += BigUint::from(degree) * BigUint::from(count);
    }
    let mut distribution = DegreeDistribution::from_histogram(histogram);
    let zero = BigUint::zero();
    if !distribution.count(&zero).is_zero() {
        let n = distribution.count(&zero);
        distribution.subtract(&zero, &n);
    }
    GraphProperties {
        vertices: BigUint::from(vertices),
        edges,
        triangles: None,
        self_loops: BigUint::from(self_loops),
        degree_distribution: distribution,
    }
}

/// One field of a validation comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldCheck {
    /// Name of the compared quantity.
    pub field: String,
    /// Predicted value (decimal string).
    pub predicted: String,
    /// Measured value (decimal string).
    pub measured: String,
    /// Whether the two are exactly equal.
    pub matches: bool,
}

impl FieldCheck {
    /// Build a check by rendering both values to decimal strings and
    /// comparing them exactly — the single way every validation path in the
    /// workspace constructs its field comparisons.
    pub fn exact(
        field: impl Into<String>,
        predicted: impl ToString,
        measured: impl ToString,
    ) -> Self {
        let predicted = predicted.to_string();
        let measured = measured.to_string();
        FieldCheck {
            field: field.into(),
            matches: predicted == measured,
            predicted,
            measured,
        }
    }
}

/// The result of validating a realised graph against its design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-field comparisons (vertices, edges, triangles, self-loops,
    /// degree-distribution support and counts).
    pub checks: Vec<FieldCheck>,
    /// Structural health of the realised graph: no empty vertices.  `None`
    /// when the check did not run (property-only and streamed comparisons
    /// have no assembled graph to inspect).
    pub no_empty_vertices: Option<bool>,
    /// Structural health of the realised graph: no duplicate edges.  `None`
    /// when the check did not run.
    pub no_duplicate_edges: Option<bool>,
}

impl ValidationReport {
    /// A report consisting of the given field checks and no structural
    /// inspection (streamed runs have no assembled graph to inspect, so both
    /// structural flags stay `None` = unchecked).
    ///
    /// This is the constructor for sources that cannot predict the full
    /// property sheet: a sampling generator (R-MAT) checks only the fields
    /// it knows ahead of time — vertex and sample counts — and everything
    /// else stays measured-only.
    pub fn from_checks(checks: Vec<FieldCheck>) -> Self {
        ValidationReport {
            checks,
            no_empty_vertices: None,
            no_duplicate_edges: None,
        }
    }

    /// Whether every field matched and no structural check failed
    /// (structural checks that did not run cannot fail).
    pub fn is_exact_match(&self) -> bool {
        self.no_empty_vertices != Some(false)
            && self.no_duplicate_edges != Some(false)
            && self.checks.iter().all(|c| c.matches)
    }

    /// The names of fields that failed.
    pub fn failures(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.matches)
            .map(|c| c.field.as_str())
            .collect()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for check in &self.checks {
            writeln!(
                f,
                "{:<22} predicted {:>28}  measured {:>28}  {}",
                check.field,
                check.predicted,
                check.measured,
                if check.matches { "OK" } else { "MISMATCH" }
            )?;
        }
        let shown = |checked: Option<bool>| match checked {
            Some(ok) => {
                if ok {
                    "true"
                } else {
                    "FALSE"
                }
            }
            None => "unchecked",
        };
        writeln!(f, "no empty vertices: {}", shown(self.no_empty_vertices))?;
        writeln!(f, "no duplicate edges: {}", shown(self.no_duplicate_edges))?;
        write!(f, "exact match: {}", self.is_exact_match())
    }
}

/// Compare predicted properties with a measured realisation.
pub fn compare_properties(
    predicted: &GraphProperties,
    measured: &GraphProperties,
) -> ValidationReport {
    compare_fields(predicted, measured, true)
}

/// Compare predicted properties with a *streamed* measurement — the same
/// field-by-field report as [`compare_properties`], minus the triangle
/// check, which a bounded-memory stream cannot measure (counting triangles
/// needs the assembled matrix).  Every field the paper's Figure 4 validates
/// — vertices, edges, self-loops, and the complete degree distribution — is
/// still compared exactly.
pub fn validate_streamed(
    predicted: &GraphProperties,
    measured: &GraphProperties,
) -> ValidationReport {
    compare_fields(predicted, measured, false)
}

/// Compare two *measured* property sheets field by field — the
/// replay-validation check: a graph streamed back from disk must measure
/// exactly what its generation run measured.  Identical to
/// [`validate_streamed`] except that the "predicted" column is itself a
/// measurement, so the triangle check is likewise skipped.
pub fn compare_measured(
    generation_time: &GraphProperties,
    replayed: &GraphProperties,
) -> ValidationReport {
    compare_fields(generation_time, replayed, false)
}

fn compare_fields(
    predicted: &GraphProperties,
    measured: &GraphProperties,
    include_triangles: bool,
) -> ValidationReport {
    let mut checks = Vec::new();
    let mut push = |field: &str, p: String, m: String| {
        checks.push(FieldCheck::exact(field, p, m));
    };
    push(
        "vertices",
        predicted.vertices.to_string(),
        measured.vertices.to_string(),
    );
    push(
        "edges",
        predicted.edges.to_string(),
        measured.edges.to_string(),
    );
    if include_triangles {
        push(
            "triangles",
            predicted
                .triangles
                .as_ref()
                .map_or("n/a".into(), |t| t.to_string()),
            measured
                .triangles
                .as_ref()
                .map_or("n/a".into(), |t| t.to_string()),
        );
    }
    push(
        "self_loops",
        predicted.self_loops.to_string(),
        measured.self_loops.to_string(),
    );
    push(
        "distinct_degrees",
        predicted.distinct_degrees().to_string(),
        measured.distinct_degrees().to_string(),
    );
    push(
        "max_degree",
        predicted.max_degree().to_string(),
        measured.max_degree().to_string(),
    );
    checks.push(FieldCheck {
        field: "degree_distribution".to_string(),
        matches: predicted.degree_distribution == measured.degree_distribution,
        predicted: format!(
            "{} support points",
            predicted.degree_distribution.support_size()
        ),
        measured: format!(
            "{} support points",
            measured.degree_distribution.support_size()
        ),
    });
    ValidationReport {
        checks,
        no_empty_vertices: None,
        no_duplicate_edges: None,
    }
}

/// Realise a design (bounded by `max_edges`), measure it, and compare with
/// the analytic prediction — the full "design, generate, validate" loop of
/// the paper on a single machine.
pub fn validate_design(
    design: &KroneckerDesign,
    max_edges: u64,
) -> Result<ValidationReport, CoreError> {
    let predicted = design.properties();
    let graph = design.realize(max_edges)?;
    let measured = measure_properties(&graph)?;
    let mut report = compare_properties(&predicted, &measured);
    report.no_empty_vertices = Some(empty_vertices(&graph).is_empty());
    report.no_duplicate_edges = Some(!has_duplicates(&graph));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::SelfLoop;

    #[test]
    fn validate_small_designs_exactly() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 5, 9], self_loop).unwrap();
            let report = validate_design(&design, 1_000_000).unwrap();
            assert!(
                report.is_exact_match(),
                "validation failed for {self_loop:?}: {:?}",
                report.failures()
            );
        }
    }

    #[test]
    fn measured_properties_of_known_graph() {
        // Triangle graph plus an isolated vertex.
        let g = CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
            .unwrap();
        let props = measure_properties(&g).unwrap();
        assert_eq!(props.vertices, BigUint::from(4u64));
        assert_eq!(props.edges, BigUint::from(6u64));
        assert_eq!(props.triangles, Some(BigUint::from(1u64)));
        assert_eq!(props.self_loops, BigUint::zero());
        assert_eq!(
            props.degree_distribution.count(&BigUint::from(2u64)),
            BigUint::from(3u64)
        );
        // The isolated vertex contributes no degree support but is counted.
        assert_eq!(
            props.degree_distribution.total_vertices(),
            BigUint::from(3u64)
        );
    }

    #[test]
    fn non_square_matrices_measure_as_bipartite() {
        // The Figure-1 view of a star: a 2×3 bipartite adjacency.  Row
        // vertices have degrees 2 and 1; column vertices 1, 1, 1.
        let g = CooMatrix::from_edges(2, 3, vec![(0, 0), (0, 2), (1, 1)]).unwrap();
        let props = measure_properties(&g).unwrap();
        assert_eq!(props.vertices, BigUint::from(5u64));
        assert_eq!(props.edges, BigUint::from(3u64));
        // Each stored entry contributes a row endpoint and a column
        // endpoint, so the endpoint total is 2·nnz.
        assert_eq!(
            props.degree_distribution.total_edge_endpoints(),
            BigUint::from(6u64)
        );
        assert_eq!(props.self_loops, BigUint::zero());
        assert_eq!(props.triangles, None);
        assert_eq!(
            props.degree_distribution.count(&BigUint::from(1u64)),
            BigUint::from(4u64)
        );
        assert_eq!(
            props.degree_distribution.count(&BigUint::from(2u64)),
            BigUint::from(1u64)
        );
    }

    #[test]
    fn histogram_measurement_matches_materialised_measurement() {
        let design = KroneckerDesign::from_star_points(&[3, 5, 9], SelfLoop::Centre).unwrap();
        let graph = design.realize(1_000_000).unwrap();
        let materialised = measure_properties(&graph).unwrap();
        let histogram = kron_sparse::reduce::degree_distribution(&graph);
        let streamed = measure_from_histogram(graph.nrows(), &histogram, 0);
        assert_eq!(streamed.vertices, materialised.vertices);
        assert_eq!(streamed.edges, materialised.edges);
        assert_eq!(streamed.self_loops, materialised.self_loops);
        assert_eq!(
            streamed.degree_distribution,
            materialised.degree_distribution
        );
        // Histograms cannot measure triangles.
        assert_eq!(streamed.triangles, None);
    }

    #[test]
    fn streamed_validation_skips_only_the_triangle_check() {
        let design = KroneckerDesign::from_star_points(&[3, 5, 9], SelfLoop::Leaf).unwrap();
        let graph = design.realize(1_000_000).unwrap();
        let histogram = kron_sparse::reduce::degree_distribution(&graph);
        let streamed = measure_from_histogram(graph.nrows(), &histogram, 0);
        let report = validate_streamed(&design.properties(), &streamed);
        assert!(
            report.is_exact_match(),
            "streamed validation failed: {:?}",
            report.failures()
        );
        assert!(!report.checks.iter().any(|c| c.field == "triangles"));
        // The materialising comparison would have flagged the unmeasured
        // triangle count as a mismatch.
        let full = compare_properties(&design.properties(), &streamed);
        assert!(full.failures().contains(&"triangles"));
    }

    #[test]
    fn compare_measured_matches_itself_and_flags_differences() {
        let design = KroneckerDesign::from_star_points(&[3, 5, 9], SelfLoop::Centre).unwrap();
        let graph = design.realize(1_000_000).unwrap();
        let histogram = kron_sparse::reduce::degree_distribution(&graph);
        let streamed = measure_from_histogram(graph.nrows(), &histogram, 0);
        let report = compare_measured(&streamed, &streamed);
        assert!(report.is_exact_match());
        assert!(!report.checks.iter().any(|c| c.field == "triangles"));

        let mut off = streamed.clone();
        off.edges += BigUint::one();
        assert!(compare_measured(&streamed, &off)
            .failures()
            .contains(&"edges"));
    }

    #[test]
    fn self_loops_disable_triangle_measurement() {
        let g = CooMatrix::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]).unwrap();
        let props = measure_properties(&g).unwrap();
        assert_eq!(props.self_loops, BigUint::from(1u64));
        assert_eq!(props.triangles, None);
    }

    #[test]
    fn mismatches_are_reported() {
        let design_a = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let design_b = KroneckerDesign::from_star_points(&[3, 5], SelfLoop::None).unwrap();
        let report = compare_properties(&design_a.properties(), &design_b.properties());
        assert!(!report.is_exact_match());
        assert!(report.failures().contains(&"vertices"));
        assert!(report.failures().contains(&"edges"));
        let text = report.to_string();
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("exact match: false"));
    }

    #[test]
    fn report_serialises() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        let report = validate_design(&design, 10_000).unwrap();
        let check = &report.checks[0];
        assert_eq!(check.field, "vertices");
        assert!(check.matches);
    }
}
