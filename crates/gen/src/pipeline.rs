//! The unified design → generate → validate pipeline.
//!
//! The paper's workflow is one straight line — design a graph, generate it
//! communication-free, validate that measured equals predicted — and
//! [`Pipeline`] is that line as one API, generic over *where the edges come
//! from*: any [`EdgeSource`].  The exact Kronecker expansion
//! ([`KroneckerSource`]), the Graph500-style R-MAT sampler
//! (`kron_rmat::RmatSource`), and the raw `B ⊗ C` product all run through
//! the same terminals:
//!
//! ```no_run
//! use kron_core::{KroneckerDesign, SelfLoop};
//! use kron_gen::Pipeline;
//!
//! let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)?;
//! let report = Pipeline::for_design(&design)
//!     .workers(8)
//!     .permute_vertices(0xFEED)  // O(1)-memory Feistel relabelling
//!     .write_binary(std::path::Path::new("/data/run1"))?;
//! assert!(report.validation.is_exact_match());
//! println!("{}", report.manifest.to_json());
//! # Ok::<(), kron_core::CoreError>(())
//! ```
//!
//! * [`Pipeline::count`] — generate and validate, store nothing.
//! * [`Pipeline::collect_coo`] — per-worker in-memory COO blocks.
//! * [`Pipeline::write_tsv`] / [`Pipeline::write_binary`] — one shard file
//!   per worker, plus a `manifest.json` reproducibility record.
//! * [`Pipeline::into_sinks`] — any custom [`EdgeSink`] factory.
//!
//! Every terminal returns a [`RunReport`]: the sink outputs, the
//! [`GenerationStats`], the streamed [`ValidationReport`] (field-by-field
//! for everything the source can predict exactly; measured-only otherwise),
//! and a serialisable [`RunManifest`] recording the source kind and every
//! seed.  Generation is always the communication-free streaming engine —
//! each worker streams its share of the source through a reusable chunk into
//! its sink while feeding an adaptive streaming degree histogram — so every
//! backend, in-memory or on-disk, gets bounded-memory generation *and*
//! validation.  [`Pipeline::permute_vertices`] inserts an in-stream
//! [`FeistelPermutation`] relabelling stage: O(1) memory, no permutation
//! table, seed captured in the manifest.  The legacy
//! [`ParallelGenerator`](crate::generator::ParallelGenerator) and
//! [`ShardDriver::run_*`](crate::driver::ShardDriver) entry points are thin
//! wrappers over this module.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use kron_core::validate::ValidationReport;
use kron_core::{CoreError, GraphProperties, KroneckerDesign};
use kron_sparse::{CooMatrix, SparseError};

use crate::chunk::EdgeChunk;
use crate::driver::DriverConfig;
use crate::manifest::{
    JournalHeader, ProgressJournal, RunManifest, ShardRecord, MANIFEST_FILE_NAME,
};
use crate::metrics::{would_share, MetricSuite, MetricsEngine, MetricsReport, StreamingMetric};
use crate::permute::FeistelPermutation;
use crate::replay::{stream_binary_shard, stream_tsv_shard};
use crate::sink::{
    BinaryShardSink, CompressedShardSink, CooSink, CountingSink, DoubleBufferedSink, EdgeSink,
    TsvShardSink,
};
use crate::source::{EdgeSource, KroneckerSource, SourceRun};
use crate::split::SplitPlan;
use crate::stats::GenerationStats;
use crate::writer::{prepare_directory, shard_checksum, BlockFileSet, BlockFormat};

pub use crate::source::SelfLoopPolicy;

/// How a pipeline run responds to a *transient* worker failure — a sink
/// write error, a source read hiccup — before giving up on the shard: the
/// whole worker attempt is thrown away ([`EdgeSink::abandon`] removes any
/// partial temporary file, the worker's metrics check-out is discarded
/// unfolded) and the attempt is re-run from the start after a bounded
/// exponential backoff.  Re-running is safe because every
/// [`SourceRun`] streams a worker's share deterministically and sinks stage
/// into temporary files, so a failed attempt leaves nothing behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on the first error).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound the doubling backoff is clamped to.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// No retries — the default pipeline fails fast.
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Never retry: the first worker error fails (or quarantines) the shard.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Retry up to `max_retries` times with a 10 ms initial backoff doubling
    /// to at most one second.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }

    /// The backoff before 0-based retry `attempt`: `base * 2^attempt`,
    /// clamped to `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX));
        doubled.min(self.max_backoff)
    }
}

/// One shard the run could not produce: the typed quarantine record a
/// fault-tolerant run ([`Pipeline::quarantine_failures`]) returns in
/// [`RunReport::failures`] instead of failing the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFailure {
    /// The worker whose shard failed.
    pub worker: usize,
    /// The output file the shard would have landed in, for file terminals.
    pub path: Option<PathBuf>,
    /// The error of the last attempt.
    pub error: CoreError,
    /// Attempts made (1 + retries).
    pub attempts: u32,
}

/// The concrete pipeline type of a Kronecker-design run — what
/// [`Pipeline::for_design`] returns.
pub type DesignPipeline<'d> = Pipeline<KroneckerSource<'d>>;

/// A fluent builder for one design → generate → validate run over any
/// [`EdgeSource`].
///
/// Engine knobs (workers, chunk size, histogram budget, the optional vertex
/// permutation) live on the pipeline; source-specific knobs (the `B ⊗ C`
/// split and factor budgets of a Kronecker run, the sampling seed of an
/// R-MAT run) live on the source.  For the common Kronecker case,
/// [`Pipeline::for_design`] starts a pipeline whose source setters are
/// forwarded straight from the builder, so the pre-generic API reads
/// unchanged.
#[derive(Debug, Clone)]
pub struct Pipeline<S> {
    source: S,
    workers: usize,
    chunk_capacity: usize,
    max_histogram_bytes: u64,
    permutation_seed: Option<u64>,
    metrics: MetricSuite,
    retry: RetryPolicy,
    quarantine: bool,
    /// Set when the worker count is still the clamped default
    /// ([`DriverConfig::clamped_default_workers`]): the warning the run
    /// reports, cleared by an explicit [`Pipeline::workers`].
    default_worker_note: Option<String>,
}

/// The host's available parallelism, for clamping the *default* worker
/// count.  Host-dependent by design — it only ever selects how many workers
/// share the stream, never what the stream contains (the edge multiset is
/// identical for every worker count).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(DriverConfig::DEFAULT_WORKERS)
}

impl<'d> Pipeline<KroneckerSource<'d>> {
    /// Start a pipeline over `design` with default configuration.  The
    /// default worker count is clamped to the host's available parallelism
    /// (with a run warning); set [`Pipeline::workers`] to override.
    pub fn for_design(design: &'d KroneckerDesign) -> Self {
        let mut pipeline = Pipeline::from_config(design, &DriverConfig::default());
        let (workers, note) = DriverConfig::clamped_default_workers(host_parallelism());
        pipeline.workers = workers;
        pipeline.default_worker_note = note;
        pipeline
    }

    /// Start a pipeline with every knob taken from a [`DriverConfig`].
    pub fn from_config(design: &'d KroneckerDesign, config: &DriverConfig) -> Self {
        Pipeline {
            source: KroneckerSource::from_config(design, config),
            workers: config.workers,
            chunk_capacity: config.chunk_capacity,
            max_histogram_bytes: config.max_histogram_bytes,
            permutation_seed: None,
            metrics: MetricSuite::new(),
            retry: RetryPolicy::none(),
            quarantine: false,
            default_worker_note: None,
        }
    }

    /// Pin the `B ⊗ C` split index (`B` = first `split_index` constituents)
    /// instead of choosing it automatically.
    pub fn split_index(mut self, split_index: usize) -> Self {
        self.source = self.source.split_index(split_index);
        self
    }

    /// Set the memory budget for the replicated `C` factor, in stored
    /// entries (also the budget the automatic split choice honours).
    pub fn max_c_edges(mut self, max_c_edges: u64) -> Self {
        self.source = self.source.max_c_edges(max_c_edges);
        self
    }

    /// Set the memory budget for the partitioned `B` factor, in stored
    /// entries.
    pub fn max_b_edges(mut self, max_b_edges: u64) -> Self {
        self.source = self.source.max_b_edges(max_b_edges);
        self
    }

    /// Set the self-loop policy.
    pub fn self_loop_policy(mut self, policy: SelfLoopPolicy) -> Self {
        self.source = self.source.self_loop_policy(policy);
        self
    }

    /// Shorthand for [`SelfLoopPolicy::KeepRaw`]: stream the raw `B ⊗ C`
    /// product, self-loops included.
    pub fn raw_product(self) -> Self {
        self.self_loop_policy(SelfLoopPolicy::KeepRaw)
    }
}

impl<S: EdgeSource> Pipeline<S> {
    /// Start a pipeline over any [`EdgeSource`] with default engine
    /// configuration — the entry point for non-Kronecker sources:
    ///
    /// ```ignore
    /// let report = Pipeline::for_source(RmatSource::new(params, seed)?)
    ///     .workers(8)
    ///     .count()?;
    /// ```
    pub fn for_source(source: S) -> Self {
        let defaults = DriverConfig::default();
        let (workers, note) = DriverConfig::clamped_default_workers(host_parallelism());
        Pipeline {
            source,
            workers,
            chunk_capacity: defaults.chunk_capacity,
            max_histogram_bytes: defaults.max_histogram_bytes,
            permutation_seed: None,
            metrics: MetricSuite::new(),
            retry: RetryPolicy::none(),
            quarantine: false,
            default_worker_note: note,
        }
    }

    /// Set the number of workers (rayon tasks; the paper's "processors").
    /// An explicit count is never clamped — it is part of the run's
    /// deterministic configuration.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self.default_worker_note = None;
        self
    }

    /// Set the capacity of each worker's reusable edge chunk.
    pub fn chunk_capacity(mut self, chunk_capacity: usize) -> Self {
        self.chunk_capacity = chunk_capacity;
        self
    }

    /// Set the memory budget for the streaming degree histogram, in bytes
    /// (see [`DriverConfig::max_histogram_bytes`]).
    pub fn max_histogram_bytes(mut self, max_histogram_bytes: u64) -> Self {
        self.max_histogram_bytes = max_histogram_bytes;
        self
    }

    /// Relabel every vertex through a seeded [`FeistelPermutation`] as the
    /// edges stream — O(1) memory, no permutation table — so the heavy
    /// vertices of the released graph are not identifiable by index
    /// (Graph500's post-generation shuffle, fused into generation).  The
    /// permutation is an exact bijection on `[0, vertices)`: every degree-
    /// and loop-preserving guarantee holds, validation still passes, and the
    /// seed is recorded in the manifest so the run stays reproducible.
    pub fn permute_vertices(mut self, seed: u64) -> Self {
        self.permutation_seed = Some(seed);
        self
    }

    /// Register one custom [`StreamingMetric`]: each worker gets an observer
    /// that sees every chunk delivered to its sink, observers merge as
    /// workers finish, and the metric's value lands in
    /// [`RunReport::metrics`] and the manifest.  The built-in metrics
    /// (degree histogram, counts, max degree, balance, power-law fit) always
    /// run; this adds to them.
    pub fn with_metric(mut self, metric: impl StreamingMetric + 'static) -> Self {
        self.metrics.push(metric);
        self
    }

    /// Replace the whole custom-metric suite.
    pub fn metrics(mut self, metrics: MetricSuite) -> Self {
        self.metrics = metrics;
        self
    }

    /// Retry a failed worker attempt under `retry` before giving up on its
    /// shard.  A retried attempt restarts the worker's deterministic stream
    /// from scratch (the failed sink is [abandoned](EdgeSink::abandon), its
    /// metrics discarded), so a transient fault costs time, never
    /// correctness.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Degrade gracefully on permanent worker failures: instead of failing
    /// the whole run when a worker exhausts its retries, record a
    /// [`ShardFailure`] in [`RunReport::failures`], count the worker's
    /// delivered edges as zero, and complete every other shard.  A later
    /// [`Pipeline::resume`] regenerates exactly the missing shards.
    pub fn quarantine_failures(mut self, quarantine: bool) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Generate and validate with a [`CountingSink`] per worker: no output
    /// at all — the cheapest way to reproduce measured-equals-predicted at
    /// scales far beyond memory for edges.
    pub fn count(self) -> Result<RunReport<u64>, CoreError> {
        self.run(SinkSpec::plain("counting"), |_| Ok(CountingSink::new()))
    }

    /// Generate into one in-memory [`CooSink`] block per worker (tests and
    /// small graphs).
    pub fn collect_coo(self) -> Result<RunReport<CooMatrix<u64>>, CoreError> {
        let vertices = self.source.vertices()?;
        self.run(SinkSpec::plain("coo"), |_| Ok(CooSink::new(vertices)))
    }

    /// Generate into one TSV shard per worker under `directory`, and write
    /// the run's `manifest.json` next to the shards.
    pub fn write_tsv(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        let files = prepare_directory(directory, self.workers, "tsv")?;
        let spec = SinkSpec::files("tsv", directory, &files, BlockFormat::Tsv);
        self.run(spec, |worker| TsvShardSink::create(&files[worker]))
    }

    /// Generate into one interleaved binary shard per worker under
    /// `directory`, and write the run's `manifest.json` next to the shards.
    pub fn write_binary(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        let vertices = self.source.vertices()?;
        let files = prepare_directory(directory, self.workers, "kbk")?;
        let spec = SinkSpec::files("binary", directory, &files, BlockFormat::Binary);
        self.run(spec, |worker| {
            BinaryShardSink::create(&files[worker], vertices, vertices)
        })
    }

    /// Generate into one compressed (v4 delta/varint) shard per worker
    /// under `directory`, and write the run's `manifest.json` next to the
    /// shards.  Each worker's sink runs double-buffered: encoding and
    /// writing happen on a dedicated writer thread, overlapped with
    /// generation, behind a bounded two-chunk queue.
    pub fn write_compressed(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        let vertices = self.source.vertices()?;
        let files = prepare_directory(directory, self.workers, "kbkz")?;
        let spec = SinkSpec::files("compressed", directory, &files, BlockFormat::Compressed);
        self.run(spec, |worker| {
            Ok(DoubleBufferedSink::new(CompressedShardSink::create(
                &files[worker],
                vertices,
                vertices,
            )?))
        })
    }

    /// Generate into custom sinks: `make_sink(worker)` creates the sink each
    /// worker streams into.  This is the extension point every new backend
    /// (sockets, compressed files, columnar stores) plugs into.
    pub fn into_sinks<K, F>(self, make_sink: F) -> Result<RunReport<K::Output>, CoreError>
    where
        K: EdgeSink,
        K::Output: Send,
        F: Fn(usize) -> Result<K, SparseError> + Sync,
    {
        self.run(SinkSpec::plain("custom"), make_sink)
    }

    /// Resume an interrupted (or partially quarantined) file-writing run
    /// from the progress journal in `directory`.
    ///
    /// The pipeline must be configured exactly as the interrupted run was —
    /// same source, seeds, workers, and permutation; any disagreement with
    /// the journal header is rejected up front with
    /// [`CoreError::ResumeMismatch`], because every source streams a
    /// worker's share deterministically *per configuration* and a resumed
    /// run mixing configurations would silently produce a different graph.
    ///
    /// Each shard the journal records as complete is re-verified by checksum
    /// on disk: verified shards are *skipped* (their edges stream back
    /// through the metrics engine, so the report still measures the whole
    /// graph), missing or corrupt shards are regenerated (with a warning
    /// naming the shard), and orphaned `.tmp` staging files from the crash
    /// are deleted.  The result is bit-identical — shard bytes and
    /// [`MetricsReport`] — to the same run never having been interrupted.
    pub fn resume(self, directory: &Path) -> Result<RunReport<PathBuf>, CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "the pipeline needs at least one worker".into(),
            });
        }
        let (header, records) = ProgressJournal::read(directory)?;
        if header.workers != self.workers {
            return Err(CoreError::ResumeMismatch {
                field: "workers".into(),
                journal: header.workers.to_string(),
                run: self.workers.to_string(),
            });
        }
        if header.permutation_seed != self.permutation_seed {
            return Err(CoreError::ResumeMismatch {
                field: "permutation_seed".into(),
                journal: fmt_seed(header.permutation_seed),
                run: fmt_seed(self.permutation_seed),
            });
        }
        let vertices = self.source.vertices()?;
        let (format, extension, label) = match header.sink.as_str() {
            "tsv" => (BlockFormat::Tsv, "tsv", "tsv"),
            "binary" => (BlockFormat::Binary, "kbk", "binary"),
            "compressed" => (BlockFormat::Compressed, "kbkz", "compressed"),
            other => {
                return Err(CoreError::InvalidConfig {
                    message: format!(
                        "cannot resume a '{other}' run: only tsv, binary, and compressed \
                         file runs journal their progress"
                    ),
                })
            }
        };
        if header.vertices != vertices.to_string() {
            return Err(CoreError::ResumeMismatch {
                field: "vertices".into(),
                journal: header.vertices,
                run: vertices.to_string(),
            });
        }

        let files = prepare_directory(directory, self.workers, extension)?;
        let mut notes = Vec::new();
        let removed = remove_orphaned_tmp_files(directory)?;
        if removed > 0 {
            notes.push(format!(
                "resume: removed {removed} orphaned .tmp staging file(s) left by the \
                 interrupted run"
            ));
        }
        let mut skips: Vec<Option<SkipShard<PathBuf>>> = (0..self.workers).map(|_| None).collect();
        for record in records {
            let Some(expected) = files.get(record.worker) else {
                continue;
            };
            if Some(record.file.as_str()) != expected.file_name().and_then(|n| n.to_str()) {
                // A record from a different layout (e.g. a renamed file):
                // nothing safe to skip, regenerate the shard.
                continue;
            }
            let path = directory.join(&record.file);
            match shard_checksum(&path, format) {
                Ok(actual) if actual == record.checksum => {
                    let worker = record.worker;
                    skips[worker] = Some(SkipShard {
                        output: expected.clone(),
                        path,
                        format,
                        record,
                    });
                }
                Ok(actual) => notes.push(format!(
                    "resume: shard {} failed checksum verification (journal \
                     {:#018x}, disk {actual:#018x}); regenerating",
                    record.file, record.checksum
                )),
                Err(_) => notes.push(format!(
                    "resume: shard {} missing or unreadable; regenerating",
                    record.file
                )),
            }
        }
        let verified = skips.iter().filter(|s| s.is_some()).count();
        notes.push(format!(
            "resume: {verified} shard(s) verified complete, {} to generate",
            self.workers - verified
        ));

        let mut spec = SinkSpec::files(label, directory, &files, format);
        spec.journal = JournalMode::Append;
        spec.expect = Some(ResumeExpectation {
            source: header.source,
            source_seed: header.source_seed,
        });
        spec.notes = notes;
        match format {
            BlockFormat::Tsv => {
                self.run_with(spec, |worker| TsvShardSink::create(&files[worker]), skips)
            }
            BlockFormat::Binary => self.run_with(
                spec,
                |worker| BinaryShardSink::create(&files[worker], vertices, vertices),
                skips,
            ),
            BlockFormat::Compressed => self.run_with(
                spec,
                |worker| {
                    Ok(DoubleBufferedSink::new(CompressedShardSink::create(
                        &files[worker],
                        vertices,
                        vertices,
                    )?))
                },
                skips,
            ),
        }
    }

    fn run<K, F>(self, spec: SinkSpec, make_sink: F) -> Result<RunReport<K::Output>, CoreError>
    where
        K: EdgeSink,
        K::Output: Send,
        F: Fn(usize) -> Result<K, SparseError> + Sync,
    {
        let skips = (0..self.workers).map(|_| None).collect();
        self.run_with(spec, make_sink, skips)
    }

    /// The engine: prepare the source, stream every worker's share through
    /// the optional permutation into the per-worker sinks (retrying and
    /// quarantining failures per the pipeline's policy, journalling shard
    /// completions, and skipping shards a resume already verified),
    /// accumulate the streaming degree histogram, and assemble the report
    /// (validation + manifest included).
    fn run_with<K, F>(
        self,
        spec: SinkSpec,
        make_sink: F,
        skips: Vec<Option<SkipShard<K::Output>>>,
    ) -> Result<RunReport<K::Output>, CoreError>
    where
        K: EdgeSink,
        K::Output: Send,
        F: Fn(usize) -> Result<K, SparseError> + Sync,
    {
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "the pipeline needs at least one worker".into(),
            });
        }
        let vertices = self.source.vertices()?;
        let (source_run, mut warnings) = self.source.prepare(self.workers)?;
        if let Some(note) = &self.default_worker_note {
            warnings.push(note.clone());
        }
        let descriptor = source_run.descriptor();
        if let Some(expect) = &spec.expect {
            if descriptor.kind != expect.source {
                return Err(CoreError::ResumeMismatch {
                    field: "source".into(),
                    journal: expect.source.clone(),
                    run: descriptor.kind.to_string(),
                });
            }
            if descriptor.seed != expect.source_seed {
                return Err(CoreError::ResumeMismatch {
                    field: "source_seed".into(),
                    journal: fmt_seed(expect.source_seed),
                    run: fmt_seed(descriptor.seed),
                });
            }
        }
        warnings.extend(spec.notes.iter().cloned());
        let journal = match (&spec.journal, spec.directory.as_ref()) {
            (JournalMode::Off, _) | (_, None) => None,
            (JournalMode::Fresh, Some(directory)) => Some(ProgressJournal::create(
                directory,
                &JournalHeader {
                    source: descriptor.kind.to_string(),
                    source_seed: descriptor.seed,
                    permutation_seed: self.permutation_seed,
                    workers: self.workers,
                    vertices: descriptor.vertices.clone(),
                    sink: spec.label.to_string(),
                },
            )?),
            (JournalMode::Append, Some(directory)) => {
                Some(ProgressJournal::open_for_append(directory)?)
            }
        };
        let permutation = self
            .permutation_seed
            .map(|seed| FeistelPermutation::new(vertices, seed));

        // A failed attempt can discard a *local* degree vector unfolded, but
        // partial counts in the run-wide shared atomic vector cannot be
        // taken back — so a run that may retry or quarantine must count
        // locally, trading the budget for rollback safety.
        let fault_tolerant = self.retry.max_retries > 0 || self.quarantine;
        let mut histogram_budget = self.max_histogram_bytes;
        if fault_tolerant && would_share(vertices, self.workers, histogram_budget) {
            histogram_budget = u64::MAX;
            warnings.push(
                "fault-tolerant run: counting degrees per worker (the shared atomic \
                 histogram cannot roll back a failed attempt), exceeding \
                 max_histogram_bytes"
                    .to_string(),
            );
        }

        // The per-vertex degree vectors of every worker merge into one, so
        // all workers must count in the same label space.  A fresh run
        // counts source labels (cheap, local); a resumed run's skipped
        // shards can only replay *delivered* (possibly permuted) labels, so
        // its regenerating workers count delivered labels too.  Either space
        // yields the identical histogram — the permutation is a bijection —
        // which is exactly why a resumed report equals an uninterrupted one.
        let builtins_on_delivered = spec.expect.is_some();

        // Wall-clock time is reported to operators in RunStats only; it
        // never feeds the edge stream, which stays (seed, index)-derived.
        #[allow(clippy::disallowed_methods)]
        // lint:allow(no-ambient-time) -- operator-facing run timing only; the edge stream never reads the clock
        let started = Instant::now();
        let engine = MetricsEngine::new(&self.metrics, vertices, self.workers, histogram_budget);
        let skips: Vec<Mutex<Option<SkipShard<K::Output>>>> =
            skips.into_iter().map(Mutex::new).collect();
        let worker_results: Vec<Result<WorkerOutcome<K::Output>, CoreError>> = (0..self.workers)
            .into_par_iter()
            .map(|worker| {
                let taken = skips
                    .get(worker)
                    // lint:allow(no-expect) -- a poisoned skip-slot mutex means a sibling worker already panicked; rayon surfaces that panic
                    .and_then(|slot| slot.lock().expect("skip slot poisoned").take());
                if let Some(skip) = taken {
                    // The shard already exists and its checksum verified:
                    // stream it back through the metrics engine (verifying
                    // again as it streams) instead of regenerating it, so
                    // the report covers the whole graph.
                    let mut metrics = engine.worker();
                    let mut chunk = EdgeChunk::new(self.chunk_capacity);
                    let mut observe = |edges: &[(u64, u64)]| -> Result<(), SparseError> {
                        // The shard holds *delivered* (possibly permuted)
                        // labels; the built-in metrics are invariant under
                        // the bijection, so observing them here reproduces
                        // the uninterrupted run's report exactly.
                        metrics.observe_source(edges);
                        metrics.observe_delivered(edges);
                        Ok(())
                    };
                    let delivered = match skip.format {
                        BlockFormat::Tsv => stream_tsv_shard(
                            &skip.path,
                            vertices,
                            Some(skip.record.checksum),
                            &mut chunk,
                            &mut observe,
                        ),
                        BlockFormat::Binary | BlockFormat::Compressed => {
                            stream_binary_shard(&skip.path, vertices, &mut chunk, &mut observe)
                        }
                    }
                    .map_err(CoreError::Sparse)?;
                    metrics.finish();
                    return Ok(WorkerOutcome::Done {
                        output: skip.output,
                        delivered,
                        record: Some(skip.record),
                    });
                }

                let mut attempts = 0u32;
                loop {
                    attempts += 1;
                    let attempt = || -> Result<(K::Output, u64, Option<u64>), CoreError> {
                        let mut sink = make_sink(worker).map_err(CoreError::Sparse)?;
                        let mut metrics = engine.worker();
                        let mut chunk = EdgeChunk::new(self.chunk_capacity);
                        // The permutation stage's scratch buffers, reused
                        // across chunks: the only per-worker state the stage
                        // needs.
                        let mut relabelled: Vec<(u64, u64)> = Vec::new();
                        let mut walking: Vec<u32> = Vec::new();
                        let streamed = source_run.stream_worker::<SparseError, _>(
                            worker,
                            &mut chunk,
                            |edges| {
                                // The built-in degree metrics are invariant
                                // under the vertex bijection, so a fresh run
                                // feeds them the source's labels (cheap,
                                // local); custom metrics and the sink see
                                // exactly the delivered (relabelled) stream.
                                let out: &[(u64, u64)] = match permutation.as_ref() {
                                    Some(perm) => {
                                        perm.apply_edges_into(edges, &mut relabelled, &mut walking);
                                        &relabelled
                                    }
                                    None => edges,
                                };
                                metrics.observe_source(if builtins_on_delivered {
                                    out
                                } else {
                                    edges
                                });
                                metrics.observe_delivered(out);
                                sink.consume(out)
                            },
                        );
                        let delivered = match streamed {
                            Ok(delivered) => delivered,
                            Err(e) => {
                                // Dropping `metrics` unfolded discards the
                                // attempt's partial counts; abandoning the
                                // sink removes its staging file silently.
                                sink.abandon();
                                return Err(CoreError::Sparse(e));
                            }
                        };
                        // finish_with_checksum() seals trailing sink state
                        // (a partial compression frame, a patched header)
                        // before reporting the checksum, so the journal
                        // record always matches the finished bytes on disk.
                        let (output, checksum) =
                            sink.finish_with_checksum().map_err(CoreError::Sparse)?;
                        metrics.finish();
                        Ok((output, delivered, checksum))
                    };
                    match attempt() {
                        Ok((output, delivered, checksum)) => {
                            // Journal the completion only now, *after* the
                            // atomic rename: a record always points at a
                            // fully-renamed, checksummed shard.
                            let record = match (journal.as_ref(), checksum) {
                                (Some(journal), Some(checksum)) => {
                                    let record = ShardRecord {
                                        worker,
                                        file: shard_file_name(&spec.outputs[worker]),
                                        edges: delivered,
                                        checksum,
                                    };
                                    journal.record_shard(&record)?;
                                    Some(record)
                                }
                                _ => None,
                            };
                            return Ok(WorkerOutcome::Done {
                                output,
                                delivered,
                                record,
                            });
                        }
                        Err(error) => {
                            if attempts <= self.retry.max_retries {
                                std::thread::sleep(self.retry.backoff(attempts - 1));
                                continue;
                            }
                            if self.quarantine {
                                return Ok(WorkerOutcome::Quarantined(ShardFailure {
                                    worker,
                                    path: spec.outputs.get(worker).cloned(),
                                    error,
                                    attempts,
                                }));
                            }
                            return Err(error);
                        }
                    }
                }
            })
            .collect();
        let elapsed = started.elapsed();

        let mut outputs = Vec::with_capacity(self.workers);
        let mut delivered = Vec::with_capacity(self.workers);
        let mut failures = Vec::new();
        let mut shard_records = Vec::new();
        for result in worker_results {
            match result? {
                WorkerOutcome::Done {
                    output,
                    delivered: count,
                    record,
                } => {
                    outputs.push(output);
                    delivered.push(count);
                    if let Some(record) = record {
                        shard_records.push(record);
                    }
                }
                WorkerOutcome::Quarantined(failure) => {
                    delivered.push(0);
                    failures.push(failure);
                }
            }
        }
        let (measured, metrics) = engine.finalize(delivered.clone());
        let mut stats = GenerationStats::new(delivered, elapsed);
        for warning in warnings {
            stats.warn(warning);
        }
        for failure in &failures {
            stats.warn(format!(
                "worker {} quarantined after {} attempt(s): {}",
                failure.worker, failure.attempts, failure.error
            ));
        }
        debug_assert_eq!(stats.total_edges, metrics.edges);

        let predicted = source_run.predicted_properties();
        let validation = source_run.validate(&measured);

        let manifest = RunManifest {
            source: descriptor.kind.to_string(),
            source_seed: descriptor.seed,
            permutation_seed: self.permutation_seed,
            star_points: descriptor.star_points,
            self_loop: descriptor.self_loop,
            vertices: descriptor.vertices,
            predicted_edges: descriptor.predicted_edges,
            workers: self.workers,
            split_index: descriptor.split_index,
            max_c_edges: descriptor.max_c_edges,
            max_b_edges: descriptor.max_b_edges,
            chunk_capacity: self.chunk_capacity,
            max_histogram_bytes: self.max_histogram_bytes,
            self_loop_policy: descriptor.self_loop_policy,
            sink: spec.label.to_string(),
            directory: spec.directory.as_ref().map(|d| d.display().to_string()),
            outputs: spec
                .outputs
                .iter()
                .map(|p| p.display().to_string())
                .collect(),
            edges_per_worker: stats.edges_per_worker.clone(),
            total_edges: stats.total_edges,
            seconds: stats.seconds,
            exact_match: validation.is_exact_match(),
            warnings: stats.warnings.clone(),
            shards: shard_records,
            metrics: metrics.records(),
        };
        let files = spec.directory.as_ref().map(|directory| {
            manifest
                .write_to(&directory.join(MANIFEST_FILE_NAME))
                .map(|()| BlockFileSet {
                    directory: directory.clone(),
                    files: spec.outputs.clone(),
                    vertices,
                    // lint:allow(no-expect) -- file-terminal specs always carry a format; the builder sets it when the terminal is chosen
                    format: spec.format.expect("file sinks declare a format"),
                })
        });
        let files = match files {
            Some(result) => Some(result.map_err(CoreError::Sparse)?),
            None => None,
        };

        Ok(RunReport {
            outputs,
            vertices,
            split: source_run.split_plan(),
            predicted,
            measured,
            metrics,
            stats,
            validation,
            failures,
            manifest,
            files,
        })
    }
}

/// Everything one worker hands back when its turn ends: a finished (or
/// skipped-as-verified) shard, or the quarantine record of a shard the run
/// gave up on.
enum WorkerOutcome<O> {
    Done {
        output: O,
        delivered: u64,
        record: Option<ShardRecord>,
    },
    Quarantined(ShardFailure),
}

/// A shard a resume verified complete on disk: stream it back through the
/// metrics instead of regenerating it.
struct SkipShard<O> {
    output: O,
    path: PathBuf,
    format: BlockFormat,
    record: ShardRecord,
}

/// Whether (and how) a run writes the progress journal.
enum JournalMode {
    /// Non-file terminals: nothing to journal.
    Off,
    /// A new file run: truncate any previous journal and write the header.
    Fresh,
    /// A resumed run: append to the interrupted run's journal.
    Append,
}

/// The journal header's run identity a resume asks the engine to enforce
/// against the *prepared* source (kind and seed are only known after
/// `prepare`).
struct ResumeExpectation {
    source: String,
    source_seed: Option<u64>,
}

/// How a terminal labels itself in the manifest and, for file terminals,
/// where its outputs live.
struct SinkSpec {
    label: &'static str,
    directory: Option<PathBuf>,
    outputs: Vec<PathBuf>,
    format: Option<BlockFormat>,
    journal: JournalMode,
    expect: Option<ResumeExpectation>,
    notes: Vec<String>,
}

impl SinkSpec {
    fn plain(label: &'static str) -> Self {
        SinkSpec {
            label,
            directory: None,
            outputs: Vec::new(),
            format: None,
            journal: JournalMode::Off,
            expect: None,
            notes: Vec::new(),
        }
    }

    fn files(
        label: &'static str,
        directory: &Path,
        files: &[PathBuf],
        format: BlockFormat,
    ) -> Self {
        SinkSpec {
            label,
            directory: Some(directory.to_path_buf()),
            outputs: files.to_vec(),
            format: Some(format),
            journal: JournalMode::Fresh,
            expect: None,
            notes: Vec::new(),
        }
    }
}

/// A seed as the mismatch error prints it.
fn fmt_seed(seed: Option<u64>) -> String {
    match seed {
        Some(seed) => seed.to_string(),
        None => "none".to_string(),
    }
}

/// The file name a shard record stores (relative, so a relocated run
/// directory stays resumable).
fn shard_file_name(path: &Path) -> String {
    path.file_name()
        .map(|name| name.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Delete every `*.tmp` staging file in `directory` — the leftovers of
/// sinks that were mid-write when an interrupted run died.  Returns how
/// many were removed.
fn remove_orphaned_tmp_files(directory: &Path) -> Result<usize, CoreError> {
    let to_sparse = |e: std::io::Error| {
        CoreError::Sparse(SparseError::with_path(
            directory,
            SparseError::Io(e.to_string()),
        ))
    };
    let mut removed = 0;
    for entry in std::fs::read_dir(directory).map_err(to_sparse)? {
        let path = entry.map_err(to_sparse)?.path();
        if path.extension().is_some_and(|extension| extension == "tmp") && path.is_file() {
            std::fs::remove_file(&path).map_err(to_sparse)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The result of one pipeline run: per-worker sink outputs plus everything
/// the paper's validation loop needs.
#[derive(Debug, Clone)]
#[must_use = "a run report carries the validation verdict and the sink outputs"]
pub struct RunReport<O> {
    /// Per-worker sink outputs, in worker order.
    pub outputs: Vec<O>,
    /// Number of rows/columns of the generated graph.
    pub vertices: u64,
    /// The split plan the run executed, for sources that have one (`None`
    /// for non-Kronecker sources).
    pub split: Option<SplitPlan>,
    /// Exact predicted properties, for sources that know them ahead of
    /// generation (`None` for sampling sources — R-MAT properties are
    /// measured-only, which is the paper's point).
    pub predicted: Option<GraphProperties>,
    /// Properties measured from the merged streaming degree histograms
    /// (triangles are never measured in streaming mode).
    pub measured: GraphProperties,
    /// The typed result sheet of the streaming-metrics engine: counts, max
    /// degree, degree histogram, per-worker balance, power-law fit, and any
    /// custom metric values.
    pub metrics: MetricsReport,
    /// Timing and balance statistics.
    pub stats: GenerationStats,
    /// The streamed measured-equals-predicted comparison (the paper's
    /// Figure 4), over every field the source predicts exactly.
    pub validation: ValidationReport,
    /// Shards a quarantining run ([`Pipeline::quarantine_failures`]) gave up
    /// on after exhausting retries, in worker order.  Empty for complete
    /// runs; a non-quarantining run fails instead of recording anything
    /// here.  [`Pipeline::resume`] regenerates exactly these shards.
    pub failures: Vec<ShardFailure>,
    /// The run's reproducibility record; file terminals also write it as
    /// `manifest.json` next to the shards.
    pub manifest: RunManifest,
    /// The shard files of a file-writing terminal, if any.
    pub files: Option<BlockFileSet>,
}

impl<O> RunReport<O> {
    /// Total number of edges delivered to the sinks.
    pub fn edge_count(&self) -> u64 {
        self.stats.total_edges
    }

    /// Whether the streamed validation matched the prediction exactly.
    pub fn is_valid(&self) -> bool {
        self.validation.is_exact_match()
    }

    /// Whether every shard completed — `false` exactly when a quarantining
    /// run recorded [`failures`](RunReport::failures).
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

impl RunReport<CooMatrix<u64>> {
    /// Assemble the per-worker COO blocks into the full adjacency matrix
    /// (tests and small graphs only).
    pub fn assemble(&self) -> CooMatrix<u64> {
        let mut all = CooMatrix::new(self.vertices, self.vertices);
        for block in &self.outputs {
            all.append(block)
                // lint:allow(no-expect) -- every block is created with the same full-graph dimensions in this method
                .expect("blocks share the full graph dimensions");
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_FILE_NAME;
    use crate::sink::{DegreeOnlySink, FilterMapSink, TeeSink};
    use kron_bignum::BigUint;
    use kron_core::validate::measure_from_histogram;
    use kron_core::SelfLoop;
    use kron_sparse::DegreeAccumulator;

    fn pipeline(design: &KroneckerDesign, workers: usize) -> DesignPipeline<'_> {
        Pipeline::for_design(design)
            .workers(workers)
            .max_c_edges(100_000)
            .chunk_capacity(512)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_pipeline_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn default_worker_count_is_clamped_to_the_host() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
        let available = host_parallelism();
        let expected = DriverConfig::DEFAULT_WORKERS.min(available.max(1));

        let report = Pipeline::for_design(&design).count().unwrap();
        assert_eq!(report.stats.workers, expected);
        let clamp_warned = report
            .stats
            .warnings
            .iter()
            .any(|w| w.contains("available parallelism"));
        assert_eq!(
            clamp_warned,
            expected < DriverConfig::DEFAULT_WORKERS,
            "the clamp warning must appear exactly when the clamp engaged: {:?}",
            report.stats.warnings
        );

        // An explicit worker count is never clamped, however oversubscribed,
        // and never warns.
        let oversubscribed = DriverConfig::DEFAULT_WORKERS + 3;
        let report = Pipeline::for_design(&design)
            .workers(oversubscribed)
            .count()
            .unwrap();
        assert_eq!(report.stats.workers, oversubscribed);
        assert!(!report
            .stats
            .warnings
            .iter()
            .any(|w| w.contains("available parallelism")));
    }

    #[test]
    fn count_validates_every_self_loop_variant() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let report = pipeline(&design, 4).split_index(2).count().unwrap();
            assert!(
                report.is_valid(),
                "pipeline validation failed for {self_loop:?}: {:?}",
                report.validation.failures()
            );
            assert_eq!(BigUint::from(report.edge_count()), design.edges());
            assert_eq!(report.manifest.sink, "counting");
            assert_eq!(report.manifest.source, "kronecker");
            assert_eq!(report.manifest.source_seed, None);
            assert_eq!(report.manifest.permutation_seed, None);
            assert_eq!(report.manifest.total_edges, report.edge_count());
            assert!(report.files.is_none());
        }
    }

    #[test]
    fn automatic_split_falls_back_with_a_warning() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let report = pipeline(&design, 1_000).count().unwrap();
        assert_eq!(BigUint::from(report.edge_count()), design.edges());
        assert_eq!(report.stats.warnings.len(), 1, "fallback must warn");
        assert!(report.stats.warnings[0].contains("balance guarantee"));
        assert_eq!(report.manifest.warnings, report.stats.warnings);

        let healthy = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        let report = pipeline(&healthy, 4).count().unwrap();
        assert!(report.stats.warnings.is_empty());
    }

    #[test]
    fn write_binary_emits_a_manifest_that_matches_the_run() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("manifest_binary");
        let report = pipeline(&design, 3)
            .split_index(1)
            .write_binary(&dir)
            .unwrap();
        assert!(report.is_valid());

        let files = report.files.as_ref().expect("binary run produces files");
        assert_eq!(files.files.len(), 3);
        assert_eq!(files.format, BlockFormat::Binary);
        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);

        let on_disk = RunManifest::read_from(&dir.join(MANIFEST_FILE_NAME)).unwrap();
        assert_eq!(on_disk, report.manifest);
        assert_eq!(on_disk.sink, "binary");
        assert_eq!(on_disk.source, "kronecker");
        assert_eq!(on_disk.star_points, vec![3, 4, 5]);
        assert_eq!(on_disk.self_loop, "Centre");
        assert_eq!(on_disk.workers, 3);
        assert_eq!(on_disk.split_index, 1);
        assert_eq!(
            on_disk.edges_per_worker.iter().sum::<u64>(),
            report.edge_count()
        );
        assert_eq!(on_disk.outputs.len(), 3);
        assert!(on_disk.exact_match);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_tsv_round_trips_and_emits_a_manifest() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Leaf).unwrap();
        let dir = temp_dir("manifest_tsv");
        let report = pipeline(&design, 2).split_index(2).write_tsv(&dir).unwrap();
        assert!(report.is_valid());
        let files = report.files.as_ref().expect("tsv run produces files");
        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);
        assert!(dir.join(MANIFEST_FILE_NAME).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_product_keeps_loops_and_validates_raw_counts() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let report = pipeline(&design, 3)
            .split_index(1)
            .raw_product()
            .collect_coo()
            .unwrap();
        assert!(
            report.is_valid(),
            "raw validation failed: {:?}",
            report.validation.failures()
        );
        assert_eq!(
            BigUint::from(report.edge_count()),
            design.nnz_with_loops(),
            "raw product keeps every self-loop"
        );
        assert_eq!(report.measured.self_loops, design.product_self_loops());
        assert_eq!(report.manifest.self_loop_policy, "keep_raw");
        assert_eq!(report.manifest.source, "kronecker_raw");
        // The manifest's predicted count is the one the run validated
        // against — the raw product's, so predicted == delivered.
        assert_eq!(
            report.manifest.predicted_edges,
            design.nnz_with_loops().to_string()
        );
        assert_eq!(
            report.manifest.predicted_edges,
            report.manifest.total_edges.to_string()
        );

        let mut raw = report.assemble();
        let mut expected = design.realize_raw(1_000_000).unwrap();
        raw.sort();
        expected.sort();
        assert_eq!(raw, expected);
    }

    #[test]
    fn custom_sink_combinators_run_through_the_pipeline() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let vertices = design.vertices().to_u64().unwrap();
        // Tee a degree-only validator with a filtered counter that keeps
        // only upper-triangle edges.
        let report = pipeline(&design, 2)
            .split_index(1)
            .into_sinks(|_| {
                Ok(TeeSink::new(
                    DegreeOnlySink::new(vertices),
                    FilterMapSink::new(CountingSink::new(), |row, col| {
                        (row < col).then_some((row, col))
                    }),
                ))
            })
            .unwrap();
        assert!(report.is_valid());
        assert_eq!(report.manifest.sink, "custom");
        let mut merged: Option<DegreeAccumulator> = None;
        let mut upper = 0;
        for (degrees, count) in &report.outputs {
            upper += count;
            match merged.as_mut() {
                Some(m) => m.merge(degrees),
                None => merged = Some(degrees.clone()),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.edge_count(), report.edge_count());
        // The designed graph is loop-free and symmetric: upper-triangle
        // edges are exactly half.
        assert_eq!(upper * 2, report.edge_count());
        let streamed = measure_from_histogram(
            report.vertices,
            &merged.row_histogram(),
            merged.self_loop_count(),
        );
        assert_eq!(
            streamed.degree_distribution,
            report.measured.degree_distribution
        );
    }

    #[test]
    fn metrics_report_matches_the_streamed_measurement() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let report = pipeline(&design, 4).split_index(2).count().unwrap();
        let metrics = &report.metrics;
        assert_eq!(metrics.vertices, report.vertices);
        assert_eq!(metrics.edges, report.edge_count());
        assert_eq!(metrics.self_loops, 0);
        assert_eq!(
            metrics.max_degree.to_string(),
            report.measured.max_degree().to_string()
        );
        assert_eq!(metrics.distinct_degrees, report.measured.distinct_degrees());
        assert_eq!(
            metrics.degree_histogram.values().sum::<u64>().to_string(),
            report
                .measured
                .degree_distribution
                .total_vertices()
                .to_string()
        );
        assert_eq!(
            metrics.balance.edges_per_worker,
            report.stats.edges_per_worker
        );
        // A plain star product lies exactly on the perfect n(d) = c/d law:
        // slope 1 from the extremes, zero residual against the ideal curve.
        let plain = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        let plain_report = pipeline(&plain, 4).split_index(2).count().unwrap();
        let plain_fit = plain_report
            .metrics
            .power_law
            .as_ref()
            .expect("a star product pins a slope");
        assert!((plain_fit.alpha - 1.0).abs() < 1e-12, "{plain_fit:?}");
        assert!(plain_fit.residual_vs_ideal < 1e-9, "{plain_fit:?}");
        // The triangle-control design is off the ideal line and the fit's
        // goodness says by how much.
        let fit = metrics
            .power_law
            .as_ref()
            .expect("distribution pins a slope");
        assert!(fit.residual_vs_ideal > 0.0, "{fit:?}");
        // The manifest records the same numbers.
        let record = |name: &str| {
            report
                .manifest
                .metrics
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("manifest lacks metric {name}"))
                .value
                .clone()
        };
        assert_eq!(record("edges"), report.edge_count().to_string());
        assert_eq!(record("max_degree"), metrics.max_degree.to_string());
        assert_eq!(record("power_law_alpha"), format!("{:?}", fit.alpha));
    }

    #[test]
    fn custom_metrics_run_per_worker_and_land_in_report_and_manifest() {
        use crate::metrics::PredicateCountMetric;
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let report = pipeline(&design, 3)
            .split_index(1)
            .with_metric(PredicateCountMetric::new("upper_triangle", |r, c| r < c))
            .with_metric(PredicateCountMetric::new("loops", |r, c| r == c))
            .count()
            .unwrap();
        // The designed graph is loop-free and symmetric: upper-triangle
        // edges are exactly half.
        assert_eq!(
            report.metrics.custom_value("upper_triangle"),
            Some((report.edge_count() / 2).to_string().as_str())
        );
        assert_eq!(report.metrics.custom_value("loops"), Some("0"));
        assert!(report
            .manifest
            .metrics
            .iter()
            .any(|r| r.name == "upper_triangle"));
        // Manifests carrying metric records still round-trip exactly.
        assert_eq!(
            RunManifest::from_json(&report.manifest.to_json()).unwrap(),
            report.manifest
        );
    }

    #[test]
    fn custom_metrics_observe_the_delivered_permuted_stream() {
        use crate::metrics::PredicateCountMetric;
        // A metric counting edges that touch vertex 0 changes under
        // relabelling — proof that custom metrics see the sink's stream,
        // while the built-in (invariant) metrics stay identical.
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let touches_zero = || PredicateCountMetric::new("touches_zero", |r, c| r == 0 || c == 0);
        let plain = pipeline(&design, 2)
            .split_index(1)
            .with_metric(touches_zero())
            .count()
            .unwrap();
        let permuted = pipeline(&design, 2)
            .split_index(1)
            .with_metric(touches_zero())
            .permute_vertices(0xFEED)
            .count()
            .unwrap();
        assert_eq!(plain.metrics.edges, permuted.metrics.edges);
        assert_eq!(
            plain.metrics.degree_histogram,
            permuted.metrics.degree_histogram
        );
        assert_eq!(plain.metrics.max_degree, permuted.metrics.max_degree);
        // Vertex 0 maps elsewhere under the bijection, so the new vertex 0
        // has a different (almost surely smaller) incident count.
        let plain_touches: u64 = plain
            .metrics
            .custom_value("touches_zero")
            .unwrap()
            .parse()
            .unwrap();
        let permuted_touches: u64 = permuted
            .metrics
            .custom_value("touches_zero")
            .unwrap()
            .parse()
            .unwrap();
        assert_ne!(plain_touches, permuted_touches);
    }

    #[test]
    fn zero_workers_rejected_with_typed_error() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(matches!(
            pipeline(&design, 0).count(),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn chunk_capacity_does_not_change_the_graph() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        for chunk_capacity in [1usize, 7, 4096] {
            let report = pipeline(&design, 3)
                .split_index(1)
                .chunk_capacity(chunk_capacity)
                .count()
                .unwrap();
            assert_eq!(BigUint::from(report.edge_count()), design.edges());
            assert!(report.is_valid());
            assert_eq!(report.measured.self_loops, BigUint::zero());
        }
    }

    #[test]
    fn shared_and_local_histogram_modes_measure_identically() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let local = pipeline(&design, 4).split_index(2).count().unwrap();
        let shared = pipeline(&design, 4)
            .split_index(2)
            .max_histogram_bytes(0)
            .count()
            .unwrap();
        assert_eq!(local.measured, shared.measured);
        assert_eq!(local.edge_count(), shared.edge_count());
        assert!(shared.is_valid());
    }

    #[test]
    fn permuted_run_still_validates_and_is_a_relabelling() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let plain = pipeline(&design, 3).split_index(1).collect_coo().unwrap();
        let permuted = pipeline(&design, 3)
            .split_index(1)
            .permute_vertices(0xBEEF)
            .collect_coo()
            .unwrap();

        // The permutation is degree-preserving, so the streamed validation
        // still matches the exact prediction field by field.
        assert!(
            permuted.is_valid(),
            "permuted validation failed: {:?}",
            permuted.validation.failures()
        );
        assert_eq!(permuted.measured, plain.measured);
        assert_eq!(permuted.manifest.permutation_seed, Some(0xBEEF));

        // And the permuted edge set is exactly the plain edge set mapped
        // through the Feistel bijection.
        let perm = FeistelPermutation::new(plain.vertices, 0xBEEF);
        let mut expected: Vec<(u64, u64)> = plain
            .assemble()
            .iter()
            .map(|(r, c, _)| perm.apply_edge((r, c)))
            .collect();
        let mut actual: Vec<(u64, u64)> =
            permuted.assemble().iter().map(|(r, c, _)| (r, c)).collect();
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(actual, expected);
        assert_ne!(
            {
                let mut plain_edges: Vec<(u64, u64)> =
                    plain.assemble().iter().map(|(r, c, _)| (r, c)).collect();
                plain_edges.sort_unstable();
                plain_edges
            },
            actual,
            "the permutation must actually move labels"
        );
    }

    #[test]
    fn permutation_seed_round_trips_through_the_manifest() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let dir = temp_dir("permuted_manifest");
        let report = pipeline(&design, 2)
            .split_index(1)
            .permute_vertices(99)
            .write_binary(&dir)
            .unwrap();
        let on_disk = RunManifest::read_from(&dir.join(MANIFEST_FILE_NAME)).unwrap();
        assert_eq!(on_disk, report.manifest);
        assert_eq!(on_disk.permutation_seed, Some(99));
        assert_eq!(on_disk.source, "kronecker");
        std::fs::remove_dir_all(&dir).ok();
    }
}
