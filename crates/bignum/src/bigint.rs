//! Signed arbitrary-precision integers.
//!
//! [`BigInt`] wraps a [`BigUint`] magnitude with a sign.  It exists for the
//! intermediate values in the paper's triangle-correction formulas (e.g.
//! `N_tri(A) - m_A/2 + 1/3`), which subtract potentially-larger terms before
//! the result is shown to be a non-negative integer.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::biguint::{BigUint, ParseBigUintError};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer (sign + magnitude).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            magnitude: BigUint::one(),
        }
    }

    /// Construct from a sign and magnitude, normalising zero.
    pub fn from_sign_magnitude(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            match sign {
                Sign::Zero => BigInt::zero(),
                s => BigInt { sign: s, magnitude },
            }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value as a [`BigUint`].
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Convert to a [`BigUint`] if non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.magnitude.clone()),
        }
    }

    /// Checked conversion to `i128`.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => {
                if mag == (i128::MAX as u128) + 1 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(mag).ok().map(|v| -v)
                }
            }
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mag = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -mag,
            _ => mag,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_magnitude(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.magnitude.clone(),
        )
    }

    /// Exact quotient and remainder (truncated division, remainder takes the
    /// dividend's sign).
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q_mag, r_mag) = self.magnitude.div_rem(&divisor.magnitude);
        let q_sign = match (self.sign, divisor.sign) {
            (Sign::Zero, _) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        (
            BigInt::from_sign_magnitude(q_sign, q_mag),
            BigInt::from_sign_magnitude(self.sign, r_mag),
        )
    }
}

impl From<BigUint> for BigInt {
    fn from(value: BigUint) -> Self {
        BigInt::from_sign_magnitude(Sign::Positive, value)
    }
}

impl From<&BigUint> for BigInt {
    fn from(value: &BigUint) -> Self {
        BigInt::from_sign_magnitude(Sign::Positive, value.clone())
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {
        $(
            impl From<$t> for BigInt {
                fn from(value: $t) -> Self {
                    let sign = match value.cmp(&0) {
                        Ordering::Less => Sign::Negative,
                        Ordering::Equal => Sign::Zero,
                        Ordering::Greater => Sign::Positive,
                    };
                    BigInt::from_sign_magnitude(sign, BigUint::from(value.unsigned_abs() as u128))
                }
            }
        )*
    };
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned_int {
    ($($t:ty),*) => {
        $(
            impl From<$t> for BigInt {
                fn from(value: $t) -> Self {
                    BigInt::from(BigUint::from(value))
                }
            }
        )*
    };
}

impl_from_unsigned_int!(u8, u16, u32, u64, u128, usize);

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            magnitude: self.magnitude,
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_magnitude(a, &self.magnitude + &rhs.magnitude),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match self.magnitude.cmp(&rhs.magnitude) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_sign_magnitude(self.sign, &self.magnitude - &rhs.magnitude)
                    }
                    Ordering::Less => {
                        BigInt::from_sign_magnitude(rhs.sign, &rhs.magnitude - &self.magnitude)
                    }
                }
            }
        }
    }
}

impl AddAssign for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = &*self + &rhs;
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::from_sign_magnitude(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
            },
            non_eq => non_eq,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Negative => write!(f, "-{}", self.magnitude),
            _ => write!(f, "{}", self.magnitude),
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('-') {
            let mag: BigUint = rest.parse()?;
            Ok(BigInt::from_sign_magnitude(Sign::Negative, mag))
        } else {
            let stripped = s.strip_prefix('+').unwrap_or(s);
            let mag: BigUint = stripped.parse()?;
            Ok(BigInt::from_sign_magnitude(Sign::Positive, mag))
        }
    }
}

impl Serialize for BigInt {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for BigInt {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalisation() {
        assert_eq!(
            BigInt::from_sign_magnitude(Sign::Negative, BigUint::zero()),
            BigInt::zero()
        );
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5).sign(), Sign::Positive);
        assert_eq!(int(-5).sign(), Sign::Negative);
    }

    #[test]
    fn addition_of_mixed_signs() {
        assert_eq!(int(5) + int(-3), int(2));
        assert_eq!(int(3) + int(-5), int(-2));
        assert_eq!(int(-3) + int(-5), int(-8));
        assert_eq!(int(5) + int(-5), int(0));
        assert_eq!(int(0) + int(-5), int(-5));
    }

    #[test]
    fn subtraction() {
        assert_eq!(int(5) - int(8), int(-3));
        assert_eq!(int(-5) - int(-8), int(3));
        assert_eq!(int(5) - int(0), int(5));
    }

    #[test]
    fn multiplication_sign_rules() {
        assert_eq!(int(4) * int(-3), int(-12));
        assert_eq!(int(-4) * int(-3), int(12));
        assert_eq!(int(0) * int(-3), int(0));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-3));
        assert!(int(-3) < int(0));
        assert!(int(0) < int(7));
        assert!(int(7) < int(8));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(int(-12345).to_string(), "-12345");
        assert_eq!("-12345".parse::<BigInt>().unwrap(), int(-12345));
        assert_eq!("+77".parse::<BigInt>().unwrap(), int(77));
        assert_eq!("0".parse::<BigInt>().unwrap(), BigInt::zero());
        assert_eq!("-0".parse::<BigInt>().unwrap(), BigInt::zero());
    }

    #[test]
    fn conversions() {
        assert_eq!(int(-42).to_i128(), Some(-42));
        assert_eq!(int(42).to_biguint(), Some(BigUint::from(42u64)));
        assert_eq!(int(-42).to_biguint(), None);
        assert_eq!(int(i128::MIN).to_i128(), Some(i128::MIN));
        assert_eq!(int(-42).to_f64(), -42.0);
        assert_eq!(int(-42).abs(), int(42));
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        let (q, r) = int(7).div_rem(&int(2));
        assert_eq!((q, r), (int(3), int(1)));
        let (q, r) = int(-7).div_rem(&int(2));
        assert_eq!((q, r), (int(-3), int(-1)));
        let (q, r) = int(7).div_rem(&int(-2));
        assert_eq!((q, r), (int(-3), int(1)));
        let (q, r) = int(-7).div_rem(&int(-2));
        assert_eq!((q, r), (int(3), int(-1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bigint() -> impl Strategy<Value = BigInt> {
        any::<i128>().prop_map(BigInt::from)
    }

    proptest! {
        #[test]
        fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let expected = BigInt::from(a as i128 + b as i128);
            prop_assert_eq!(BigInt::from(a) + BigInt::from(b), expected);
        }

        #[test]
        fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let expected = BigInt::from(a as i128 * b as i128);
            prop_assert_eq!(BigInt::from(a) * BigInt::from(b), expected);
        }

        #[test]
        fn neg_involution(a in arb_bigint()) {
            prop_assert_eq!(-(-a.clone()), a);
        }

        #[test]
        fn sub_self_is_zero(a in arb_bigint()) {
            prop_assert_eq!(a.clone() - a, BigInt::zero());
        }

        #[test]
        fn ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
            prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
        }

        #[test]
        fn div_rem_reconstructs(a in any::<i128>(), b in any::<i128>()) {
            prop_assume!(b != 0);
            let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
            prop_assert_eq!(q * BigInt::from(b) + r, BigInt::from(a));
        }
    }
}
