//@ path: crates/core/src/under_test.rs
use std::time::{Duration, Instant};

// Accepting a clock reading from the caller keeps the library replayable.
pub fn elapsed_since(start: Instant, now: Instant) -> Duration {
    now.duration_since(start)
}
