//! Streaming generation.
//!
//! Materialising every block is convenient for validation but unnecessary
//! when edges are being piped straight into a consumer (a file, a network
//! socket, a streaming analytic).  These helpers generate a worker's edges
//! one at a time with no per-block allocation, which is also the fastest way
//! to measure raw generation throughput (the paper's Figure 3 metric).

use rayon::prelude::*;

use kron_core::{CoreError, KroneckerDesign};
use kron_sparse::CooMatrix;

use crate::partition::{csc_ordered_triples, Partition};

/// Stream the edges of worker `p`'s block — the Kronecker product of its
/// `B`-triple slice with `C` — calling `sink` once per edge with global
/// `(row, col)` indices.  Returns the number of edges produced.
pub fn stream_block_edges<F: FnMut(u64, u64)>(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    mut sink: F,
) -> u64 {
    let mut produced = 0u64;
    for &(rb, cb, _) in b_triples {
        for (rc, cc, _) in c.iter() {
            sink(rb * c.nrows() + rc, cb * c.ncols() + cc);
            produced += 1;
        }
    }
    produced
}

/// Generate the whole design in streaming mode across `workers` rayon tasks,
/// counting edges instead of storing them.  Returns the total edge count of
/// the *raw* product (before self-loop removal), which is the quantity the
/// throughput figure reports.
pub fn count_edges_streaming(
    design: &KroneckerDesign,
    split_index: usize,
    workers: usize,
    max_factor_edges: u64,
) -> Result<u64, CoreError> {
    if workers == 0 {
        return Err(CoreError::DesignNotFound {
            message: "streaming generation needs at least one worker".into(),
        });
    }
    let (b_design, c_design) = design.split(split_index)?;
    let b = b_design.realize_raw(max_factor_edges)?;
    let c = c_design.realize_raw(max_factor_edges)?;
    let triples = csc_ordered_triples(&b);
    let partition = Partition::even(triples.len(), workers);
    let total: u64 = (0..workers)
        .into_par_iter()
        .map(|worker| stream_block_edges(&triples[partition.range(worker)], &c, |_, _| {}))
        .sum();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::SelfLoop;

    #[test]
    fn streamed_edges_match_materialised_block() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
        let (b_design, c_design) = design.split(2).unwrap();
        let b = b_design.realize_raw(10_000).unwrap();
        let c = c_design.realize_raw(10_000).unwrap();
        let triples = csc_ordered_triples(&b);

        let mut streamed: Vec<(u64, u64)> = Vec::new();
        let produced = stream_block_edges(&triples, &c, |r, col| streamed.push((r, col)));
        assert_eq!(produced as usize, streamed.len());

        let block = crate::block::GraphBlock::generate(0, &triples, &c, 120, 120);
        let mut materialised: Vec<(u64, u64)> =
            block.edges.iter().map(|(r, col, _)| (r, col)).collect();
        streamed.sort_unstable();
        materialised.sort_unstable();
        assert_eq!(streamed, materialised);
    }

    #[test]
    fn streaming_count_equals_raw_product_nnz() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let counted = count_edges_streaming(&design, 2, workers, 1_000_000).unwrap();
            assert_eq!(
                counted,
                design.nnz_with_loops().to_u64().unwrap(),
                "streaming edge count wrong with {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_rejects_zero_workers() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(count_edges_streaming(&design, 1, 0, 1_000).is_err());
    }
}
