//! Reductions: degree vectors, nnz-per-row/column, degree histograms.
//!
//! For an adjacency matrix the "degree" of vertex `i` used throughout the
//! paper is the number of stored entries in row `i` plus column `i` for a
//! directed interpretation, or simply the row count for the symmetric
//! matrices the star constituents produce.  These helpers operate on the
//! *pattern* (stored entries), matching the paper's `nnz`-based definitions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::semiring::Scalar;

/// Number of stored entries in each row of a COO matrix.
pub fn row_counts<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    let nrows = crate::addressable(m.nrows(), "row count vector must fit in memory");
    let mut counts = vec![0u64; nrows];
    for &r in m.row_indices() {
        counts[r as usize] += 1;
    }
    counts
}

/// Number of stored entries in each column of a COO matrix.
pub fn col_counts<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    let ncols = crate::addressable(m.ncols(), "column count vector must fit in memory");
    let mut counts = vec![0u64; ncols];
    for &c in m.col_indices() {
        counts[c as usize] += 1;
    }
    counts
}

/// Row-pattern degrees of a CSR matrix (`nnz` per row).
pub fn csr_row_degrees<T: Scalar>(m: &CsrMatrix<T>) -> Vec<u64> {
    (0..m.nrows()).map(|r| m.row_nnz(r) as u64).collect()
}

/// Undirected vertex degrees of a symmetric adjacency matrix in COO form:
/// the number of stored entries in the vertex's row.  For matrices that are
/// not symmetric use [`total_degrees`], which counts row + column entries.
pub fn symmetric_degrees<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    row_counts(m)
}

/// Total (in + out) pattern degree of each vertex of a square COO matrix.
pub fn total_degrees<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    assert!(m.is_square(), "total_degrees requires a square matrix");
    let n = crate::addressable(m.nrows(), "degree vector must fit in memory");
    let mut counts = vec![0u64; n];
    for (r, c, _) in m.iter() {
        counts[r as usize] += 1;
        if r != c {
            counts[c as usize] += 1;
        }
    }
    counts
}

/// Histogram of a degree vector: map from degree `d` to the number of
/// vertices with that degree.  Vertices of degree zero are included under
/// key `0` (the paper's generator guarantees there are none).
pub fn degree_histogram(degrees: &[u64]) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    for &d in degrees {
        *hist.entry(d).or_insert(0u64) += 1;
    }
    hist
}

/// Histogram of row-pattern degrees of a COO matrix.
pub fn degree_distribution<T: Scalar>(m: &CooMatrix<T>) -> BTreeMap<u64, u64> {
    let mut hist = degree_histogram(&row_counts(m));
    // Vertices with no stored entries at all still count as degree 0.
    let total_vertices: u64 = m.nrows();
    let seen: u64 = hist.values().sum();
    if total_vertices > seen {
        *hist.entry(0).or_insert(0) += total_vertices - seen;
    }
    // `degree_histogram(&row_counts)` already counts zero-degree rows, so the
    // adjustment above only matters if row_counts was truncated, which it is
    // not; keep the invariant explicit anyway.
    hist
}

/// Streaming degree accumulator: per-chunk row/column endpoint counting for
/// graphs that are never materialised.
///
/// A generation worker feeds every chunk of `(row, col)` edges it produces
/// through [`DegreeAccumulator::record`]; the accumulator maintains exact
/// per-vertex row and column endpoint counts (plus a diagonal tally) in
/// flat `u64` vectors, so its memory cost is `O(vertices)` regardless of how
/// many edges stream through it.  Per-worker accumulators are combined with
/// [`DegreeAccumulator::merge`], and [`DegreeAccumulator::row_histogram`]
/// produces the same degree histogram [`degree_distribution`] computes from a
/// materialised matrix — including the degree-zero bucket.
///
/// When only row degrees are needed — a square graph's degree distribution
/// is its row-endpoint histogram — [`DegreeAccumulator::rows_only`] skips
/// the column vector entirely, halving both the memory per accumulator and
/// the per-edge work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeAccumulator {
    ncols: u64,
    row_counts: Vec<u64>,
    col_counts: Option<Vec<u64>>,
    self_loops: u64,
    edges: u64,
}

impl DegreeAccumulator {
    /// Create an accumulator for a graph with the given dimensions,
    /// tracking both row and column endpoint counts.
    ///
    /// # Panics
    /// Panics if either dimension does not fit in addressable memory.
    pub fn new(nrows: u64, ncols: u64) -> Self {
        let rows = crate::addressable(nrows, "row count vector must fit in memory");
        let cols = crate::addressable(ncols, "column count vector must fit in memory");
        DegreeAccumulator {
            ncols,
            row_counts: vec![0u64; rows],
            col_counts: Some(vec![0u64; cols]),
            self_loops: 0,
            edges: 0,
        }
    }

    /// Create an accumulator that tracks only row endpoint counts (plus the
    /// edge and self-loop tallies); [`DegreeAccumulator::col_counts`] and
    /// [`DegreeAccumulator::col_histogram`] return `None`.
    ///
    /// # Panics
    /// Panics if the row dimension does not fit in addressable memory.
    pub fn rows_only(nrows: u64, ncols: u64) -> Self {
        // lint:allow(panic-reachability) -- the documented `# Panics` contract: callers size nrows from the design, which already fit in memory
        let rows = crate::addressable(nrows, "row count vector must fit in memory");
        DegreeAccumulator {
            ncols,
            row_counts: vec![0u64; rows],
            col_counts: None,
            self_loops: 0,
            edges: 0,
        }
    }

    /// Number of rows the accumulator covers.
    pub fn nrows(&self) -> u64 {
        self.row_counts.len() as u64
    }

    /// Number of columns the accumulator covers.
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// Whether column endpoint counts are being tracked.
    pub fn tracks_cols(&self) -> bool {
        self.col_counts.is_some()
    }

    /// Count one chunk of edges: each edge contributes one row endpoint and
    /// (when tracked) one column endpoint, and diagonal edges are tallied
    /// separately.
    ///
    /// # Panics
    /// Panics if an index is outside the declared dimensions.
    pub fn record(&mut self, edges: &[(u64, u64)]) {
        match self.col_counts.as_mut() {
            Some(col_counts) => {
                for &(row, col) in edges {
                    // lint:allow(panic-reachability) -- documented `# Panics` contract; generated indices are < the declared dims by construction
                    self.row_counts[crate::addressable(row, "row index addressable")] += 1;
                    // lint:allow(panic-reachability) -- documented `# Panics` contract; generated indices are < the declared dims by construction
                    col_counts[crate::addressable(col, "column index addressable")] += 1;
                    self.self_loops += u64::from(row == col);
                }
            }
            None => {
                for &(row, col) in edges {
                    assert!(col < self.ncols, "column index out of bounds");
                    // lint:allow(panic-reachability) -- documented `# Panics` contract; generated indices are < the declared dims by construction
                    self.row_counts[crate::addressable(row, "row index addressable")] += 1;
                    self.self_loops += u64::from(row == col);
                }
            }
        }
        self.edges += edges.len() as u64;
    }

    /// Total number of edges recorded so far.
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Number of diagonal (self-loop) edges recorded so far.
    pub fn self_loop_count(&self) -> u64 {
        self.self_loops
    }

    /// Fold another accumulator (e.g. a different worker's) into this one.
    ///
    /// # Panics
    /// Panics if the two accumulators cover different dimensions or track
    /// different endpoint sets.
    pub fn merge(&mut self, other: &DegreeAccumulator) {
        assert_eq!(
            (self.nrows(), self.ncols()),
            (other.nrows(), other.ncols()),
            "merged accumulators must cover the same graph dimensions"
        );
        assert_eq!(
            self.tracks_cols(),
            other.tracks_cols(),
            "merged accumulators must track the same endpoint sets"
        );
        for (mine, theirs) in self.row_counts.iter_mut().zip(other.row_counts.iter()) {
            *mine += theirs;
        }
        if let (Some(mine), Some(theirs)) = (self.col_counts.as_mut(), other.col_counts.as_ref()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.self_loops += other.self_loops;
        self.edges += other.edges;
    }

    /// Row endpoint count of each vertex (the paper's row-nnz degree).
    pub fn row_counts(&self) -> &[u64] {
        &self.row_counts
    }

    /// Column endpoint count of each vertex, or `None` for a
    /// [`rows_only`](DegreeAccumulator::rows_only) accumulator.
    pub fn col_counts(&self) -> Option<&[u64]> {
        self.col_counts.as_deref()
    }

    /// Histogram of row-endpoint degrees, including the degree-zero bucket —
    /// identical to [`degree_distribution`] of the materialised matrix.
    pub fn row_histogram(&self) -> BTreeMap<u64, u64> {
        degree_histogram(&self.row_counts)
    }

    /// Histogram of column-endpoint degrees, including the degree-zero
    /// bucket, or `None` for a
    /// [`rows_only`](DegreeAccumulator::rows_only) accumulator.
    pub fn col_histogram(&self) -> Option<BTreeMap<u64, u64>> {
        self.col_counts.as_deref().map(degree_histogram)
    }

    /// Largest row-endpoint degree recorded so far (zero for an empty or
    /// edgeless accumulator) — the paper's `d_max`, available without
    /// building the full histogram.
    pub fn max_row_degree(&self) -> u64 {
        self.row_counts.iter().copied().max().unwrap_or(0)
    }
}

/// A [`DegreeAccumulator`] shared by every worker of a parallel generation
/// run: one atomic row-endpoint vector for the whole run, so the streaming
/// validation side-channel costs exactly `O(vertices)` no matter how many
/// workers record into it concurrently.
///
/// # Memory ordering
///
/// Every atomic access in this type uses [`Ordering::Relaxed`], and each
/// site has been audited against the same argument:
///
/// * The `fetch_add`s in [`record`](SharedDegreeAccumulator::record) are
///   pure tallies.  No thread reads a counter to decide what to write
///   next, no counter value guards any other memory, and `fetch_add` is a
///   single atomic read-modify-write, so relaxed ordering still loses no
///   increments — only the *ordering* between counters is unspecified
///   while workers run, and nothing observes it.
/// * The loads in [`edge_count`](SharedDegreeAccumulator::edge_count),
///   [`self_loop_count`](SharedDegreeAccumulator::self_loop_count),
///   [`row_histogram`](SharedDegreeAccumulator::row_histogram), and
///   [`max_row_degree`](SharedDegreeAccumulator::max_row_degree) are only
///   meaningful once the recording workers have been *joined*: the join
///   itself (e.g. the end of a [`std::thread::scope`] or a rayon parallel
///   iterator) publishes every worker's writes with a happens-before
///   edge, so by the time a reader runs, relaxed loads observe the final
///   values exactly.  Mid-run calls are permitted (progress reporting)
///   but return an unspecified interleaving, never a torn value.
///
/// The `exact_totals_under_concurrent_recording` stress test pins the
/// joined-read contract: hammering `record` from many threads must yield
/// byte-exact totals, not approximations.
#[derive(Debug)]
pub struct SharedDegreeAccumulator {
    ncols: u64,
    row_counts: Vec<AtomicU64>,
    self_loops: AtomicU64,
    edges: AtomicU64,
}

impl SharedDegreeAccumulator {
    /// Create a shared accumulator tracking row endpoint counts (plus edge
    /// and self-loop tallies) for a graph with the given dimensions.
    ///
    /// # Panics
    /// Panics if the row dimension does not fit in addressable memory.
    pub fn rows_only(nrows: u64, ncols: u64) -> Self {
        // lint:allow(panic-reachability) -- the documented `# Panics` contract: callers size nrows from the design, which already fit in memory
        let rows = crate::addressable(nrows, "row count vector must fit in memory");
        let mut row_counts = Vec::with_capacity(rows);
        row_counts.resize_with(rows, || AtomicU64::new(0));
        SharedDegreeAccumulator {
            ncols,
            row_counts,
            self_loops: AtomicU64::new(0),
            edges: AtomicU64::new(0),
        }
    }

    /// Number of rows the accumulator covers.
    pub fn nrows(&self) -> u64 {
        self.row_counts.len() as u64
    }

    /// Number of columns the accumulator covers.
    pub fn ncols(&self) -> u64 {
        self.ncols
    }

    /// Count one chunk of edges; callable concurrently from any number of
    /// workers.
    ///
    /// # Panics
    /// Panics if an index is outside the declared dimensions.
    pub fn record(&self, edges: &[(u64, u64)]) {
        let mut loops = 0u64;
        for &(row, col) in edges {
            assert!(col < self.ncols, "column index out of bounds");
            // lint:allow(panic-reachability) -- documented `# Panics` contract; generated indices are < the declared dims by construction
            self.row_counts[crate::addressable(row, "row index addressable")]
                // ordering: Relaxed — independent counter increments; totals are read only after the recording workers are joined
                .fetch_add(1, Ordering::Relaxed);
            loops += u64::from(row == col);
        }
        // ordering: Relaxed — tally increment with no ordering dependence; folded after worker join
        self.self_loops.fetch_add(loops, Ordering::Relaxed);
        // ordering: Relaxed — tally increment with no ordering dependence; folded after worker join
        self.edges.fetch_add(edges.len() as u64, Ordering::Relaxed);
    }

    /// Total number of edges recorded so far.
    pub fn edge_count(&self) -> u64 {
        // ordering: Relaxed — monotone counter read; exact only after workers are joined, which callers guarantee
        self.edges.load(Ordering::Relaxed)
    }

    /// Number of diagonal (self-loop) edges recorded so far.
    pub fn self_loop_count(&self) -> u64 {
        // ordering: Relaxed — monotone counter read; exact only after workers are joined, which callers guarantee
        self.self_loops.load(Ordering::Relaxed)
    }

    /// Histogram of row-endpoint degrees, including the degree-zero bucket —
    /// identical to [`degree_distribution`] of the materialised matrix.
    /// Built straight from the atomic vector, with no second `O(vertices)`
    /// copy.
    pub fn row_histogram(&self) -> BTreeMap<u64, u64> {
        let mut hist = BTreeMap::new();
        for count in &self.row_counts {
            // ordering: Relaxed — per-slot read after the recording workers are joined (join is the synchronisation point)
            *hist.entry(count.load(Ordering::Relaxed)).or_insert(0) += 1;
        }
        hist
    }

    /// Largest row-endpoint degree recorded so far (zero for an empty or
    /// edgeless accumulator); meaningful once the recording workers have
    /// been joined.
    pub fn max_row_degree(&self) -> u64 {
        self.row_counts
            .iter()
            // ordering: Relaxed — per-slot read after the recording workers are joined (join is the synchronisation point)
            .map(|count| count.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// Total number of stored entries per row, returned as `(max, min, mean)`;
/// useful for checking the paper's per-processor load balance claim.
pub fn balance_stats(counts: &[usize]) -> (usize, usize, f64) {
    if counts.is_empty() {
        return (0, 0, 0.0);
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    (max, min, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn star5_with_center_loop() -> CooMatrix<u64> {
        // Centre 0 with 5 leaves plus a self-loop on the centre.
        let mut edges = vec![(0u64, 0u64)];
        for leaf in 1..=5u64 {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        CooMatrix::from_edges(6, 6, edges).unwrap()
    }

    #[test]
    fn row_and_col_counts() {
        let m = star5_with_center_loop();
        let rows = row_counts(&m);
        assert_eq!(rows[0], 6);
        assert_eq!(rows[1..], [1, 1, 1, 1, 1]);
        let cols = col_counts(&m);
        assert_eq!(cols, rows, "symmetric matrix has equal row/col counts");
    }

    #[test]
    fn csr_degrees_match_coo() {
        let m = star5_with_center_loop();
        let csr = CsrMatrix::from_coo::<PlusTimes>(&m).unwrap();
        assert_eq!(csr_row_degrees(&csr), row_counts(&m));
    }

    #[test]
    fn degree_histogram_counts_vertices() {
        let m = star5_with_center_loop();
        let hist = degree_distribution(&m);
        assert_eq!(hist.get(&1), Some(&5));
        assert_eq!(hist.get(&6), Some(&1));
        assert_eq!(hist.values().sum::<u64>(), 6);
    }

    #[test]
    fn zero_degree_vertices_are_counted() {
        let m = CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0)]).unwrap();
        let hist = degree_distribution(&m);
        assert_eq!(hist.get(&0), Some(&2));
        assert_eq!(hist.get(&1), Some(&2));
    }

    #[test]
    fn total_degrees_counts_both_endpoints() {
        let m = CooMatrix::from_edges(3, 3, vec![(0, 1), (2, 2)]).unwrap();
        let degs = total_degrees(&m);
        assert_eq!(degs, vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn total_degrees_requires_square() {
        let m = CooMatrix::from_edges(2, 3, vec![(0, 1)]).unwrap();
        let _ = total_degrees(&m);
    }

    #[test]
    fn accumulator_matches_materialised_histogram() {
        let m = star5_with_center_loop();
        let mut acc = DegreeAccumulator::new(m.nrows(), m.ncols());
        let edges: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        // Feed in two uneven chunks to exercise the chunk boundary.
        acc.record(&edges[..4]);
        acc.record(&edges[4..]);
        assert_eq!(acc.row_histogram(), degree_distribution(&m));
        assert_eq!(acc.row_counts(), row_counts(&m).as_slice());
        assert_eq!(acc.col_counts(), Some(col_counts(&m).as_slice()));
        assert_eq!(acc.col_histogram(), Some(degree_histogram(&col_counts(&m))));
        assert_eq!(acc.edge_count(), m.nnz() as u64);
        assert_eq!(acc.self_loop_count(), 1);
        assert_eq!(acc.max_row_degree(), 6);
        assert_eq!(DegreeAccumulator::new(0, 0).max_row_degree(), 0);
    }

    #[test]
    fn rows_only_accumulator_matches_full_rows() {
        let m = star5_with_center_loop();
        let edges: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let mut acc = DegreeAccumulator::rows_only(m.nrows(), m.ncols());
        assert!(!acc.tracks_cols());
        acc.record(&edges);
        assert_eq!(acc.row_histogram(), degree_distribution(&m));
        assert_eq!(acc.col_counts(), None);
        assert_eq!(acc.col_histogram(), None);
        assert_eq!(acc.edge_count(), m.nnz() as u64);
        assert_eq!(acc.self_loop_count(), 1);
        assert_eq!((acc.nrows(), acc.ncols()), (m.nrows(), m.ncols()));

        let mut other = DegreeAccumulator::rows_only(m.nrows(), m.ncols());
        other.record(&edges);
        other.merge(&acc);
        assert_eq!(other.edge_count(), 2 * m.nnz() as u64);
    }

    #[test]
    #[should_panic]
    fn rows_only_accumulator_still_bounds_checks_columns() {
        let mut acc = DegreeAccumulator::rows_only(4, 4);
        acc.record(&[(0, 9)]);
    }

    #[test]
    fn shared_accumulator_matches_materialised_histogram() {
        let m = star5_with_center_loop();
        let edges: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let acc = SharedDegreeAccumulator::rows_only(m.nrows(), m.ncols());
        // Record through shared references, as concurrent workers would.
        let shared = &acc;
        shared.record(&edges[..4]);
        shared.record(&edges[4..]);
        assert_eq!(acc.row_histogram(), degree_distribution(&m));
        assert_eq!(acc.edge_count(), m.nnz() as u64);
        assert_eq!(acc.self_loop_count(), 1);
        assert_eq!((acc.nrows(), acc.ncols()), (m.nrows(), m.ncols()));
        assert_eq!(acc.max_row_degree(), 6);
    }

    #[test]
    fn shared_accumulator_sums_across_threads() {
        let acc = SharedDegreeAccumulator::rows_only(4, 4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        acc.record(&[(0, 1), (2, 2)]);
                    }
                });
            }
        });
        assert_eq!(acc.edge_count(), 800);
        assert_eq!(acc.self_loop_count(), 400);
        let hist = acc.row_histogram();
        assert_eq!(hist.get(&400), Some(&2));
        assert_eq!(hist.get(&0), Some(&2));
    }

    /// Stress the relaxed-ordering contract documented on
    /// [`SharedDegreeAccumulator`]: many threads hammering `fetch_add`
    /// through `record`, with reads only after the scope join, must
    /// produce *exact* totals — identical to a serial replay through the
    /// single-threaded [`DegreeAccumulator`] — never an approximation.
    #[test]
    fn exact_totals_under_concurrent_recording() {
        const THREADS: u64 = 8;
        const CHUNKS: u64 = 250;
        const CHUNK_LEN: u64 = 16;
        const NROWS: u64 = 64;

        // Deterministic per-thread edge stream; rows deliberately collide
        // across threads so every counter sees real contention.
        let edges_for = |thread: u64, chunk: u64| -> Vec<(u64, u64)> {
            (0..CHUNK_LEN)
                .map(|k| {
                    let row = (thread * 17 + chunk * 5 + k * 3) % NROWS;
                    let col = if k % 7 == 0 { row } else { (row + 1) % NROWS };
                    (row, col)
                })
                .collect()
        };

        let shared = SharedDegreeAccumulator::rows_only(NROWS, NROWS);
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let shared = &shared;
                scope.spawn(move || {
                    for chunk in 0..CHUNKS {
                        shared.record(&edges_for(thread, chunk));
                    }
                });
            }
        });

        // Serial ground truth over the identical stream.
        let mut serial = DegreeAccumulator::rows_only(NROWS, NROWS);
        for thread in 0..THREADS {
            for chunk in 0..CHUNKS {
                serial.record(&edges_for(thread, chunk));
            }
        }

        assert_eq!(shared.edge_count(), THREADS * CHUNKS * CHUNK_LEN);
        assert_eq!(shared.edge_count(), serial.edge_count());
        assert_eq!(shared.self_loop_count(), serial.self_loop_count());
        assert_eq!(shared.row_histogram(), serial.row_histogram());
        assert_eq!(shared.max_row_degree(), serial.max_row_degree());
    }

    #[test]
    #[should_panic]
    fn shared_accumulator_bounds_checks_columns() {
        let acc = SharedDegreeAccumulator::rows_only(4, 4);
        acc.record(&[(0, 9)]);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mixed_tracking_modes() {
        let mut a = DegreeAccumulator::new(3, 3);
        let b = DegreeAccumulator::rows_only(3, 3);
        a.merge(&b);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let m = star5_with_center_loop();
        let edges: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let mut whole = DegreeAccumulator::new(6, 6);
        whole.record(&edges);
        let mut left = DegreeAccumulator::new(6, 6);
        let mut right = DegreeAccumulator::new(6, 6);
        left.record(&edges[..5]);
        right.record(&edges[5..]);
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn accumulator_counts_zero_degree_vertices() {
        let mut acc = DegreeAccumulator::new(4, 4);
        acc.record(&[(0, 1), (1, 0)]);
        let hist = acc.row_histogram();
        assert_eq!(hist.get(&0), Some(&2));
        assert_eq!(hist.get(&1), Some(&2));
    }

    #[test]
    #[should_panic]
    fn accumulator_merge_rejects_mismatched_dimensions() {
        let mut a = DegreeAccumulator::new(3, 3);
        let b = DegreeAccumulator::new(4, 4);
        a.merge(&b);
    }

    #[test]
    fn balance_stats_basics() {
        assert_eq!(balance_stats(&[]), (0, 0, 0.0));
        let (max, min, mean) = balance_stats(&[4, 4, 4, 4]);
        assert_eq!((max, min), (4, 4));
        assert!((mean - 4.0).abs() < 1e-12);
        let (max, min, _) = balance_stats(&[1, 7, 4]);
        assert_eq!((max, min), (7, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..15, 1u64..15).prop_flat_map(|(nr, nc)| {
            proptest::collection::vec((0..nr, 0..nc, 1u64..3), 0..40)
                .prop_map(move |es| CooMatrix::from_entries(nr, nc, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn counts_sum_to_nnz(m in arb_coo()) {
            prop_assert_eq!(row_counts(&m).iter().sum::<u64>() as usize, m.nnz());
            prop_assert_eq!(col_counts(&m).iter().sum::<u64>() as usize, m.nnz());
        }

        #[test]
        fn histogram_sums_to_vertex_count(m in arb_coo()) {
            let hist = degree_distribution(&m);
            prop_assert_eq!(hist.values().sum::<u64>(), m.nrows());
        }

        #[test]
        fn transpose_swaps_row_col_counts(m in arb_coo()) {
            prop_assert_eq!(row_counts(&m), col_counts(&m.transpose()));
        }

        #[test]
        fn accumulator_is_chunking_invariant(m in arb_coo(), chunk in 1usize..7) {
            let edges: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
            let mut acc = DegreeAccumulator::new(m.nrows(), m.ncols());
            for slice in edges.chunks(chunk) {
                acc.record(slice);
            }
            prop_assert_eq!(acc.row_histogram(), degree_distribution(&m));
            prop_assert_eq!(acc.edge_count() as usize, m.nnz());
        }
    }
}
