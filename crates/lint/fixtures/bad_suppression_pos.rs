//@ path: crates/core/src/under_test.rs
//@ expect: bad-suppression@8
//@ expect: bad-suppression@12
//@ expect: no-unwrap@8
//@ expect: no-unwrap@12

pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap() // lint:allow(no-unwrap)
}

pub fn second(values: &[u32]) -> u32 {
    *values.get(1).unwrap() // lint:allow(no-unwrap) --
}
