//! R-MAT through the generic pipeline, and the permutation stage.
//!
//! These tests pin the two new `EdgeSource`-era behaviours end to end:
//!
//! * The streamed `RmatSource` delivers the exact edge multiset (in fact the
//!   exact sequence) of the legacy materialising
//!   `RmatGenerator::generate_edges`, across worker counts and chunk sizes,
//!   and its runs produce round-tripping manifests recording source kind and
//!   seeds.
//! * Permuted Kronecker runs still pass `validate_streamed` (the Feistel
//!   relabelling is degree-preserving) and the permuted output is exactly
//!   the unpermuted graph mapped through the recorded bijection.

// The legacy materialising sampler is half of every comparison here.
#![allow(deprecated)]

use std::path::PathBuf;

use extreme_graphs::gen::manifest::MANIFEST_FILE_NAME;
use extreme_graphs::gen::{FeistelPermutation, Pipeline, RunManifest};
use extreme_graphs::rmat::{RmatGenerator, RmatParams, RmatSource};
use extreme_graphs::{KroneckerDesign, SelfLoop};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_rmat_pipeline")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn rmat_through_pipeline_matches_legacy_generate_edges() {
    let params = RmatParams::graph500(8);
    let seed = 20180304;
    let legacy = RmatGenerator::new(params, seed).unwrap().generate_edges();
    assert_eq!(legacy.len() as u64, params.requested_edges());

    for workers in [1usize, 2, 3, 8] {
        for chunk in [1usize, 64, 4096] {
            let report = Pipeline::for_source(RmatSource::new(params, seed).unwrap())
                .workers(workers)
                .chunk_capacity(chunk)
                .collect_coo()
                .unwrap();

            // Workers own contiguous ascending index ranges, so the
            // concatenated blocks reproduce the legacy sequence exactly —
            // not just as a multiset.
            let streamed: Vec<(u64, u64)> = report
                .outputs
                .iter()
                .flat_map(|block| block.iter().map(|(r, c, _)| (r, c)))
                .collect();
            assert_eq!(
                streamed, legacy,
                "stream differs from legacy for w{workers} c{chunk}"
            );
            assert_eq!(report.edge_count(), params.requested_edges());

            // The predictable fields validate; the full sheet is
            // measured-only.
            assert!(report.is_valid(), "{:?}", report.validation.failures());
            assert!(report.predicted.is_none());
            assert!(report.split.is_none());
            assert_eq!(report.manifest.source, "rmat");
            assert_eq!(report.manifest.source_seed, Some(seed));
        }
    }
}

#[test]
fn rmat_run_emits_a_round_tripping_manifest_with_source_and_seed() {
    let params = RmatParams::graph500(7);
    let dir = temp_dir("rmat_manifest");
    let report = Pipeline::for_source(RmatSource::new(params, 41).unwrap())
        .workers(3)
        .permute_vertices(17)
        .write_binary(&dir)
        .unwrap();
    assert!(report.is_valid());
    assert_eq!(report.vertices, params.vertices());

    let on_disk = RunManifest::read_from(&dir.join(MANIFEST_FILE_NAME)).unwrap();
    assert_eq!(on_disk, report.manifest);
    assert_eq!(on_disk.source, "rmat");
    assert_eq!(on_disk.source_seed, Some(41));
    assert_eq!(on_disk.permutation_seed, Some(17));
    assert_eq!(on_disk.star_points, Vec::<u64>::new());
    assert_eq!(on_disk.vertices, params.vertices().to_string());
    assert_eq!(
        on_disk.predicted_edges,
        params.requested_edges().to_string()
    );
    assert_eq!(on_disk.total_edges, params.requested_edges());
    assert!(on_disk.exact_match);
    assert_eq!(RunManifest::from_json(&on_disk.to_json()).unwrap(), on_disk);

    // The shards really contain the permuted stream.
    let files = report.files.as_ref().unwrap();
    let from_disk = files.read_assembled().unwrap();
    let perm = FeistelPermutation::new(params.vertices(), 17);
    let legacy = RmatGenerator::new(params, 41).unwrap().generate_edges();
    let expected: Vec<(u64, u64)> = legacy.iter().map(|&e| perm.apply_edge(e)).collect();
    let mut expected_sorted = expected;
    expected_sorted.sort_unstable();
    let mut disk_sorted: Vec<(u64, u64)> = from_disk.iter().map(|(r, c, _)| (r, c)).collect();
    disk_sorted.sort_unstable();
    assert_eq!(disk_sorted, expected_sorted);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permuted_kronecker_run_still_validates_streamed() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
        let plain = Pipeline::for_design(&design)
            .workers(4)
            .max_c_edges(200_000)
            .split_index(2)
            .collect_coo()
            .unwrap();
        let permuted = Pipeline::for_design(&design)
            .workers(4)
            .max_c_edges(200_000)
            .split_index(2)
            .permute_vertices(0xC0FFEE)
            .collect_coo()
            .unwrap();

        // Degree-preserving: the streamed validation still matches the
        // exact prediction, and the measured sheet is unchanged.
        assert!(
            permuted.is_valid(),
            "permuted validation failed for {self_loop:?}: {:?}",
            permuted.validation.failures()
        );
        assert_eq!(permuted.measured, plain.measured);
        assert_eq!(permuted.edge_count(), plain.edge_count());
        assert_eq!(permuted.manifest.permutation_seed, Some(0xC0FFEE));

        // And the permuted edges are exactly the plain edges through the
        // recorded bijection.
        let perm = FeistelPermutation::new(plain.vertices, 0xC0FFEE);
        let mut expected: Vec<(u64, u64)> = plain
            .assemble()
            .iter()
            .map(|(r, c, _)| perm.apply_edge((r, c)))
            .collect();
        let mut actual: Vec<(u64, u64)> =
            permuted.assemble().iter().map(|(r, c, _)| (r, c)).collect();
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(actual, expected, "relabelling mismatch for {self_loop:?}");
    }
}

#[test]
fn rmat_and_kronecker_share_the_pipeline_terminals() {
    // The headline of the generic pipeline: the same terminal call, the
    // same report shape, for both workflows — only the prediction differs.
    let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
    let kron = Pipeline::for_design(&design)
        .workers(2)
        .max_c_edges(100_000)
        .count()
        .unwrap();
    let rmat = Pipeline::for_source(RmatSource::new(RmatParams::graph500(9), 1).unwrap())
        .workers(2)
        .count()
        .unwrap();

    assert!(kron.is_valid());
    assert!(rmat.is_valid());
    assert!(kron.predicted.is_some(), "Kronecker predicts exactly");
    assert!(rmat.predicted.is_none(), "R-MAT is measured-only");
    // Kronecker's exact degree distribution is validated field by field;
    // R-MAT checks only counts.
    assert!(kron
        .validation
        .checks
        .iter()
        .any(|c| c.field == "degree_distribution"));
    assert!(!rmat
        .validation
        .checks
        .iter()
        .any(|c| c.field == "degree_distribution"));
    // Both manifests round-trip and name their source.
    for (report_manifest, kind) in [(&kron.manifest, "kronecker"), (&rmat.manifest, "rmat")] {
        assert_eq!(report_manifest.source, kind);
        assert_eq!(
            &RunManifest::from_json(&report_manifest.to_json()).unwrap(),
            report_manifest
        );
    }
}
