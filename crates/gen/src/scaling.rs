//! Analytic scaling model for the parallel generator (Figure 3's line).
//!
//! Because the generator is communication-free, its cost model is trivial and
//! therefore *predictive*: each worker expands its `nnz(B)/N_p` triples into
//! `nnz(C)` edges each, at a per-edge cost that can be calibrated from a
//! single small run.  [`ScalingModel`] captures that, predicts the generation
//! time and aggregate rate for any worker count — including worker counts far
//! beyond the current machine, which is how the Figure 3 extrapolation to
//! 41,472 cores is produced — and reports the efficiency lost to the triple
//! remainder when `N_p` does not divide `nnz(B)`.

use serde::{Deserialize, Serialize};

use kron_core::{CoreError, KroneckerDesign};

use crate::partition::Partition;
use crate::split::SplitPlan;

/// A calibrated analytic model of the communication-free generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Seconds one worker needs to produce one edge (calibrated).
    pub seconds_per_edge: f64,
    /// The split the model describes.
    pub b_nnz: u64,
    /// Edges produced per `B` triple (`nnz(C)`).
    pub c_nnz: u64,
}

/// The model's prediction for one worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of workers.
    pub workers: u64,
    /// Predicted wall-clock seconds (time of the most loaded worker).
    pub seconds: f64,
    /// Predicted aggregate rate in edges per second.
    pub edges_per_second: f64,
    /// Parallel efficiency relative to perfect linear scaling (1.0 = ideal).
    pub efficiency: f64,
}

impl ScalingModel {
    /// Build a model from a split plan and a calibrated per-edge cost.
    pub fn new(plan: &SplitPlan, seconds_per_edge: f64) -> Result<Self, CoreError> {
        let b_nnz = plan
            .b_nnz
            .to_u64()
            .ok_or_else(|| CoreError::TooLargeToRealise {
                vertices: String::from("n/a"),
                edges: plan.b_nnz.to_string(),
            })?;
        let c_nnz = plan
            .c_nnz
            .to_u64()
            .ok_or_else(|| CoreError::TooLargeToRealise {
                vertices: String::from("n/a"),
                edges: plan.c_nnz.to_string(),
            })?;
        if seconds_per_edge <= 0.0 || !seconds_per_edge.is_finite() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "per-edge cost must be positive and finite, got {seconds_per_edge}"
                ),
            });
        }
        Ok(ScalingModel {
            seconds_per_edge,
            b_nnz,
            c_nnz,
        })
    }

    /// Calibrate a model from one measured run: `edges` produced in
    /// `seconds` by `workers` workers.
    pub fn calibrate(
        plan: &SplitPlan,
        workers: u64,
        edges: u64,
        seconds: f64,
    ) -> Result<Self, CoreError> {
        if workers == 0 || edges == 0 || seconds <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: "calibration needs a non-trivial measured run".into(),
            });
        }
        // One worker's share of the measured run ran for `seconds`; its edge
        // throughput is edges/workers per `seconds`.
        let per_worker_edges = edges as f64 / workers as f64;
        ScalingModel::new(plan, seconds / per_worker_edges)
    }

    /// Total number of edges of the raw product the model describes.
    ///
    /// Computed in `u128`: both factors individually fit in `u64` (the model
    /// requires that), but their product does not for the paper's
    /// quadrillion-edge-and-beyond designs — `u64` arithmetic would silently
    /// wrap at ≈1.8 × 10¹⁹ edges.
    pub fn total_edges(&self) -> u128 {
        u128::from(self.b_nnz) * u128::from(self.c_nnz)
    }

    /// Predict time, rate, and efficiency at a given worker count.
    pub fn predict(&self, workers: u64) -> ScalingPoint {
        let workers = workers.max(1);
        let partition = Partition::even(
            self.b_nnz as usize,
            workers.min(u64::from(u32::MAX)) as usize,
        );
        let max_triples = partition.sizes().into_iter().max().unwrap_or(0) as f64;
        let seconds = max_triples * self.c_nnz as f64 * self.seconds_per_edge;
        let total = self.total_edges() as f64;
        let edges_per_second = if seconds > 0.0 {
            total / seconds
        } else {
            f64::INFINITY
        };
        let ideal_seconds = total * self.seconds_per_edge / workers as f64;
        let efficiency = if seconds > 0.0 {
            ideal_seconds / seconds
        } else {
            1.0
        };
        ScalingPoint {
            workers,
            seconds,
            edges_per_second,
            efficiency,
        }
    }

    /// Predict a whole sweep of worker counts (the Figure 3 series).
    pub fn sweep(&self, worker_counts: &[u64]) -> Vec<ScalingPoint> {
        worker_counts.iter().map(|&w| self.predict(w)).collect()
    }

    /// The worker count beyond which adding workers cannot help because every
    /// worker already holds at most one `B` triple.
    pub fn saturation_workers(&self) -> u64 {
        self.b_nnz
    }

    /// Predict the rate for a *different* design that uses the same kernel
    /// (same per-edge cost) — e.g. extrapolate a laptop calibration to the
    /// paper's full trillion-edge configuration.
    pub fn predict_for_design(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        workers: u64,
    ) -> Result<ScalingPoint, CoreError> {
        let (b, c) = design.split(split_index)?;
        let plan = SplitPlan {
            split_index,
            b_nnz: b.nnz_with_loops(),
            c_nnz: c.nnz_with_loops(),
            c_vertices: c.vertices(),
        };
        // The extrapolated design may be too large for u64 per-worker counts;
        // work in f64 for the prediction itself.
        let b_nnz = plan.b_nnz.to_f64();
        let c_nnz = plan.c_nnz.to_f64();
        let workers_f = workers.max(1) as f64;
        let max_triples = (b_nnz / workers_f).ceil();
        let seconds = max_triples * c_nnz * self.seconds_per_edge;
        let total = b_nnz * c_nnz;
        Ok(ScalingPoint {
            workers,
            seconds,
            edges_per_second: if seconds > 0.0 {
                total / seconds
            } else {
                f64::INFINITY
            },
            efficiency: if seconds > 0.0 {
                (total * self.seconds_per_edge / workers_f) / seconds
            } else {
                1.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::choose_split;
    use kron_core::SelfLoop;

    fn plan() -> SplitPlan {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
        choose_split(&design, 10_000, 1).unwrap()
    }

    #[test]
    fn construction_and_validation() {
        let plan = plan();
        assert!(ScalingModel::new(&plan, 1e-8).is_ok());
        assert!(ScalingModel::new(&plan, 0.0).is_err());
        assert!(ScalingModel::new(&plan, f64::NAN).is_err());
        assert!(ScalingModel::calibrate(&plan, 0, 10, 1.0).is_err());
        assert!(ScalingModel::calibrate(&plan, 2, 0, 1.0).is_err());
    }

    #[test]
    fn perfect_scaling_when_triples_divide_evenly() {
        let plan = plan(); // B has 48 triples, C has 5,760 edges
        let model = ScalingModel::new(&plan, 1e-8).unwrap();
        assert_eq!(model.total_edges(), 276_480);
        let p1 = model.predict(1);
        let p8 = model.predict(8);
        assert!(
            (p1.seconds / p8.seconds - 8.0).abs() < 1e-9,
            "48 triples split 8 ways evenly"
        );
        assert!((p8.efficiency - 1.0).abs() < 1e-9);
        assert!((p8.edges_per_second / p1.edges_per_second - 8.0).abs() < 1e-9);
    }

    #[test]
    fn remainder_costs_efficiency() {
        let plan = plan();
        let model = ScalingModel::new(&plan, 1e-8).unwrap();
        // 48 triples over 5 workers: one worker holds 10, ideal is 9.6.
        let p5 = model.predict(5);
        assert!(p5.efficiency < 1.0);
        assert!((p5.efficiency - 9.6 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_at_one_triple_per_worker() {
        let plan = plan();
        let model = ScalingModel::new(&plan, 1e-8).unwrap();
        assert_eq!(model.saturation_workers(), 48);
        let at = model.predict(48);
        let beyond = model.predict(480);
        assert!(
            (at.seconds - beyond.seconds).abs() < 1e-15,
            "extra workers beyond nnz(B) are idle"
        );
        assert!(beyond.efficiency < at.efficiency);
    }

    #[test]
    fn total_edges_survives_paper_scale_without_overflow() {
        // The Figure-7 decetta design split after 12 constituents: both
        // factors fit in u64 but their product (the design's ~2.7e30 raw
        // edges, here ~1.5e30 for the loop-free variant) overflows u64 by
        // eleven orders of magnitude.
        let design = KroneckerDesign::from_star_points(
            &[
                3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
            ],
            kron_core::SelfLoop::None,
        )
        .unwrap();
        let (b, c) = design.split(12).unwrap();
        let plan = SplitPlan {
            split_index: 12,
            b_nnz: b.nnz_with_loops(),
            c_nnz: c.nnz_with_loops(),
            c_vertices: c.vertices(),
        };
        let model = ScalingModel::new(&plan, 1e-8).unwrap();
        let expected = design.nnz_with_loops();
        assert!(
            expected > kron_bignum::BigUint::from(u64::MAX),
            "the regression design must exceed u64"
        );
        assert_eq!(model.total_edges(), expected.to_u128().unwrap());
        // The prediction built on the total stays finite and positive.
        let point = model.predict(41_472);
        assert!(point.seconds.is_finite() && point.seconds > 0.0);
        assert!(point.edges_per_second.is_finite() && point.edges_per_second > 0.0);
    }

    #[test]
    fn calibration_round_trips_a_measured_run() {
        let plan = plan();
        // Pretend 4 workers produced all 276,480 edges in 0.691 ms.
        let model = ScalingModel::calibrate(&plan, 4, 276_480, 6.912e-4).unwrap();
        // per-worker edges = 69,120 -> 1e-8 s/edge.
        assert!((model.seconds_per_edge - 1e-8).abs() < 1e-15);
        let p4 = model.predict(4);
        assert!((p4.seconds - 6.912e-4).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_to_paper_scale() {
        let plan = plan();
        let model = ScalingModel::new(&plan, 3.3e-8).unwrap(); // ~30 Medges/s/core
        let paper =
            KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::None)
                .unwrap();
        let point = model.predict_for_design(&paper, 6, 41_472).unwrap();
        // 1.1466e12 edges over 41,472 workers at 3.3e-8 s/edge ≈ 0.9 s —
        // the paper's "1 second on 41,472 cores" ballpark.
        assert!(
            point.seconds > 0.5 && point.seconds < 2.0,
            "predicted {} s",
            point.seconds
        );
        assert!(
            point.edges_per_second > 5e11,
            "predicted {} e/s",
            point.edges_per_second
        );
        let sweep = model.sweep(&[1, 2, 4, 8]);
        assert_eq!(sweep.len(), 4);
        assert!(sweep[3].edges_per_second > sweep[0].edges_per_second);
    }
}
