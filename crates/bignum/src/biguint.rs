//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] stores magnitude as little-endian 64-bit limbs with no
//! trailing zero limbs (the canonical form of zero is an empty limb vector).
//! The implementation favours clarity and correctness over asymptotic
//! cleverness: the numbers handled by the graph designer are at most a few
//! hundred bits, so schoolbook multiplication and shift-subtract division are
//! more than fast enough and easy to verify.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// An arbitrary-precision unsigned integer.
///
/// The representation is a little-endian vector of 64-bit limbs with no
/// trailing zeros; zero is the empty vector.  All arithmetic is exact;
/// subtraction panics on underflow (use [`BigUint::checked_sub`] when the
/// operands may be in either order).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse BigUint from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid decimal digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Construct from little-endian limbs, normalising trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Checked conversion to `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Checked conversion to `u128`.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Checked conversion to `usize`.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Approximate conversion to `f64` (positive infinity if it overflows).
    pub fn to_f64(&self) -> f64 {
        let mut value = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            value = value * 1.8446744073709552e19 + limb as f64;
        }
        value
    }

    /// Base-10 logarithm as an `f64` approximation; `None` for zero.
    pub fn log10(&self) -> Option<f64> {
        if self.is_zero() {
            return None;
        }
        // For values beyond f64 range, use bit length: log10(x) ≈ bits*log10(2)
        // refined by the top limbs.
        let bits = self.bit_len();
        if bits <= 1000 {
            let v = self.to_f64();
            if v.is_finite() {
                return Some(v.log10());
            }
        }
        // Take the top 128 bits as a float and add the exponent contribution.
        let shift = bits.saturating_sub(128);
        let top = (self.clone() >> shift).to_f64();
        Some(top.log10() + shift as f64 * std::f64::consts::LOG10_2)
    }

    /// Checked subtraction: `self - other`, or `None` if the result would be
    /// negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            Some(sub_magnitudes(&self.limbs, &other.limbs))
        }
    }

    /// Saturating subtraction: zero when the result would be negative.
    pub fn saturating_sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other).unwrap_or_else(BigUint::zero)
    }

    /// Absolute difference `|self - other|`.
    pub fn abs_diff(&self, other: &BigUint) -> BigUint {
        if self >= other {
            sub_magnitudes(&self.limbs, &other.limbs)
        } else {
            sub_magnitudes(&other.limbs, &self.limbs)
        }
    }

    /// Raise to an integer power with exact arithmetic.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Quotient and remainder of division by a non-zero `u64`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Quotient and remainder of division by an arbitrary non-zero divisor.
    ///
    /// Uses shift-subtract long division: O(bits × limbs), which is entirely
    /// adequate for the few-hundred-bit values produced by graph designs.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if let Some(d) = divisor.to_u64() {
            let (q, r) = self.div_rem_u64(d);
            return (q, BigUint::from(r));
        }
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        for i in (0..self.bit_len()).rev() {
            remainder = remainder << 1usize;
            if self.bit(i) {
                remainder += BigUint::one();
            }
            if remainder >= *divisor {
                // lint:allow(no-expect) -- the compare above guarantees remainder >= divisor, so checked_sub cannot return None
                remainder = remainder.checked_sub(divisor).expect("checked by compare");
                quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    /// Returns `true` when `divisor` divides `self` exactly.
    pub fn is_multiple_of(&self, divisor: &BigUint) -> bool {
        if divisor.is_zero() {
            return self.is_zero();
        }
        self.div_rem(divisor).1.is_zero()
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let shift = a_tz.min(b_tz);
        a = a >> a_tz;
        b = b >> b_tz;
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            // lint:allow(no-expect) -- the swap above orders b >= a, so checked_sub cannot return None
            b = b.checked_sub(&a).expect("b >= a after swap");
            if b.is_zero() {
                return a << shift;
            }
            b = b.clone() >> b.trailing_zeros();
        }
    }

    /// Number of trailing zero bits (zero returns 0).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return i * 64 + limb.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Integer square root (floor).
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        if let Some(v) = self.to_u128() {
            // Fast path through floating point with correction.
            let mut guess = (v as f64).sqrt() as u128;
            while guess.checked_mul(guess).is_none_or(|g| g > v) {
                guess -= 1;
            }
            while (guess + 1).checked_mul(guess + 1).is_some_and(|g| g <= v) {
                guess += 1;
            }
            return BigUint::from(guess);
        }
        // Newton's method on big values.
        let mut x = BigUint::one() << (self.bit_len() / 2 + 1);
        loop {
            let y = (&x + &self.div_rem(&x).0).div_rem_u64(2).0;
            if y >= x {
                return x;
            }
            x = y;
        }
    }

    fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        let off = i % 64;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Format with thousands separators (e.g. `1,853,002,140,758`).
    pub fn to_grouped_string(&self) -> String {
        crate::format::grouped(&self.to_string())
    }
}

fn add_magnitudes(a: &[u64], b: &[u64]) -> BigUint {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u128;
    for (i, &limb) in longer.iter().enumerate() {
        let sum = limb as u128 + *shorter.get(i).unwrap_or(&0) as u128 + carry;
        out.push(sum as u64);
        carry = sum >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    BigUint::from_limbs(out)
}

fn sub_magnitudes(a: &[u64], b: &[u64]) -> BigUint {
    debug_assert!(a.len() >= b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &limb) in a.iter().enumerate() {
        let diff = limb as i128 - *b.get(i).unwrap_or(&0) as i128 - borrow;
        if diff < 0 {
            out.push((diff + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(diff as u64);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
    BigUint::from_limbs(out)
}

fn mul_magnitudes(a: &[u64], b: &[u64]) -> BigUint {
    if a.is_empty() || b.is_empty() {
        return BigUint::zero();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    BigUint::from_limbs(out)
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {
        $(
            impl From<$t> for BigUint {
                fn from(value: $t) -> Self {
                    BigUint::from_limbs(vec![value as u64])
                }
            }
        )*
    };
}

impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<u128> for BigUint {
    fn from(value: u128) -> Self {
        BigUint::from_limbs(vec![value as u64, (value >> 64) as u64])
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        add_magnitudes(&self.limbs, &rhs.limbs)
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        add_magnitudes(&self.limbs, &rhs.limbs)
    }
}

impl AddAssign for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = add_magnitudes(&self.limbs, &rhs.limbs);
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = add_magnitudes(&self.limbs, &rhs.limbs);
    }
}

impl AddAssign<u64> for BigUint {
    fn add_assign(&mut self, rhs: u64) {
        *self = add_magnitudes(&self.limbs, &[rhs]);
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.checked_sub(&rhs)
            // lint:allow(no-expect) -- the Sub operator mirrors std integer semantics: underflow is a documented panic; checked_sub is the non-panicking path
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            // lint:allow(no-expect) -- the Sub operator mirrors std integer semantics: underflow is a documented panic; checked_sub is the non-panicking path
            .expect("BigUint subtraction underflow")
    }
}

impl SubAssign for BigUint {
    fn sub_assign(&mut self, rhs: BigUint) {
        *self = self
            .checked_sub(&rhs)
            // lint:allow(no-expect) -- the Sub operator mirrors std integer semantics: underflow is a documented panic; checked_sub is the non-panicking path
            .expect("BigUint subtraction underflow");
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        mul_magnitudes(&self.limbs, &rhs.limbs)
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul_magnitudes(&self.limbs, &rhs.limbs)
    }
}

impl Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        mul_magnitudes(&self.limbs, &[rhs])
    }
}

impl MulAssign for BigUint {
    fn mul_assign(&mut self, rhs: BigUint) {
        *self = mul_magnitudes(&self.limbs, &rhs.limbs);
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = mul_magnitudes(&self.limbs, &rhs.limbs);
    }
}

impl MulAssign<u64> for BigUint {
    fn mul_assign(&mut self, rhs: u64) {
        *self = mul_magnitudes(&self.limbs, &[rhs]);
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self;
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self;
        }
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&next| next << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::zero(), |acc, x| acc + x)
    }
}

impl Product for BigUint {
    fn product<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::one(), |acc, x| acc * x)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 19 decimal digits at a time (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut value = self.clone();
        while !value.is_zero() {
            let (q, r) = value.div_rem_u64(CHUNK);
            chunks.push(r);
            value = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:019}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cleaned: String = s.chars().filter(|&c| c != '_' && c != ',').collect();
        if cleaned.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut value = BigUint::zero();
        for c in cleaned.chars() {
            let digit = c.to_digit(10).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            value *= 10u64;
            value += digit as u64;
        }
        Ok(value)
    }
}

impl Serialize for BigUint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for BigUint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn from_u128_round_trips() {
        let v = u128::MAX;
        let b = BigUint::from(v);
        assert_eq!(b.to_u128(), Some(v));
        assert_eq!(b.to_u64(), None);
        assert_eq!(b.to_string(), v.to_string());
    }

    #[test]
    fn addition_with_carry_propagation() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let c = a + b;
        assert_eq!(c.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn subtraction_and_underflow() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        assert_eq!((a.clone() - b.clone()).to_u64(), Some(u64::MAX));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(b.saturating_sub(&a), BigUint::zero());
        assert_eq!(b.abs_diff(&a), a.clone() - BigUint::one());
    }

    #[test]
    fn multiplication_known_values() {
        // 22,160,061 * 83,619 = 1,853,002,140,759 (Figure 4 edge product before
        // removing the final self-loop).
        let a = BigUint::from(22_160_061u64);
        let b = BigUint::from(83_619u64);
        assert_eq!((a * b).to_string(), "1853002140759");
    }

    #[test]
    fn multiplication_large() {
        let a = big("340282366920938463463374607431768211455"); // 2^128-1
        let b = big("340282366920938463463374607431768211455");
        let expected =
            big("115792089237316195423570985008687907852589419931798687112530834793049593217025");
        assert_eq!(a * b, expected);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let cases = [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "2705963586782877716483871216764",
            "144111718793178936483840000",
        ];
        for case in cases {
            assert_eq!(big(case).to_string(), case);
        }
    }

    #[test]
    fn parse_accepts_separators() {
        assert_eq!(big("1,853,002,140,758"), big("1853002140758"));
        assert_eq!(big("1_000_000"), BigUint::from(1_000_000u64));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a3".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn div_rem_u64_matches_u128_arithmetic() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let b = BigUint::from(v);
        let (q, r) = b.div_rem_u64(1_000_003);
        assert_eq!(q.to_u128(), Some(v / 1_000_003));
        assert_eq!(r as u128, v % 1_000_003);
    }

    #[test]
    fn div_rem_big_divisor() {
        let n = big("2705963586782877716483871216764");
        let d = big("178940587");
        let (q, r) = n.div_rem(&d);
        assert_eq!(&q * &d + r.clone(), n);
        assert!(r < d);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn pow_known_values() {
        assert_eq!(BigUint::from(2u64).pow(10), BigUint::from(1024u64));
        assert_eq!(BigUint::from(10u64).pow(0), BigUint::one());
        assert_eq!(
            BigUint::from(10u64).pow(30).to_string(),
            "1000000000000000000000000000000"
        );
    }

    #[test]
    fn shifts() {
        let one = BigUint::one();
        assert_eq!((one.clone() << 200).bit_len(), 201);
        assert_eq!((one.clone() << 200) >> 200, one.clone());
        assert_eq!(one >> 1, BigUint::zero());
        let v = big("123456789012345678901234567890");
        assert_eq!((v.clone() << 7) >> 7, v);
    }

    #[test]
    fn gcd_known_values() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(7u64)),
            BigUint::from(7u64)
        );
        assert_eq!(
            BigUint::from(7u64).gcd(&BigUint::zero()),
            BigUint::from(7u64)
        );
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn isqrt_values() {
        assert_eq!(BigUint::zero().isqrt(), BigUint::zero());
        assert_eq!(BigUint::from(15u64).isqrt(), BigUint::from(3u64));
        assert_eq!(BigUint::from(16u64).isqrt(), BigUint::from(4u64));
        let big_square = big("123456789012345678901234567890").pow(2);
        assert_eq!(big_square.isqrt(), big("123456789012345678901234567890"));
    }

    #[test]
    fn ordering() {
        assert!(big("100") > big("99"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
        assert!(BigUint::zero() < BigUint::one());
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }

    #[test]
    fn to_f64_and_log10() {
        assert_eq!(BigUint::from(1_000_000u64).to_f64(), 1e6);
        let e30 = BigUint::from(10u64).pow(30);
        let l = e30.log10().unwrap();
        assert!((l - 30.0).abs() < 1e-9, "log10(10^30) = {l}");
        assert_eq!(BigUint::zero().log10(), None);
        // Huge value beyond f64 still produces a sensible log.
        let e400 = BigUint::from(10u64).pow(400);
        let l = e400.log10().unwrap();
        assert!((l - 400.0).abs() < 1e-6, "log10(10^400) = {l}");
    }

    #[test]
    fn serde_round_trip() {
        let v = big("2705963586782877716483871216764");
        let json = serde_json_like(&v);
        assert_eq!(json, "\"2705963586782877716483871216764\"");
    }

    // Minimal serde check without pulling serde_json into this crate: use the
    // serde test tokens via a tiny manual serializer would be overkill, so we
    // just check Display/FromStr symmetry which backs the serde impls.
    fn serde_json_like(v: &BigUint) -> String {
        format!("\"{v}\"")
    }

    #[test]
    fn sum_and_product_iterators() {
        let values = vec![
            BigUint::from(2u64),
            BigUint::from(3u64),
            BigUint::from(5u64),
        ];
        let s: BigUint = values.iter().cloned().sum();
        let p: BigUint = values.into_iter().product();
        assert_eq!(s, BigUint::from(10u64));
        assert_eq!(p, BigUint::from(30u64));
    }

    #[test]
    fn is_multiple_of() {
        assert!(big("1853002140758").is_multiple_of(&big("2")));
        assert!(!big("1853002140758").is_multiple_of(&big("4")));
        assert!(BigUint::zero().is_multiple_of(&BigUint::zero()));
        assert!(BigUint::zero().is_multiple_of(&BigUint::one()));
    }

    #[test]
    fn grouped_display() {
        assert_eq!(
            big("1853002140758").to_grouped_string(),
            "1,853,002,140,758"
        );
        assert_eq!(big("7").to_grouped_string(), "7");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_biguint() -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn add_commutative(a in arb_biguint(), b in arb_biguint()) {
            prop_assert_eq!(a.clone() + b.clone(), b + a);
        }

        #[test]
        fn add_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
            prop_assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
        }

        #[test]
        fn mul_commutative(a in arb_biguint(), b in arb_biguint()) {
            prop_assert_eq!(a.clone() * b.clone(), b * a);
        }

        #[test]
        fn mul_distributes_over_add(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
            prop_assert_eq!(a.clone() * (b.clone() + c.clone()), a.clone() * b + a * c);
        }

        #[test]
        fn sub_then_add_round_trips(a in arb_biguint(), b in arb_biguint()) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let diff = hi.clone() - lo.clone();
            prop_assert_eq!(diff + lo, hi);
        }

        #[test]
        fn display_parse_round_trip(a in arb_biguint()) {
            let s = a.to_string();
            let parsed: BigUint = s.parse().unwrap();
            prop_assert_eq!(parsed, a);
        }

        #[test]
        fn div_rem_reconstructs(a in arb_biguint(), b in arb_biguint()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q * b + r, a);
        }

        #[test]
        fn shifts_round_trip(a in arb_biguint(), s in 0usize..200) {
            prop_assert_eq!((a.clone() << s) >> s, a);
        }

        #[test]
        fn gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
            let g = a.gcd(&b);
            if !g.is_zero() {
                prop_assert!(a.is_multiple_of(&g));
                prop_assert!(b.is_multiple_of(&g));
            } else {
                prop_assert!(a.is_zero() && b.is_zero());
            }
        }

        #[test]
        fn isqrt_bounds(a in arb_biguint()) {
            let r = a.isqrt();
            prop_assert!(&r * &r <= a);
            let r1 = r + BigUint::one();
            prop_assert!(&r1 * &r1 > a);
        }

        #[test]
        fn u128_round_trip(v in any::<u128>()) {
            prop_assert_eq!(BigUint::from(v).to_u128(), Some(v));
        }
    }
}
