//! # kron-rmat
//!
//! A from-scratch R-MAT / stochastic Kronecker baseline generator.
//!
//! The paper positions its exact Kronecker designs against the standard
//! Graph500-style workflow: pick R-MAT parameters, *sample* a random graph,
//! measure what came out, and iterate until the measured properties are close
//! enough to the target.  This crate implements that baseline so the
//! comparison experiments can be reproduced:
//!
//! * [`RmatGenerator`] — recursive quadrant sampling with the Graph500
//!   parameters as defaults, optional noise, and deterministic seeding.
//! * [`measure`] — degree-distribution and structural measurements of the
//!   sampled edge lists (duplicate edges, self-loops, empty vertices — the
//!   artefacts the paper's generator avoids by construction).
//! * [`design_loop`] — the trial-and-error design loop: repeatedly generate
//!   and measure until the edge-count / max-degree targets are met, counting
//!   how much work that takes compared with the exact designer.
//! * [`permute`] — random vertex relabelling, needed before R-MAT output can
//!   be compared fairly with structured generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design_loop;
pub mod measure;
pub mod permute;
pub mod rmat;
pub mod stochastic;

pub use design_loop::{DesignLoopReport, TrialAndErrorDesigner, TrialTargets};
pub use measure::{measure_edge_list, EdgeListStats};
pub use permute::{random_permutation, relabel_edges};
pub use rmat::{RmatGenerator, RmatParams};
pub use stochastic::{Initiator, StochasticKronecker};
