//! Generation statistics.
//!
//! The paper's Figure 3 reports a single metric — edges generated per second
//! versus processor count — together with the claim that every processor
//! produces the same number of edges.  [`GenerationStats`] captures both.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Timing and balance statistics of one parallel generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Number of workers used.
    pub workers: usize,
    /// Total edges generated across all workers.
    pub total_edges: u64,
    /// Wall-clock generation time in seconds.
    pub seconds: f64,
    /// Edges generated per worker.
    pub edges_per_worker: Vec<u64>,
    /// Conditions that degraded the run without failing it (e.g. a fallback
    /// split that loses the `nnz(B) ≥ workers` balance guarantee).
    #[serde(default)]
    pub warnings: Vec<String>,
}

impl GenerationStats {
    /// Assemble statistics from per-worker edge counts and the elapsed time.
    pub fn new(edges_per_worker: Vec<u64>, elapsed: Duration) -> Self {
        let total_edges = edges_per_worker.iter().sum();
        GenerationStats {
            workers: edges_per_worker.len(),
            total_edges,
            seconds: elapsed.as_secs_f64(),
            edges_per_worker,
            warnings: Vec::new(),
        }
    }

    /// Record a degradation warning.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }

    /// Aggregate generation rate in edges per second.
    pub fn edges_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.total_edges as f64 / self.seconds
    }

    /// Largest minus smallest per-worker edge count (0 = perfect balance).
    pub fn imbalance(&self) -> u64 {
        match (
            self.edges_per_worker.iter().max(),
            self.edges_per_worker.iter().min(),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Max/mean per-worker load ratio (1.0 = perfect balance).
    pub fn balance_ratio(&self) -> f64 {
        if self.edges_per_worker.is_empty() || self.total_edges == 0 {
            return 1.0;
        }
        let max = self.edges_per_worker.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.total_edges as f64 / self.workers as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_balance() {
        let stats = GenerationStats::new(vec![250, 250, 250, 250], Duration::from_millis(500));
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.total_edges, 1000);
        assert!((stats.edges_per_second() - 2000.0).abs() < 1e-9);
        assert_eq!(stats.imbalance(), 0);
        assert!((stats.balance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_run_is_reported() {
        let stats = GenerationStats::new(vec![300, 200, 100], Duration::from_secs(1));
        assert_eq!(stats.imbalance(), 200);
        assert!(stats.balance_ratio() > 1.4);
    }

    #[test]
    fn warnings_accumulate() {
        let mut stats = GenerationStats::new(vec![10, 10], Duration::from_secs(1));
        assert!(stats.warnings.is_empty());
        stats.warn("fallback split in use");
        assert_eq!(stats.warnings.len(), 1);
        assert!(stats.warnings[0].contains("fallback"));
    }

    #[test]
    fn degenerate_cases() {
        let stats = GenerationStats::new(vec![], Duration::from_secs(0));
        assert_eq!(stats.total_edges, 0);
        assert_eq!(stats.edges_per_second(), 0.0);
        assert_eq!(stats.imbalance(), 0);
        assert_eq!(stats.balance_ratio(), 1.0);
        let zero_time = GenerationStats::new(vec![10], Duration::from_secs(0));
        assert_eq!(zero_time.edges_per_second(), 0.0);
    }
}
