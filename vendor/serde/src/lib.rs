//! Vendored subset of the `serde` API.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides exactly the serde surface the workspace compiles against: the
//! four core traits, the `de`/`ser` error traits, and the no-op derive
//! macros re-exported from `serde_derive`.  Swapping this for the real serde
//! is a one-line change in the workspace manifest.

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// A type that can be serialized.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization backend.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserialization backend.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Deserialize a string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

/// Deserialization error support.
pub mod de {
    use super::Display;

    /// Errors a deserializer can construct from a message.
    pub trait Error: Sized {
        /// Build an error from a displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Serialization error support.
pub mod ser {
    use super::Display;

    /// Errors a serializer can construct from a message.
    pub trait Error: Sized {
        /// Build an error from a displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}
