//@ path: crates/core/src/under_test.rs
pub fn first(values: &[u32]) -> u32 {
    *values.first().expect("non-empty") //~ no-expect
}
