//! The replay-validation loop: a shard set streamed back from disk must
//! measure exactly what its generation run measured.
//!
//! These tests pin the tentpole guarantee of the streaming-metrics engine +
//! `ReplaySource` pair: for the same shard layout (as many replay workers as
//! generation workers), the replay's `MetricsReport` — degree histogram,
//! counts, max degree, slope fit, per-worker balance — is *equal* to the
//! generation-time report, across TSV and binary formats, permuted and
//! plain runs, and both histogram modes.  Corrupt and missing shards must
//! fail with errors naming the offending file.

use std::path::{Path, PathBuf};

use extreme_graphs::core::CoreError;
use extreme_graphs::gen::manifest::MANIFEST_FILE_NAME;
use extreme_graphs::gen::{Pipeline, ReplaySource, RunManifest, RunReport};
use extreme_graphs::{KroneckerDesign, SelfLoop};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_replay_roundtrip")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generate(dir: &Path, binary: bool, workers: usize) -> RunReport<PathBuf> {
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
    let pipeline = Pipeline::for_design(&design)
        .workers(workers)
        .split_index(2)
        .max_c_edges(200_000);
    let report = if binary {
        pipeline.write_binary(dir).unwrap()
    } else {
        pipeline.write_tsv(dir).unwrap()
    };
    assert!(report.is_valid());
    report
}

fn replay(dir: &Path, workers: usize) -> RunReport<u64> {
    let source = ReplaySource::from_directory(dir).unwrap();
    let report = Pipeline::for_source(source)
        .workers(workers)
        .count()
        .unwrap();
    assert!(
        report.is_valid(),
        "replay validation failed: {:?}",
        report.validation.failures()
    );
    assert!(report.predicted.is_none(), "a replay only measures");
    report
}

#[test]
fn replayed_metrics_are_bit_identical_across_formats() {
    for (binary, label) in [(false, "tsv"), (true, "binary")] {
        let dir = temp_dir(&format!("identical_{label}"));
        let generated = generate(&dir, binary, 4);
        let replayed = replay(&dir, 4);

        // The whole typed report is equal — histogram, counts, max degree,
        // slope fit, per-worker balance.
        assert_eq!(
            replayed.metrics, generated.metrics,
            "{label} replay changed the metrics"
        );
        // And the measured property sheets agree field by field.
        let comparison = extreme_graphs::core::validate::compare_measured(
            &generated.measured,
            &replayed.measured,
        );
        assert!(
            comparison.is_exact_match(),
            "measured sheets differ: {:?}",
            comparison.failures()
        );
        // The replay manifest names its source and the same totals.
        assert_eq!(replayed.manifest.source, "replay");
        assert_eq!(replayed.manifest.total_edges, generated.edge_count());
        assert_eq!(replayed.manifest.vertices, generated.manifest.vertices);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn permuted_shards_replay_to_the_same_invariant_metrics() {
    let dir = temp_dir("permuted");
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Leaf).unwrap();
    let generated = Pipeline::for_design(&design)
        .workers(3)
        .split_index(2)
        .max_c_edges(200_000)
        .permute_vertices(0xD15C)
        .write_binary(&dir)
        .unwrap();
    let replayed = replay(&dir, 3);
    // The shards hold relabelled edges; the degree structure is invariant,
    // so the replay measures exactly what generation measured.
    assert_eq!(replayed.metrics, generated.metrics);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_count_changes_balance_but_nothing_else() {
    let dir = temp_dir("other_workers");
    let generated = generate(&dir, true, 4);
    // Replaying 4 shards on 2 workers: the graph-level metrics still match;
    // only the per-worker balance sheet reflects the new layout.
    let replayed = replay(&dir, 2).metrics;
    assert_ne!(replayed.balance, generated.metrics.balance);
    assert_eq!(
        replayed.degree_histogram,
        generated.metrics.degree_histogram
    );
    assert_eq!(replayed.edges, generated.metrics.edges);
    assert_eq!(replayed.self_loops, generated.metrics.self_loops);
    assert_eq!(replayed.max_degree, generated.metrics.max_degree);
    assert_eq!(replayed.power_law, generated.metrics.power_law);
    assert_eq!(
        replayed.balance.edges_per_worker.iter().sum::<u64>(),
        generated.edge_count()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_histogram_mode_replays_identically_too() {
    let dir = temp_dir("shared_mode");
    let generated = generate(&dir, true, 3);
    let source = ReplaySource::from_directory(&dir).unwrap();
    let report = Pipeline::for_source(source)
        .workers(3)
        .max_histogram_bytes(0) // force the run-wide atomic vector
        .count()
        .unwrap();
    assert_eq!(report.metrics, generated.metrics);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shards_fail_the_replay_naming_the_file() {
    for (binary, label) in [(false, "tsv"), (true, "binary")] {
        let dir = temp_dir(&format!("corrupt_{label}"));
        let _ = generate(&dir, binary, 3);
        let victim = dir.join(if binary {
            "block_00001.kbk"
        } else {
            "block_00001.tsv"
        });
        if binary {
            // Truncate the body so the header count no longer matches.
            let bytes = std::fs::read(&victim).unwrap();
            std::fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
        } else {
            std::fs::write(&victim, "0\t1\t1\ngarbage line\n").unwrap();
        }
        let source = ReplaySource::from_directory(&dir).unwrap();
        let error = Pipeline::for_source(source).workers(3).count().unwrap_err();
        let message = error.to_string();
        assert!(
            message.contains("block_00001"),
            "{label} error must name the shard: {message}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn missing_shards_fail_the_replay_naming_the_file() {
    let dir = temp_dir("missing");
    let _ = generate(&dir, true, 3);
    std::fs::remove_file(dir.join("block_00002.kbk")).unwrap();
    let source = ReplaySource::from_directory(&dir).unwrap();
    let error = Pipeline::for_source(source).workers(3).count().unwrap_err();
    assert!(matches!(error, CoreError::Sparse(_)));
    assert!(
        error.to_string().contains("block_00002"),
        "error must name the missing shard: {error}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_manifest_round_trips_with_metric_records() {
    let dir = temp_dir("replay_manifest");
    let out = temp_dir("replay_manifest_out");
    let generated = generate(&dir, true, 2);
    // Replay → re-shard to TSV: format conversion without regeneration,
    // emitting a fresh manifest (metrics included) next to the new shards.
    let source = ReplaySource::from_directory(&dir).unwrap();
    let report = Pipeline::for_source(source)
        .workers(2)
        .write_tsv(&out)
        .unwrap();
    assert_eq!(report.metrics, generated.metrics);

    let on_disk = RunManifest::read_from(&out.join(MANIFEST_FILE_NAME)).unwrap();
    assert_eq!(on_disk, report.manifest);
    assert_eq!(on_disk.source, "replay");
    assert_eq!(on_disk.sink, "tsv");
    assert!(!on_disk.metrics.is_empty());
    assert_eq!(RunManifest::from_json(&on_disk.to_json()).unwrap(), on_disk);

    // …and the converted TSV shards replay to the same metrics again.
    let again = Pipeline::for_source(ReplaySource::from_directory(&out).unwrap())
        .workers(2)
        .count()
        .unwrap();
    assert_eq!(again.metrics, generated.metrics);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&out).ok();
}
