//! Kronecker graph designs: exact properties before generation.
//!
//! A [`KroneckerDesign`] is an ordered list of constituent matrices
//! `A_1, …, A_N`; the designed graph is `A = A_1 ⊗ A_2 ⊗ … ⊗ A_N`, with the
//! single surviving self-loop removed when the triangle-control construction
//! is used.  Every property the paper derives is available *without*
//! materialising `A`:
//!
//! | property | formula |
//! |---|---|
//! | vertices | `∏ m_k` |
//! | edges | `∏ nnz(A_k)` (− 1 after self-loop removal) |
//! | degree distribution | `⊗_k n_k(d)` (adjusted at the self-loop vertex) |
//! | triangles | `(∏ raw_k − 3·D + 2) / 6` with `D = ∏ loop-vertex degrees` |
//!
//! where `raw_k = 1ᵀ((A_k·A_k) ⊗ A_k)1`.  When no constituent carries a
//! self-loop the triangle count is simply `∏ raw_k / 6` (zero for star
//! designs).

use serde::{Deserialize, Serialize};

use kron_bignum::{product_of, BigUint};
use kron_sparse::kron::kron_chain;
use kron_sparse::select::strip_diagonal;
use kron_sparse::{CooMatrix, PlusTimes};

use crate::constituent::Constituent;
use crate::degree::DegreeDistribution;
use crate::error::CoreError;
use crate::properties::GraphProperties;
use crate::star::SelfLoop;

/// An immutable Kronecker graph design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KroneckerDesign {
    constituents: Vec<Constituent>,
}

impl KroneckerDesign {
    /// Create a design from an ordered list of constituents.
    pub fn new(constituents: Vec<Constituent>) -> Result<Self, CoreError> {
        if constituents.is_empty() {
            return Err(CoreError::EmptyDesign);
        }
        Ok(KroneckerDesign { constituents })
    }

    /// Create a design of star constituents with the given numbers of points,
    /// all carrying the same self-loop placement.  This is the construction
    /// used for every graph in the paper's evaluation.
    pub fn from_star_points(points: &[u64], self_loop: SelfLoop) -> Result<Self, CoreError> {
        if points.is_empty() {
            return Err(CoreError::EmptyDesign);
        }
        let constituents = points
            .iter()
            .map(|&p| Constituent::star(p, self_loop))
            .collect::<Result<Vec<_>, _>>()?;
        KroneckerDesign::new(constituents)
    }

    /// The constituents, in Kronecker-product order.
    pub fn constituents(&self) -> &[Constituent] {
        &self.constituents
    }

    /// Number of constituents `N`.
    pub fn len(&self) -> usize {
        self.constituents.len()
    }

    /// Designs are never empty, but clippy likes the pair.
    pub fn is_empty(&self) -> bool {
        self.constituents.is_empty()
    }

    /// Exact number of vertices, `∏ m_k`.
    pub fn vertices(&self) -> BigUint {
        product_of(self.constituents.iter().map(|c| c.vertices()))
    }

    /// Exact number of stored entries of the raw product, `∏ nnz(A_k)`,
    /// before any self-loop removal.
    pub fn nnz_with_loops(&self) -> BigUint {
        product_of(self.constituents.iter().map(|c| c.nnz()))
    }

    /// Exact number of self-loops in the raw product, `∏ loops(A_k)`.
    pub fn product_self_loops(&self) -> BigUint {
        product_of(self.constituents.iter().map(|c| c.self_loop_count()))
    }

    /// Whether the design uses the paper's triangle-control construction:
    /// every constituent carries exactly one self-loop, so the product has
    /// exactly one, which is removed from the final graph.
    pub fn has_removable_self_loop(&self) -> bool {
        self.constituents.iter().all(|c| c.self_loop_count() == 1)
    }

    /// Degree (including the loop) of the product vertex carrying the single
    /// removable self-loop: `D = ∏ d_loop(A_k)`.
    pub fn self_loop_vertex_degree(&self) -> Option<BigUint> {
        if !self.has_removable_self_loop() {
            return None;
        }
        let mut product = BigUint::one();
        for c in &self.constituents {
            product *= BigUint::from(c.self_loop_degree()?);
        }
        Some(product)
    }

    /// Exact number of edges (stored adjacency entries) of the final graph:
    /// `∏ nnz(A_k)`, minus one when the removable self-loop is taken out.
    pub fn edges(&self) -> BigUint {
        let raw = self.nnz_with_loops();
        if self.has_removable_self_loop() {
            raw - BigUint::one()
        } else {
            raw
        }
    }

    /// Number of self-loops remaining in the final graph (after the removal
    /// step when it applies).
    pub fn remaining_self_loops(&self) -> BigUint {
        let raw = self.product_self_loops();
        if self.has_removable_self_loop() {
            raw - BigUint::one()
        } else {
            raw
        }
    }

    /// The exact degree distribution of the final graph.
    pub fn degree_distribution(&self) -> DegreeDistribution {
        let per_constituent: Vec<DegreeDistribution> = self
            .constituents
            .iter()
            .map(|c| c.degree_distribution().clone())
            .collect();
        let mut dist = DegreeDistribution::kron_all(&per_constituent);
        if let Some(loop_degree) = self.self_loop_vertex_degree() {
            dist.remove_self_loop_at(&loop_degree);
        }
        dist
    }

    /// Exact number of triangles of the final graph.
    ///
    /// * no self-loops anywhere → `∏ raw_k / 6`;
    /// * exactly one removable self-loop → `(∏ raw_k − 3·D + 2) / 6` where
    ///   `D` is [`Self::self_loop_vertex_degree`] (this single formula covers
    ///   the paper's Case 1 `D = m_A` and Case 2 `D = 2^N`);
    /// * anything else → [`CoreError::UnsupportedTriangleStructure`].
    pub fn triangles(&self) -> Result<BigUint, CoreError> {
        let raw_product = product_of(self.constituents.iter().map(|c| c.triangle_raw_sum()));
        let loops = self.product_self_loops();
        if loops.is_zero() {
            let (q, r) = raw_product.div_rem_u64(6);
            debug_assert_eq!(
                r, 0,
                "raw triangle sum of a loop-free product must divide by 6"
            );
            return Ok(q);
        }
        if self.has_removable_self_loop() {
            let d = self
                .self_loop_vertex_degree()
                // lint:allow(no-expect) -- a design that reports a removable self-loop always carries the loop vertex degree
                .expect("removable self-loop implies a well-defined loop vertex degree");
            // corrected = (∏ raw_k − 3·D + 2) / 6, exactly.
            let numerator = raw_product + BigUint::from(2u64) - BigUint::from(3u64) * d;
            let (q, r) = numerator.div_rem_u64(6);
            debug_assert_eq!(r, 0, "triangle correction must be an exact integer");
            return Ok(q);
        }
        Err(CoreError::UnsupportedTriangleStructure {
            product_self_loops: loops.to_string(),
        })
    }

    /// The full exact property sheet of the designed graph.
    pub fn properties(&self) -> GraphProperties {
        GraphProperties {
            vertices: self.vertices(),
            edges: self.edges(),
            triangles: self.triangles().ok(),
            self_loops: self.remaining_self_loops(),
            degree_distribution: self.degree_distribution(),
        }
    }

    /// Split the design after `split_index` constituents into the `(B, C)`
    /// pair used by the paper's parallel generator: `A = B ⊗ C`.
    pub fn split(
        &self,
        split_index: usize,
    ) -> Result<(KroneckerDesign, KroneckerDesign), CoreError> {
        if split_index == 0 || split_index >= self.constituents.len() {
            return Err(CoreError::DesignNotFound {
                message: format!(
                    "split index {split_index} must be in 1..{} so both factors are non-empty",
                    self.constituents.len()
                ),
            });
        }
        let b = KroneckerDesign::new(self.constituents[..split_index].to_vec())?;
        let c = KroneckerDesign::new(self.constituents[split_index..].to_vec())?;
        Ok((b, c))
    }

    /// Materialise the final adjacency matrix.
    ///
    /// Refuses (with [`CoreError::TooLargeToRealise`]) when the edge count
    /// exceeds `max_edges`, because at that point the analytic API is the
    /// right tool.
    pub fn realize(&self, max_edges: u64) -> Result<CooMatrix<u64>, CoreError> {
        let edges = self.edges();
        let vertices = self.vertices();
        if edges > BigUint::from(max_edges) || vertices.to_u64().is_none() {
            return Err(CoreError::TooLargeToRealise {
                vertices: vertices.to_string(),
                edges: edges.to_string(),
            });
        }
        let product = self.realize_raw(max_edges)?;
        if self.has_removable_self_loop() {
            // The product has exactly one diagonal entry; stripping the
            // diagonal removes precisely that entry.
            Ok(strip_diagonal(&product))
        } else {
            Ok(product)
        }
    }

    /// Materialise the *raw* Kronecker product `⊗_k A_k` without the final
    /// self-loop removal.  This is the form the parallel generator's factors
    /// need (removing per-factor loops before multiplying would change the
    /// product).
    pub fn realize_raw(&self, max_edges: u64) -> Result<CooMatrix<u64>, CoreError> {
        let raw_edges = self.nnz_with_loops();
        let vertices = self.vertices();
        if raw_edges > BigUint::from(max_edges) || vertices.to_u64().is_none() {
            return Err(CoreError::TooLargeToRealise {
                vertices: vertices.to_string(),
                edges: raw_edges.to_string(),
            });
        }
        let matrices: Vec<CooMatrix<u64>> =
            self.constituents.iter().map(|c| c.adjacency()).collect();
        Ok(kron_chain::<u64, PlusTimes>(&matrices)?)
    }

    /// Convenience: the star-point list of a pure star design, if it is one.
    pub fn star_points(&self) -> Option<Vec<u64>> {
        self.constituents
            .iter()
            .map(|c| c.as_star().map(|s| s.points()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_sparse::reduce::degree_distribution as measured_distribution;
    use kron_sparse::select::{empty_vertices, self_loop_count};
    use kron_sparse::triangles::count_triangles_coo;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn empty_design_rejected() {
        assert!(KroneckerDesign::from_star_points(&[], SelfLoop::None).is_err());
        assert!(KroneckerDesign::new(vec![]).is_err());
    }

    #[test]
    fn figure1_design_counts() {
        // Stars m̂ = {5, 3}: 24 vertices, 60 edges, 0 triangles, n(d) = 15/d.
        let design = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::None).unwrap();
        assert_eq!(design.vertices(), BigUint::from(24u64));
        assert_eq!(design.edges(), BigUint::from(60u64));
        assert_eq!(design.triangles().unwrap(), BigUint::zero());
        assert_eq!(design.product_self_loops(), BigUint::zero());
        let dist = design.degree_distribution();
        assert_eq!(dist.count(&BigUint::from(1u64)), BigUint::from(15u64));
        assert_eq!(dist.count(&BigUint::from(3u64)), BigUint::from(5u64));
        assert_eq!(dist.count(&BigUint::from(5u64)), BigUint::from(3u64));
        assert_eq!(dist.count(&BigUint::from(15u64)), BigUint::from(1u64));
        assert_eq!(
            dist.perfect_power_law_constant(),
            Some(BigUint::from(15u64))
        );
    }

    #[test]
    fn figure2_top_triangle_count() {
        // Centre loops on stars m̂ = {5, 3}: 15 triangles (paper Figure 2 top).
        let design = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::Centre).unwrap();
        assert_eq!(design.triangles().unwrap(), BigUint::from(15u64));
        assert_eq!(design.self_loop_vertex_degree(), Some(BigUint::from(24u64)));
        assert_eq!(design.edges(), BigUint::from(11 * 7 - 1u64));
    }

    #[test]
    fn figure2_bottom_triangle_count() {
        // Leaf loops on stars m̂ = {5, 3}: 1 triangle after loop removal.
        let design = KroneckerDesign::from_star_points(&[5, 3], SelfLoop::Leaf).unwrap();
        assert_eq!(design.triangles().unwrap(), BigUint::from(1u64));
        assert_eq!(design.self_loop_vertex_degree(), Some(BigUint::from(4u64)));
    }

    #[test]
    fn figure4_trillion_edge_design_exact_numbers() {
        // B = m̂{3,4,5,9,16,25} + centre loops, C = m̂{81,256} + centre loops.
        // The paper reports exactly 11,177,649,600 vertices,
        // 1,853,002,140,758 edges and 6,777,007,252,427 triangles.
        let design =
            KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::Centre)
                .unwrap();
        assert_eq!(design.vertices(), big("11177649600"));
        assert_eq!(design.edges(), big("1853002140758"));
        assert_eq!(design.triangles().unwrap(), big("6777007252427"));
        let dist = design.degree_distribution();
        assert_eq!(dist.total_vertices(), big("11177649600"));
        // Degree sum counts each edge endpoint once (row-nnz convention).
        assert_eq!(dist.total_edge_endpoints(), big("1853002140758"));
    }

    #[test]
    fn figure3_trillion_edge_loop_free_design() {
        // Same stars without self-loops: 11,177,649,600 vertices and
        // 1,146,617,856,000 edges with zero triangles.
        let design =
            KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::None)
                .unwrap();
        assert_eq!(design.vertices(), big("11177649600"));
        assert_eq!(design.edges(), big("1146617856000"));
        assert_eq!(design.triangles().unwrap(), BigUint::zero());
        // n(d)·d = ∏ m̂_k = 3·4·5·9·16·25·81·256 for every support point.
        assert_eq!(
            design.degree_distribution().perfect_power_law_constant(),
            Some(big("4478976000")),
        );
    }

    #[test]
    fn figure5_and_6_quadrillion_designs() {
        let points = [3u64, 4, 5, 9, 16, 25, 81, 256, 625];
        let plain = KroneckerDesign::from_star_points(&points, SelfLoop::None).unwrap();
        assert_eq!(plain.vertices(), big("6997208649600"));
        assert_eq!(plain.edges(), big("1433272320000000"));
        assert_eq!(plain.triangles().unwrap(), BigUint::zero());

        let looped = KroneckerDesign::from_star_points(&points, SelfLoop::Centre).unwrap();
        assert_eq!(looped.vertices(), big("6997208649600"));
        assert_eq!(looped.edges(), big("2318105678089508"));
        // The paper's Figure 6 caption reports 12,720,651,636,552,426
        // triangles; the exact integer value of the paper's own formula is
        // ...427 (the caption value sits just above 2^53, so it was almost
        // certainly rounded through a double).  See EXPERIMENTS.md.
        assert_eq!(looped.triangles().unwrap(), big("12720651636552427"));
    }

    #[test]
    fn figure7_decetta_design() {
        let points = [
            3u64, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
        ];
        let design = KroneckerDesign::from_star_points(&points, SelfLoop::Leaf).unwrap();
        assert_eq!(design.vertices(), big("144111718793178936483840000"));
        assert_eq!(design.edges(), big("2705963586782877716483871216764"));
        assert_eq!(design.triangles().unwrap(), big("178940587"));
    }

    #[test]
    fn properties_sheet_round_trip() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let props = design.properties();
        assert_eq!(props.vertices, design.vertices());
        assert_eq!(props.edges, design.edges());
        assert_eq!(props.triangles, Some(design.triangles().unwrap()));
        assert_eq!(props.self_loops, BigUint::zero());
        assert!(props.edge_vertex_ratio() > 1.0);
    }

    #[test]
    fn realized_graph_matches_predictions() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5], self_loop).unwrap();
            let graph = design.realize(1_000_000).unwrap();
            assert_eq!(BigUint::from(graph.nrows()), design.vertices());
            assert_eq!(BigUint::from(graph.nnz() as u64), design.edges());
            assert_eq!(self_loop_count(&graph) as u64, 0);
            assert!(
                empty_vertices(&graph).is_empty(),
                "no empty vertices ({self_loop:?})"
            );
            assert_eq!(
                BigUint::from(count_triangles_coo(&graph).unwrap()),
                design.triangles().unwrap(),
                "triangle mismatch for {self_loop:?}"
            );
            let measured = DegreeDistribution::from_histogram(&measured_distribution(&graph));
            assert_eq!(
                measured,
                design.degree_distribution(),
                "distribution ({self_loop:?})"
            );
        }
    }

    #[test]
    fn split_produces_b_and_c_factors() {
        let design =
            KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::None)
                .unwrap();
        let (b, c) = design.split(6).unwrap();
        assert_eq!(b.vertices(), BigUint::from(530_400u64));
        assert_eq!(b.edges(), BigUint::from(13_824_000u64));
        assert_eq!(c.vertices(), BigUint::from(21_074u64));
        assert_eq!(c.edges(), BigUint::from(82_944u64));
        assert_eq!(b.vertices() * c.vertices(), design.vertices());
        assert_eq!(b.edges() * c.edges(), design.edges());
        assert!(design.split(0).is_err());
        assert!(design.split(8).is_err());
    }

    #[test]
    fn realize_refuses_huge_designs() {
        let design = KroneckerDesign::from_star_points(&[81, 256, 625], SelfLoop::None).unwrap();
        assert!(matches!(
            design.realize(10_000),
            Err(CoreError::TooLargeToRealise { .. })
        ));
    }

    #[test]
    fn star_points_accessor() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
        assert_eq!(design.star_points(), Some(vec![3, 4, 5]));
    }

    #[test]
    fn triangles_unsupported_for_multi_loop_constituents() {
        use kron_sparse::CooMatrix;
        let two_loops = CooMatrix::from_edges(2, 2, vec![(0, 0), (1, 1), (0, 1), (1, 0)]).unwrap();
        let c = crate::constituent::Constituent::from_matrix(two_loops, 0).unwrap();
        let design = KroneckerDesign::new(vec![c]).unwrap();
        assert!(matches!(
            design.triangles(),
            Err(CoreError::UnsupportedTriangleStructure { .. })
        ));
        assert!(design.properties().triangles.is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kron_sparse::reduce::degree_distribution as measured_distribution;
    use kron_sparse::triangles::count_triangles_coo;
    use proptest::prelude::*;

    fn arb_self_loop() -> impl Strategy<Value = SelfLoop> {
        prop_oneof![
            Just(SelfLoop::None),
            Just(SelfLoop::Centre),
            Just(SelfLoop::Leaf)
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn predictions_match_realisation(points in proptest::collection::vec(1u64..7, 1..4),
                                         self_loop in arb_self_loop()) {
            let design = KroneckerDesign::from_star_points(&points, self_loop).unwrap();
            let graph = design.realize(2_000_000).unwrap();
            prop_assert_eq!(BigUint::from(graph.nnz() as u64), design.edges());
            prop_assert_eq!(BigUint::from(graph.nrows()), design.vertices());
            prop_assert_eq!(
                BigUint::from(count_triangles_coo(&graph).unwrap()),
                design.triangles().unwrap()
            );
            let measured = DegreeDistribution::from_histogram(&measured_distribution(&graph));
            prop_assert_eq!(measured, design.degree_distribution());
        }

        #[test]
        fn split_factors_multiply(points in proptest::collection::vec(1u64..9, 2..6),
                                  self_loop in arb_self_loop()) {
            let design = KroneckerDesign::from_star_points(&points, self_loop).unwrap();
            for split in 1..points.len() {
                let (b, c) = design.split(split).unwrap();
                prop_assert_eq!(b.vertices() * c.vertices(), design.vertices());
                prop_assert_eq!(b.nnz_with_loops() * c.nnz_with_loops(), design.nnz_with_loops());
            }
        }

        #[test]
        fn degree_distribution_is_consistent(points in proptest::collection::vec(1u64..20, 1..6),
                                             self_loop in arb_self_loop()) {
            let design = KroneckerDesign::from_star_points(&points, self_loop).unwrap();
            let dist = design.degree_distribution();
            prop_assert_eq!(dist.total_vertices(), design.vertices());
            prop_assert_eq!(dist.total_edge_endpoints(), design.edges());
        }
    }
}
