#![forbid(unsafe_code)]
//! `kron-lint`: a self-contained static-analysis pass over the
//! workspace's own Rust sources.
//!
//! The paper's validation story — measured == predicted at scales that
//! never materialise — rests on invariants the code used to enforce only
//! by convention: edge streams are bit-deterministic per `(seed, index)`
//! for any worker count, file sinks always take the fsync→rename atomic
//! path, and failures surface as typed errors naming the shard.  This
//! crate enforces those rules mechanically: a lightweight comment- and
//! string-aware lexer ([`lexer`]) feeds a rule engine ([`rules`]) with
//! per-rule diagnostics, `file:line` output, a JSON report mode, and an
//! inline suppression syntax (`// lint:allow(<rule>) -- <reason>`,
//! reason mandatory) so every exception is documented in place.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p kron-lint -- --deny
//! ```

pub mod changed;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use rules::{
    analyze_file, classify, collect_sources, lint_root, lint_source, lint_workspace,
    parse_suppressions, FileAnalysis, FileClass, FileKind, Finding, RULES,
};
