//! Stochastic Kronecker graphs (Leskovec et al. 2005).
//!
//! The second random baseline the paper builds on: a small probability
//! initiator matrix `P` is Kronecker-powered `k` times, and each cell of the
//! resulting probability matrix is sampled as an independent Bernoulli edge.
//! Like R-MAT (which is its edge-sampling approximation), the *expected*
//! properties are easy to write down but the *exact* properties of any given
//! realisation are only known after generation — the contrast the exact
//! star-product designs are built to avoid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A square probability initiator matrix for a stochastic Kronecker graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Initiator {
    size: usize,
    probabilities: Vec<f64>,
}

impl Initiator {
    /// Create an initiator from a row-major probability matrix.
    pub fn new(size: usize, probabilities: Vec<f64>) -> Result<Self, String> {
        if size == 0 {
            return Err("initiator must have at least one vertex".into());
        }
        if probabilities.len() != size * size {
            return Err(format!(
                "expected {} probabilities for a {size}x{size} initiator, got {}",
                size * size,
                probabilities.len()
            ));
        }
        if probabilities.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err("probabilities must lie in [0, 1]".into());
        }
        Ok(Initiator {
            size,
            probabilities,
        })
    }

    /// The classic 2×2 initiator matching the Graph500 R-MAT parameters.
    pub fn graph500_like() -> Self {
        // lint:allow(no-expect) -- the Graph500 initiator constants are a compile-time-valid probability vector
        Initiator::new(2, vec![0.57, 0.19, 0.19, 0.05]).expect("valid probabilities")
    }

    /// Side length of the initiator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Probability of cell `(i, j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.probabilities[i * self.size + j]
    }

    /// Sum of all probabilities (expected edges per Kronecker power step is
    /// this value raised to the power).
    pub fn total_probability(&self) -> f64 {
        self.probabilities.iter().sum()
    }

    /// Expected number of edges of the `k`-th Kronecker power realisation.
    pub fn expected_edges(&self, k: u32) -> f64 {
        self.total_probability().powi(k as i32)
    }

    /// Number of vertices of the `k`-th Kronecker power, `size^k`.
    pub fn vertices(&self, k: u32) -> u64 {
        (self.size as u64).pow(k)
    }
}

/// A seeded stochastic Kronecker graph sampler.
#[derive(Debug, Clone)]
pub struct StochasticKronecker {
    initiator: Initiator,
    power: u32,
    seed: u64,
}

impl StochasticKronecker {
    /// Create a sampler for the `power`-th Kronecker power of the initiator.
    pub fn new(initiator: Initiator, power: u32, seed: u64) -> Result<Self, String> {
        if power == 0 {
            return Err("Kronecker power must be at least 1".into());
        }
        let vertices = (initiator.size() as f64).powi(power as i32);
        if vertices > 1e9 {
            return Err(format!(
                "initiator^{power} would have {vertices:.0} vertices; refusing to enumerate cells"
            ));
        }
        Ok(StochasticKronecker {
            initiator,
            power,
            seed,
        })
    }

    /// The initiator matrix.
    pub fn initiator(&self) -> &Initiator {
        &self.initiator
    }

    /// Number of vertices of the sampled graph.
    pub fn vertices(&self) -> u64 {
        self.initiator.vertices(self.power)
    }

    /// The probability of the directed edge `(u, v)`: the product of the
    /// initiator cells addressed by the base-`size` digits of `u` and `v`.
    pub fn edge_probability(&self, u: u64, v: u64) -> f64 {
        let base = self.initiator.size() as u64;
        let mut p = 1.0;
        let mut uu = u;
        let mut vv = v;
        for _ in 0..self.power {
            let i = (uu % base) as usize;
            let j = (vv % base) as usize;
            p *= self.initiator.prob(i, j);
            uu /= base;
            vv /= base;
        }
        p
    }

    /// Sample one realisation: every cell of the probability matrix is an
    /// independent Bernoulli draw.  Exact (per the model definition) but
    /// O(vertices²); use the ball-dropping R-MAT sampler for large scales.
    pub fn sample_exact(&self) -> Vec<(u64, u64)> {
        let n = self.vertices();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if rng.gen::<f64>() < self.edge_probability(u, v) {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    /// Expected number of edges of a realisation.
    pub fn expected_edges(&self) -> f64 {
        self.initiator.expected_edges(self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_edge_list;

    #[test]
    fn initiator_validation() {
        assert!(Initiator::new(0, vec![]).is_err());
        assert!(Initiator::new(2, vec![0.5; 3]).is_err());
        assert!(Initiator::new(2, vec![0.5, 0.5, 0.5, 1.5]).is_err());
        let init = Initiator::graph500_like();
        assert_eq!(init.size(), 2);
        assert!((init.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_counts() {
        let init = Initiator::new(2, vec![0.9, 0.5, 0.5, 0.1]).unwrap();
        assert_eq!(init.vertices(3), 8);
        assert!((init.expected_edges(3) - 8.0).abs() < 1e-9);
        let sampler = StochasticKronecker::new(init, 3, 1).unwrap();
        assert_eq!(sampler.vertices(), 8);
        assert!((sampler.expected_edges() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn edge_probability_is_product_of_digits() {
        let init = Initiator::new(2, vec![0.8, 0.4, 0.2, 0.6]).unwrap();
        let sampler = StochasticKronecker::new(init, 2, 1).unwrap();
        // u = 0b10, v = 0b01: digits (0,1) then (1,0) -> 0.4 * 0.2.
        assert!((sampler.edge_probability(0b10, 0b01) - 0.4 * 0.2).abs() < 1e-12);
        // u = v = 0: product of the (0,0) cell with itself.
        assert!((sampler.edge_probability(0, 0) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn deterministic_boundaries() {
        // All-ones initiator gives the complete graph; all-zeros gives empty.
        let full =
            StochasticKronecker::new(Initiator::new(2, vec![1.0; 4]).unwrap(), 3, 7).unwrap();
        assert_eq!(full.sample_exact().len() as u64, 8 * 8);
        let empty =
            StochasticKronecker::new(Initiator::new(2, vec![0.0; 4]).unwrap(), 3, 7).unwrap();
        assert!(empty.sample_exact().is_empty());
    }

    #[test]
    fn realisation_is_close_to_expectation_but_not_exact() {
        let sampler = StochasticKronecker::new(Initiator::graph500_like(), 9, 123).unwrap();
        // Expected edges = 1.0^9 = 1 per... use a denser initiator for a
        // meaningful count.
        let dense =
            StochasticKronecker::new(Initiator::new(2, vec![0.9, 0.6, 0.6, 0.3]).unwrap(), 8, 123)
                .unwrap();
        let edges = dense.sample_exact();
        let expected = dense.expected_edges();
        let got = edges.len() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "sampled {got} edges, expected ~{expected}"
        );
        // But the exact count is a random variable — a different seed gives a
        // different graph, which is precisely what the exact designs avoid.
        let other =
            StochasticKronecker::new(Initiator::new(2, vec![0.9, 0.6, 0.6, 0.3]).unwrap(), 8, 124)
                .unwrap();
        assert_ne!(edges.len(), other.sample_exact().len());
        drop(sampler);
    }

    #[test]
    fn measured_realisation_shows_random_generator_artefacts() {
        let sampler = StochasticKronecker::new(
            Initiator::new(2, vec![0.95, 0.55, 0.55, 0.25]).unwrap(),
            8,
            42,
        )
        .unwrap();
        let edges = sampler.sample_exact();
        let stats = measure_edge_list(sampler.vertices(), &edges);
        assert!(stats.self_loops > 0, "diagonal cells get sampled too");
        assert!(stats.empty_vertices > 0, "low-probability rows stay empty");
    }

    #[test]
    fn refuses_unenumerable_scales() {
        assert!(StochasticKronecker::new(Initiator::graph500_like(), 0, 1).is_err());
        assert!(StochasticKronecker::new(Initiator::graph500_like(), 40, 1).is_err());
    }
}
