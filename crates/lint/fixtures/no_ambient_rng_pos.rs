//@ path: crates/core/src/under_test.rs
pub fn sample() -> (u64, u64) {
    let a = rand::random(); //~ no-ambient-rng
    let mut rng = rand::thread_rng(); //~ no-ambient-rng
    (a, rng.next_u64())
}
