//! Side-by-side comparison of the exact Kronecker generator with the R-MAT
//! baseline at the same scale: structural cleanliness, degree-distribution
//! exactness, and the cost of knowing the properties.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rmat_comparison
//! ```

use std::time::Instant;

use extreme_graphs::core::validate::measure_properties;
use extreme_graphs::rmat::{measure_edge_list, RmatGenerator, RmatParams};
use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};

fn main() {
    // Pick designs of comparable size: the Kronecker design below has
    // 530,400 vertices and 13,824,000 edges (the paper's B factor); R-MAT at
    // scale 19 / edge factor 16 requests 8,388,608 edge samples over 524,288
    // vertices.
    let kron_points = [3u64, 4, 5, 9, 16, 25];
    let rmat_params = RmatParams::graph500(19);

    // --- Kronecker ----------------------------------------------------------
    println!("=== exact Kronecker generator ===");
    let design =
        KroneckerDesign::from_star_points(&kron_points, SelfLoop::None).expect("valid design");
    let predict_start = Instant::now();
    let properties = design.properties();
    let predict_elapsed = predict_start.elapsed();
    println!("properties known before generation (computed in {predict_elapsed:?}):");
    println!("{properties}");

    let generate_start = Instant::now();
    let report = Pipeline::for_design(&design)
        .workers(8)
        .max_c_edges(200_000)
        .collect_coo()
        .expect("design fits in memory");
    let generate_elapsed = generate_start.elapsed();
    println!(
        "\ngenerated {} edges in {:?} ({:.1} Medges/s), per-worker imbalance {} edges",
        report.edge_count(),
        generate_elapsed,
        report.stats.edges_per_second() / 1e6,
        report.stats.imbalance(),
    );
    let assembled = report.assemble();
    let measured = measure_properties(&assembled).expect("measurement succeeds");
    println!(
        "structural artefacts: {} self-loops, {} duplicate edges, {} empty vertices",
        measured.self_loops, 0, 0,
    );
    println!(
        "measured degree distribution equals prediction: {}",
        measured.degree_distribution == properties.degree_distribution
    );

    // --- R-MAT --------------------------------------------------------------
    println!("\n=== R-MAT baseline (Graph500 parameters, scale 19) ===");
    println!("properties known before generation: none — they must be measured afterwards.");
    let rmat_start = Instant::now();
    let rmat = RmatGenerator::new(rmat_params, 20180304).expect("valid parameters");
    let edges = rmat.generate_edges_parallel(8);
    let rmat_elapsed = rmat_start.elapsed();
    let stats = measure_edge_list(rmat_params.vertices(), &edges);
    println!(
        "sampled {} edges in {:?}; after cleaning: {} unique edges ({:.1}% of samples wasted)",
        stats.raw_edges,
        rmat_elapsed,
        stats.unique_edges,
        stats.waste_fraction() * 100.0,
    );
    println!(
        "structural artefacts: {} self-loop samples, {} duplicate samples, {} empty vertices",
        stats.self_loops,
        stats.raw_edges - stats.unique_edges - stats.self_loops,
        stats.empty_vertices,
    );
    println!(
        "measured max degree {} and fitted power-law slope {:.3} — only known after generation",
        stats.max_degree,
        stats.alpha().unwrap_or(f64::NAN),
    );

    println!("\nsummary:");
    println!("  Kronecker: properties exact and known up front; graph is clean by construction.");
    println!("  R-MAT:     properties approximate and only known after generating and measuring;");
    println!("             output needs de-duplication, loop removal, and re-indexing first.");
}
