//! Fixture tests for the lint engine itself.
//!
//! Every file under `fixtures/` is a miniature workspace source with a
//! virtual path header and expected-diagnostic annotations:
//!
//! ```text
//! //@ path: crates/gen/src/under_test.rs   (mandatory virtual path)
//! //@ expect: <rule>@<line>                (header-form expectation)
//! some_code() //~ <rule>                   (inline-form expectation)
//! ```
//!
//! The harness runs the engine over each fixture under its virtual path
//! and requires the set of *unsuppressed* findings to equal the set of
//! annotations exactly — so every rule has a positive case proving it
//! fires and a negative case proving it stays silent.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use kron_lint::lint_source;

type Expectation = (String, u32);

fn parse_fixture(name: &str, source: &str) -> (String, BTreeSet<Expectation>) {
    let mut path = None;
    let mut expected = BTreeSet::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let trimmed = line.trim();
        if let Some(p) = trimmed.strip_prefix("//@ path:") {
            path = Some(p.trim().to_string());
        } else if let Some(e) = trimmed.strip_prefix("//@ expect:") {
            let (rule, at) = e
                .trim()
                .split_once('@')
                .unwrap_or_else(|| panic!("{name}:{lineno}: malformed //@ expect"));
            let at: u32 = at
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{name}:{lineno}: bad line in //@ expect"));
            expected.insert((rule.trim().to_string(), at));
        }
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split(',') {
                let rule = rule.trim();
                assert!(!rule.is_empty(), "{name}:{lineno}: empty //~ annotation");
                expected.insert((rule.to_string(), lineno));
            }
        }
    }
    let path = path.unwrap_or_else(|| panic!("{name}: fixture lacks a //@ path header"));
    (path, expected)
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<_> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 22,
        "expected a positive and a negative fixture per rule, found {}",
        names.len()
    );

    let mut failures = Vec::new();
    for path in &names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let source = fs::read_to_string(path).expect("readable fixture");
        let (virtual_path, expected) = parse_fixture(name, &source);
        let actual: BTreeSet<Expectation> = lint_source(&virtual_path, &source)
            .into_iter()
            .filter(|f| !f.suppressed)
            .map(|f| (f.rule.to_string(), f.line))
            .collect();
        if actual != expected {
            let missing: Vec<_> = expected.difference(&actual).collect();
            let surplus: Vec<_> = actual.difference(&expected).collect();
            failures.push(format!(
                "{name}: missing={missing:?} unexpected={surplus:?}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_rule_has_positive_and_negative_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let names: BTreeSet<String> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable fixture entry").file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .collect();
    for (rule, _) in kron_lint::RULES {
        let stem = rule.replace('-', "_");
        for suffix in ["pos", "neg"] {
            let want = format!("{stem}_{suffix}.rs");
            assert!(names.contains(&want), "missing fixture {want} for {rule}");
        }
    }
}
