//! Out-of-core shard driver throughput.
//!
//! The shard driver is the path that removes the `max_total_edges` ceiling:
//! edges stream from the Kronecker expansion through per-worker sinks and a
//! streaming degree histogram, and nothing proportional to the edge count is
//! ever held in memory.  This bench measures what that costs (and buys)
//! against the materialising [`ParallelGenerator`]:
//!
//! * `driver_counting_w{N}` — full driver runs (generation + streamed
//!   histogram + validation-ready measurement) with counting sinks, across
//!   worker counts: the Figure-3 sweep as the driver runs it.
//! * `materialise_generator_w{N}` — the materialising generator on the same
//!   design, for the memory-bound comparison.
//! * `driver_tsv_w4` / `driver_binary_w4` — the same driver writing real
//!   TSV and interleaved-binary shards (smaller design; these are disk
//!   benchmarks).
//!
//! Results are printed and written as machine-readable JSON to
//! `BENCH_shard_driver.json` at the workspace root, so successive PRs can
//! track the trajectory.

// The legacy driver and generator entry points are this benchmark's
// subject: they are measured against each other on purpose.
#![allow(deprecated)]

use std::time::{Duration, Instant};

use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{DriverConfig, GeneratorConfig, ParallelGenerator, ShardDriver};

/// The paper's `B` factor from Figures 3/4 (13,824,000 edges) for in-memory
/// paths, and the same structure minus the last star (276,480 edges) for the
/// disk-writing sinks.
const BENCH_POINTS: &[u64] = &[3, 4, 5, 9, 16, 25];
const DISK_POINTS: &[u64] = &[3, 4, 5, 9, 16];
const BENCH_SPLIT: usize = 2;
const SAMPLES: usize = 5;

struct Measurement {
    name: String,
    median: Duration,
    edges_per_sec: f64,
}

fn measure(name: impl Into<String>, edges: u64, mut pass: impl FnMut() -> u64) -> Measurement {
    let name = name.into();
    assert_eq!(pass(), edges, "{name} produced the wrong number of edges");
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            criterion::black_box(pass());
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    Measurement {
        name,
        median,
        edges_per_sec: edges as f64 / median.as_secs_f64(),
    }
}

fn driver(workers: usize) -> ShardDriver {
    ShardDriver::new(DriverConfig {
        workers,
        max_c_edges: 1 << 20,
        max_b_edges: 1 << 24,
        ..DriverConfig::default()
    })
}

fn main() {
    let design =
        KroneckerDesign::from_star_points(BENCH_POINTS, SelfLoop::None).expect("valid design");
    let edges = design.edges().to_u64().expect("bench scale");
    println!("shard_driver: {edges} edges per pass");

    let mut results: Vec<Measurement> = Vec::new();
    let worker_counts = [1usize, 2, 4, 8];
    for &workers in &worker_counts {
        results.push(measure(
            format!("driver_counting_w{workers}"),
            edges,
            || {
                let run = driver(workers)
                    .run_counting(&design, BENCH_SPLIT)
                    .expect("factors fit");
                assert!(run.validate().is_exact_match());
                run.stats.total_edges
            },
        ));
    }
    for &workers in &[1usize, 4] {
        let generator = ParallelGenerator::new(GeneratorConfig {
            workers,
            max_c_edges: 1 << 20,
            max_total_edges: 50_000_000,
        });
        results.push(measure(
            format!("materialise_generator_w{workers}"),
            edges,
            || {
                let graph = generator
                    .generate_with_split(&design, BENCH_SPLIT)
                    .expect("fits in memory");
                graph.edge_count()
            },
        ));
    }

    let disk_design =
        KroneckerDesign::from_star_points(DISK_POINTS, SelfLoop::None).expect("valid design");
    let disk_edges = disk_design.edges().to_u64().expect("bench scale");
    let shard_dir = std::env::temp_dir().join("kron_bench_shard_driver");
    results.push(measure(
        format!("driver_tsv_w4_{disk_edges}e"),
        disk_edges,
        || {
            let (run, _) = driver(4)
                .run_tsv(&disk_design, BENCH_SPLIT, &shard_dir)
                .expect("shards write");
            run.stats.total_edges
        },
    ));
    results.push(measure(
        format!("driver_binary_w4_{disk_edges}e"),
        disk_edges,
        || {
            let (run, _) = driver(4)
                .run_binary(&disk_design, BENCH_SPLIT, &shard_dir)
                .expect("shards write");
            run.stats.total_edges
        },
    ));
    std::fs::remove_dir_all(&shard_dir).ok();

    for m in &results {
        println!(
            "  {:<28} median {:>12?}  {:>9.1} Medges/s",
            m.name,
            m.median,
            m.edges_per_sec / 1e6
        );
    }
    let rate_of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no measurement named {name}"))
            .edges_per_sec
    };
    let scaling_1_to_4 = rate_of("driver_counting_w4") / rate_of("driver_counting_w1");
    let driver_vs_materialise = rate_of("driver_counting_w4") / rate_of("materialise_generator_w4");
    println!("  driver counting scaling 1 -> 4 workers:   {scaling_1_to_4:.2}x");
    println!("  driver(4) vs materialising generator(4):  {driver_vs_materialise:.2}x");

    let json_entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"seconds\": {:.6}, \"edges_per_sec\": {:.0}}}",
                m.name,
                m.median.as_secs_f64(),
                m.edges_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shard_driver\",\n  \"design\": {{\"points\": {:?}, \"split_index\": {}, \"edges\": {}}},\n  \"samples\": {},\n  \"results\": [\n{}\n  ],\n  \"driver_counting_scaling_1_to_4\": {:.3},\n  \"driver_vs_materialise_w4\": {:.3}\n}}\n",
        BENCH_POINTS,
        BENCH_SPLIT,
        edges,
        SAMPLES,
        json_entries.join(",\n"),
        scaling_1_to_4,
        driver_vs_materialise
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard_driver.json");
    std::fs::write(out_path, &json).expect("write BENCH_shard_driver.json");
    println!("wrote {out_path}");
}
