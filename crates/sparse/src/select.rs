//! Structural selection: submatrices, diagonals, self-loop handling.
//!
//! The paper's triangle-rich graphs are built by *adding* a self-loop to each
//! constituent star and then *removing* the single surviving self-loop from
//! the product.  These helpers implement both directions plus the submatrix
//! extraction used when verifying per-processor blocks.

use crate::coo::CooMatrix;
use crate::semiring::{PlusTimes, Scalar, Semiring};

/// Return a copy of `m` without any diagonal entries (self-loops).
pub fn strip_diagonal<T: Scalar>(m: &CooMatrix<T>) -> CooMatrix<T> {
    m.filter(|r, c, _| r != c)
}

/// Return a copy of `m` containing only its diagonal entries.
pub fn diagonal<T: Scalar>(m: &CooMatrix<T>) -> CooMatrix<T> {
    m.filter(|r, c, _| r == c)
}

/// Return a copy of `m` with the single entry at `(index, index)` removed.
///
/// This is the paper's "set `A(1,1) = 0`" (Case 1) / "set `A(m,m) = 0`"
/// (Case 2) step that removes the one self-loop surviving in the Kronecker
/// product of self-looped stars.
pub fn remove_entry<T: Scalar>(m: &CooMatrix<T>, row: u64, col: u64) -> CooMatrix<T> {
    m.filter(|r, c, _| !(r == row && c == col))
}

/// Add a value on the diagonal at `(index, index)` (e.g. insert a self-loop).
pub fn with_entry<T: Scalar>(m: &CooMatrix<T>, row: u64, col: u64, val: T) -> CooMatrix<T> {
    let mut out = m.clone();
    out.push(row, col, val)
        // lint:allow(no-expect) -- entries come from a CooMatrix whose constructor bounds-checked them
        .expect("entry must be inside matrix bounds");
    out
}

/// Extract the submatrix with rows in `[row_start, row_end)` and columns in
/// `[col_start, col_end)`, re-indexed to start at zero.
pub fn submatrix<T: Scalar>(
    m: &CooMatrix<T>,
    row_range: std::ops::Range<u64>,
    col_range: std::ops::Range<u64>,
) -> CooMatrix<T> {
    let nrows = row_range.end.saturating_sub(row_range.start);
    let ncols = col_range.end.saturating_sub(col_range.start);
    let mut out = CooMatrix::new(nrows, ncols);
    for (r, c, v) in m.iter() {
        if row_range.contains(&r) && col_range.contains(&c) {
            out.push(r - row_range.start, c - col_range.start, v)
                // lint:allow(no-expect) -- re-indexed entries are positions in the kept-vertex map built above
                .expect("re-indexed entry is in bounds by construction");
        }
    }
    out
}

/// Indices of rows with no stored entries in either the row or the column
/// direction ("empty vertices" in the paper's terminology).
pub fn empty_vertices<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    assert!(
        m.is_square(),
        "empty_vertices requires a square adjacency matrix"
    );
    let n = crate::addressable(m.nrows(), "vertex bitmap must fit in memory");
    let mut touched = vec![false; n];
    for (r, c, _) in m.iter() {
        touched[r as usize] = true;
        touched[c as usize] = true;
    }
    touched
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| if t { None } else { Some(i as u64) })
        .collect()
}

/// Number of self-loop entries (stored diagonal entries) in the matrix.
pub fn self_loop_count<T: Scalar>(m: &CooMatrix<T>) -> usize {
    m.diagonal_nnz()
}

/// Check that the pattern contains no duplicate coordinates.
pub fn has_duplicates<T: Scalar>(m: &CooMatrix<T>) -> bool {
    let mut coords: Vec<(u64, u64)> = m.iter().map(|(r, c, _)| (r, c)).collect();
    let before = coords.len();
    coords.sort_unstable();
    coords.dedup();
    coords.len() != before
}

/// Convenience: canonical simple-graph form — duplicates combined, diagonal
/// stripped, result returned as a fresh matrix.
pub fn simplify(m: &CooMatrix<u64>) -> CooMatrix<u64> {
    let mut out = strip_diagonal(m);
    out.sum_duplicates::<PlusTimes>();
    out
}

/// Check the structural invariants the paper advertises for generated graphs:
/// no empty vertices, no self-loops, no duplicate edges.
pub fn is_clean_adjacency<T: Scalar>(m: &CooMatrix<T>) -> bool
where
    PlusTimes: Semiring<T>,
{
    m.is_square() && self_loop_count(m) == 0 && !has_duplicates(m) && empty_vertices(m).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix<u64> {
        CooMatrix::from_entries(
            4,
            4,
            vec![
                (0, 0, 1),
                (0, 1, 2),
                (1, 0, 2),
                (2, 2, 3),
                (3, 1, 4),
                (1, 3, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn strip_and_extract_diagonal() {
        let m = sample();
        let stripped = strip_diagonal(&m);
        assert_eq!(stripped.nnz(), 4);
        assert_eq!(self_loop_count(&stripped), 0);
        let diag = diagonal(&m);
        assert_eq!(diag.nnz(), 2);
        assert_eq!(diag.get::<PlusTimes>(2, 2), 3);
    }

    #[test]
    fn remove_and_add_entries() {
        let m = sample();
        let removed = remove_entry(&m, 0, 0);
        assert_eq!(removed.nnz(), m.nnz() - 1);
        assert_eq!(removed.get::<PlusTimes>(0, 0), 0);
        let restored = with_entry(&removed, 0, 0, 1);
        assert_eq!(restored.get::<PlusTimes>(0, 0), 1);
    }

    #[test]
    fn submatrix_reindexes() {
        let m = sample();
        let sub = submatrix(&m, 0..2, 0..2);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.nnz(), 3);
        assert_eq!(sub.get::<PlusTimes>(0, 1), 2);
        let lower = submatrix(&m, 2..4, 0..4);
        assert_eq!(lower.nrows(), 2);
        assert_eq!(lower.get::<PlusTimes>(1, 1), 4); // original (3,1)
        let empty = submatrix(&m, 3..3, 0..4);
        assert_eq!(empty.nrows(), 0);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn empty_vertex_detection() {
        let m = CooMatrix::from_edges(5, 5, vec![(0, 1), (1, 0), (3, 3)]).unwrap();
        assert_eq!(empty_vertices(&m), vec![2, 4]);
        let full = CooMatrix::from_edges(2, 2, vec![(0, 1), (1, 0)]).unwrap();
        assert!(empty_vertices(&full).is_empty());
    }

    #[test]
    fn duplicate_detection_and_simplify() {
        let m = CooMatrix::from_entries(3, 3, vec![(0, 1, 1u64), (0, 1, 1), (1, 1, 1), (1, 0, 1)])
            .unwrap();
        assert!(has_duplicates(&m));
        let simple = simplify(&m);
        assert!(!has_duplicates(&simple));
        assert_eq!(self_loop_count(&simple), 0);
        assert_eq!(simple.get::<PlusTimes>(0, 1), 2);
    }

    #[test]
    fn clean_adjacency_invariants() {
        let clean =
            CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
                .unwrap();
        assert!(is_clean_adjacency(&clean));
        let with_loop = with_entry(&clean, 0, 0, 1);
        assert!(!is_clean_adjacency(&with_loop));
        let with_empty = CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0)]).unwrap();
        assert!(!is_clean_adjacency(&with_empty));
        let rect = CooMatrix::from_edges(2, 3, vec![(0, 1)]).unwrap();
        assert!(!is_clean_adjacency(&rect));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (2u64..12).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n, 1u64..3), 0..40)
                .prop_map(move |es| CooMatrix::from_entries(n, n, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn diagonal_partition(m in arb_coo()) {
            let on = diagonal(&m).nnz();
            let off = strip_diagonal(&m).nnz();
            prop_assert_eq!(on + off, m.nnz());
        }

        #[test]
        fn simplify_is_idempotent(m in arb_coo()) {
            let once = simplify(&m);
            let twice = simplify(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn submatrix_never_exceeds_parent_nnz(m in arb_coo()) {
            let n = m.nrows();
            let sub = submatrix(&m, 0..n / 2, 0..n);
            prop_assert!(sub.nnz() <= m.nnz());
        }
    }
}
