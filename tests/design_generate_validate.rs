//! End-to-end integration tests spanning the whole workspace:
//! design (kron-core) → parallel generation (kron-gen) → measurement and
//! validation, plus cross-checks against brute-force computation on the
//! sparse substrate (kron-sparse).

// The deprecated generator entry points are exercised deliberately: these
// tests pin the legacy wrappers to the behaviour of the pipeline they now
// delegate to (see tests/pipeline_equivalence.rs for the direct comparison).
#![allow(deprecated)]

use extreme_graphs::bignum::BigUint;
use extreme_graphs::core::validate::{measure_properties, validate_design};
use extreme_graphs::gen::measure::{
    measured_degree_distribution, measured_properties, BalanceReport,
};
use extreme_graphs::sparse::reduce::degree_distribution as sparse_histogram;
use extreme_graphs::sparse::select::{empty_vertices, has_duplicates, self_loop_count};
use extreme_graphs::sparse::triangles::{count_triangles_coo, count_triangles_merge};
use extreme_graphs::sparse::{CsrMatrix, PlusTimes};
use extreme_graphs::{
    DegreeDistribution, GeneratorConfig, KroneckerDesign, ParallelGenerator, SelfLoop,
};

fn generator(workers: usize) -> ParallelGenerator {
    ParallelGenerator::new(GeneratorConfig {
        workers,
        max_c_edges: 100_000,
        max_total_edges: 20_000_000,
    })
}

#[test]
fn full_pipeline_matches_for_every_self_loop_mode() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
        let predicted = design.properties();

        // Distributed generation.
        let graph = generator(4).generate(&design).unwrap();
        let distributed = measured_properties(&graph, 20_000_000).unwrap();
        assert!(
            predicted.exactly_matches(&distributed),
            "distributed measurement disagrees with design for {self_loop:?}"
        );

        // Assembled matrix, measured through the sparse substrate directly.
        let assembled = graph.assemble();
        assert_eq!(
            self_loop_count(&assembled),
            0,
            "final graph must be loop-free"
        );
        assert!(
            !has_duplicates(&assembled),
            "final graph must have no duplicate edges"
        );
        assert!(
            empty_vertices(&assembled).is_empty(),
            "final graph must have no empty vertices"
        );

        let measured = measure_properties(&assembled).unwrap();
        assert!(
            predicted.exactly_matches(&measured),
            "assembled measurement disagrees"
        );

        // Triangle count cross-checked with an independent algorithm.
        let csr = CsrMatrix::from_coo::<PlusTimes>(&assembled).unwrap();
        assert_eq!(
            BigUint::from(count_triangles_merge(&csr).unwrap()),
            design.triangles().unwrap(),
            "merge-based triangle count disagrees for {self_loop:?}"
        );
    }
}

#[test]
fn validate_design_end_to_end_reports_exact_match() {
    let design = KroneckerDesign::from_star_points(&[5, 9, 16], SelfLoop::Centre).unwrap();
    let report = validate_design(&design, 10_000_000).unwrap();
    assert!(report.is_exact_match(), "failures: {:?}", report.failures());
}

#[test]
fn worker_count_is_an_implementation_detail() {
    // The paper's guarantee: the generated graph is a deterministic function
    // of the design, regardless of how many processors generate it.
    let design = KroneckerDesign::from_star_points(&[3, 5, 9, 16], SelfLoop::Leaf).unwrap();
    let mut reference = generator(1).generate(&design).unwrap().assemble();
    reference.sort();
    for workers in [2usize, 3, 7, 16] {
        let mut graph = generator(workers).generate(&design).unwrap().assemble();
        graph.sort();
        assert_eq!(
            graph, reference,
            "graph content changed with {workers} workers"
        );
    }
}

#[test]
fn distributed_measurement_equals_assembled_measurement() {
    let design = KroneckerDesign::from_star_points(&[4, 5, 9, 16], SelfLoop::Centre).unwrap();
    let graph = generator(6).generate(&design).unwrap();
    let from_blocks = measured_degree_distribution(&graph);
    let assembled = graph.assemble();
    let from_assembled = DegreeDistribution::from_histogram(&sparse_histogram(&assembled));
    assert_eq!(from_blocks, from_assembled);
    assert_eq!(from_blocks, design.degree_distribution());
}

#[test]
fn per_worker_balance_is_within_one_b_triple() {
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
    for workers in [2usize, 4, 8, 12] {
        let graph = generator(workers).generate(&design).unwrap();
        let balance = BalanceReport::of(&graph);
        let c_nnz = graph.split.c_nnz.to_u64().unwrap();
        assert!(
            balance.is_balanced_within(c_nnz),
            "imbalance {} exceeds one B triple ({c_nnz} edges) with {workers} workers",
            balance.max_edges - balance.min_edges,
        );
    }
}

#[test]
fn paper_scale_properties_do_not_require_generation() {
    // The full Figure 4 design is far too large to generate here, but its
    // exact properties are instant.
    let design =
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::Centre)
            .unwrap();
    assert_eq!(design.vertices().to_string(), "11177649600");
    assert_eq!(design.edges().to_string(), "1853002140758");
    assert_eq!(design.triangles().unwrap().to_string(), "6777007252427");
    // And generation refuses politely instead of exhausting memory.
    assert!(generator(4).generate(&design).is_err());
}

#[test]
fn design_distribution_agrees_with_brute_force_kron_of_histograms() {
    // Cross-check the analytic degree distribution against measuring the
    // realised graph through the sparse substrate, for a mixed star set.
    let design = KroneckerDesign::from_star_points(&[2, 7, 11], SelfLoop::Centre).unwrap();
    let graph = design.realize(10_000_000).unwrap();
    let measured = DegreeDistribution::from_histogram(&sparse_histogram(&graph));
    assert_eq!(measured, design.degree_distribution());
    assert_eq!(
        BigUint::from(count_triangles_coo(&graph).unwrap()),
        design.triangles().unwrap()
    );
}
