//@ path: crates/core/src/under_test.rs
pub fn run() -> Result<(), Box<dyn std::error::Error>> { //~ box-dyn-error
    Ok(())
}
