//! # kron-bignum
//!
//! Arbitrary-precision arithmetic used by the extreme-scale Kronecker graph
//! designer ([`kron-core`](https://docs.rs/kron-core)).
//!
//! The paper this workspace reproduces (Kepner et al., *Design, Generation,
//! and Validation of Extreme Scale Power-Law Graphs*, 2018) analyses graphs
//! with up to 10^30 edges.  Vertex, edge, degree, and triangle counts at that
//! scale do not fit in `u64`, and some (products of degree counts) do not fit
//! in `u128` either, so every exact property computation in the workspace is
//! done with the types in this crate:
//!
//! * [`BigUint`] — an arbitrary-precision unsigned integer stored as 64-bit
//!   little-endian limbs.
//! * [`BigInt`] — a signed wrapper (sign + magnitude) used by correction
//!   formulas that subtract before dividing.
//! * [`BigRatio`] — an exact rational built on [`BigInt`]/[`BigUint`], used
//!   for power-law slope fits and for the triangle correction terms
//!   `N_tri - m/2 + 1/3` before they are proven integral.
//!
//! The crate is deliberately self-contained (no external bignum dependency)
//! so the workspace builds offline and the arithmetic core can be audited in
//! one place.
//!
//! ## Example
//!
//! ```
//! use kron_bignum::BigUint;
//!
//! // Number of edges in the paper's Figure 7 decetta-scale design.
//! let e: BigUint = "2705963586782877716483871216764".parse().unwrap();
//! assert_eq!(e.to_string(), "2705963586782877716483871216764");
//! assert!(e > BigUint::from(u64::MAX), "far beyond 64-bit counters");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod format;
mod ratio;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseBigUintError};
pub use format::{grouped, scientific};
pub use ratio::BigRatio;

/// Multiply an iterator of values convertible to [`BigUint`] into a single
/// exact product. Returns one for an empty iterator (the empty product).
///
/// ```
/// use kron_bignum::{product_of, BigUint};
/// let p = product_of([7u64, 9, 11, 19, 33, 51]);
/// assert_eq!(p, BigUint::from(22_160_061u64));
/// ```
pub fn product_of<I, T>(items: I) -> BigUint
where
    I: IntoIterator<Item = T>,
    T: Into<BigUint>,
{
    let mut acc = BigUint::one();
    for item in items {
        acc *= item.into();
    }
    acc
}

/// Sum an iterator of values convertible to [`BigUint`].
///
/// ```
/// use kron_bignum::{sum_of, BigUint};
/// assert_eq!(sum_of([1u64, 2, 3]), BigUint::from(6u64));
/// ```
pub fn sum_of<I, T>(items: I) -> BigUint
where
    I: IntoIterator<Item = T>,
    T: Into<BigUint>,
{
    let mut acc = BigUint::zero();
    for item in items {
        acc += item.into();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_of_empty_is_one() {
        assert_eq!(product_of(Vec::<u64>::new()), BigUint::one());
    }

    #[test]
    fn sum_of_empty_is_zero() {
        assert_eq!(sum_of(Vec::<u64>::new()), BigUint::zero());
    }

    #[test]
    fn product_matches_paper_figure4_b_edges() {
        // Constituent star edge counts for B in Figure 4 (centre self-loops):
        // 2*m̂+1 for m̂ = {3,4,5,9,16,25}.
        let p = product_of([7u64, 9, 11, 19, 33, 51]);
        assert_eq!(p, BigUint::from(22_160_061u64));
    }
}
