//! A lightweight, comment- and string-aware lexer for Rust sources.
//!
//! The container has no registry access, so `kron-lint` cannot lean on
//! `syn`; instead this module tokenises just enough of the language for
//! the rule engine: identifiers and punctuation survive as tokens, while
//! string/char/numeric literals and comments are consumed (so a rule
//! never fires on the *contents* of a string or a doc comment).  Line
//! comments are captured separately because they carry the inline
//! suppression syntax and the `#[allow]` justification requirement.

use std::collections::BTreeSet;

/// One surviving token: an identifier (with its text), a single
/// punctuation character, or a string literal (with its raw, unescaped
/// source text).  Numeric/char literals and comments are consumed by the
/// lexer and never appear here.  String literals used to be consumed
/// too; they are kept now because the manifest-schema-drift rule reads
/// the JSON keys out of them — but they are a distinct token kind, so
/// no identifier-matching rule can ever fire on string *contents*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Punct(char),
    /// Raw source text between the quotes, escapes left as written
    /// (`\"` stays two characters).
    Str(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub kind: TokKind,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A captured `//` line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    /// Comment text including the leading `//`.
    pub text: String,
    /// True when nothing but whitespace preceded the comment on its line
    /// (a standalone comment also covers the line below it for
    /// suppression and justification purposes).
    pub standalone: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Every `//` comment, in order.
    pub line_comments: Vec<Comment>,
    /// Every line touched by any comment (line or block, including doc
    /// comments) — used by the `#[allow]`-justification rule.
    pub comment_lines: BTreeSet<u32>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex a source file.  The lexer is resilient by construction: malformed
/// input can only cause tokens to be dropped, never a panic.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.comment_lines.insert(line);
                out.line_comments.push(Comment {
                    line,
                    text,
                    standalone: !line_has_code,
                });
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment; every spanned line counts as a
                // comment line.
                out.comment_lines.insert(line);
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        line_has_code = false;
                        out.comment_lines.insert(line);
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 1;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            '"' => {
                line_has_code = true;
                let str_line = line;
                let end = skip_string(&chars, i, &mut line);
                push_str_token(&mut out, &chars, i + 1, end, 1, str_line);
                i = end;
            }
            '\'' => {
                line_has_code = true;
                i = skip_char_or_lifetime(&chars, i);
            }
            c if is_ident_start(c) => {
                line_has_code = true;
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // Raw strings (`r"..."`, `r#"..."#`, `br#"..."#`), byte
                // strings (`b"..."`) and byte chars (`b'x'`) wear an
                // identifier-shaped prefix; route them to the literal
                // skippers so their contents never become tokens.
                if (ident == "r" || ident == "br") && i < n && (chars[i] == '"' || chars[i] == '#')
                {
                    let mut hashes = 0usize;
                    while i + hashes < n && chars[i + hashes] == '#' {
                        hashes += 1;
                    }
                    if i + hashes < n && chars[i + hashes] == '"' {
                        let str_line = line;
                        let content_start = i + hashes + 1;
                        let end = skip_raw_string(&chars, content_start, hashes, &mut line);
                        push_str_token(&mut out, &chars, content_start, end, 1 + hashes, str_line);
                        i = end;
                        continue;
                    }
                    if ident == "r" && hashes == 1 {
                        // Raw identifier `r#name`: keep the name.
                        i += 1;
                        let rs = i;
                        while i < n && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                        let name: String = chars[rs..i].iter().collect();
                        out.tokens.push(Token {
                            line,
                            kind: TokKind::Ident(name),
                        });
                        continue;
                    }
                }
                if ident == "b" && i < n && chars[i] == '"' {
                    let str_line = line;
                    let end = skip_string(&chars, i, &mut line);
                    push_str_token(&mut out, &chars, i + 1, end, 1, str_line);
                    i = end;
                    continue;
                }
                if ident == "b" && i < n && chars[i] == '\'' {
                    i = skip_char_or_lifetime(&chars, i);
                    continue;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(ident),
                });
            }
            '0'..='9' => {
                line_has_code = true;
                // Swallow the whole numeric literal, including type
                // suffixes, hex digits, and `1.5e-3`-style exponents
                // (the trailing sign is left as punctuation, harmless).
                while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                    // `0..8` is a range, not a float: stop at `..`.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
            }
            other => {
                line_has_code = true;
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

/// Append a [`TokKind::Str`] token for a literal whose content starts at
/// `content_start` and whose skipper returned `end` (the index just past
/// the closing delimiter, `delim_len` characters long).  An unterminated
/// literal at end of input keeps whatever content it had.
fn push_str_token(
    out: &mut Lexed,
    chars: &[char],
    content_start: usize,
    end: usize,
    delim_len: usize,
    line: u32,
) {
    let content_end = end
        .saturating_sub(delim_len)
        .clamp(content_start, chars.len());
    out.tokens.push(Token {
        line,
        kind: TokKind::Str(chars[content_start..content_end].iter().collect()),
    });
}

/// Skip a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = open + 1;
    while i < n {
        match chars[i] {
            '\\' => {
                // A `\` line continuation still ends the physical line.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose opening quote has already been consumed;
/// `hashes` is the number of `#` characters in the delimiter.
fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
        } else if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= n || chars[i + 1 + k] != '#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`,
/// `'\u{1F600}'`) starting at the apostrophe.  Lifetimes produce no
/// token; char literal contents are consumed.
fn skip_char_or_lifetime(chars: &[char], open: usize) -> usize {
    let n = chars.len();
    let j = open + 1;
    if j >= n {
        return n;
    }
    if chars[j] == '\\' {
        // Escaped char literal: `'\n'`, `'\''`, `'\u{..}'`.
        let mut i = j + 2;
        if i <= n && chars.get(i - 1) == Some(&'u') && chars.get(i) == Some(&'{') {
            while i < n && chars[i] != '}' {
                i += 1;
            }
            i += 1;
        }
        while i < n && chars[i] != '\'' {
            i += 1;
        }
        return (i + 1).min(n);
    }
    if is_ident_start(chars[j]) || chars[j].is_ascii_digit() {
        // `'a'` is a char literal, `'a` (no closing quote after the
        // identifier) is a lifetime.
        let mut k = j;
        while k < n && is_ident_continue(chars[k]) {
            k += 1;
        }
        if k < n && chars[k] == '\'' {
            return k + 1;
        }
        return k;
    }
    // Single non-identifier character: `'+'`, `'⊗'`.
    if j + 1 < n && chars[j + 1] == '\'' {
        return j + 2;
    }
    j + 1
}

/// Mark every token that lives inside a `#[cfg(test)]` item (almost
/// always `mod tests { .. }`) so rules can exempt test code without a
/// full parse.  Items behind `#[test]` are likewise masked.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let attr_start = i;
            if let Some((attr_end, is_test)) = scan_attribute(tokens, i) {
                if is_test {
                    let mut j = attr_end + 1;
                    // Skip any further attributes on the same item.
                    while j + 1 < tokens.len()
                        && tokens[j].is_punct('#')
                        && tokens[j + 1].is_punct('[')
                    {
                        match scan_attribute(tokens, j) {
                            Some((e, _)) => j = e + 1,
                            None => break,
                        }
                    }
                    let end = skip_item(tokens, j);
                    for m in mask.iter_mut().take(end.min(tokens.len())).skip(attr_start) {
                        *m = true;
                    }
                    i = end;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Scan an attribute starting at its `#`; returns the index of the
/// closing `]` and whether the attribute gates test code (`#[cfg(test)]`,
/// `#[cfg(all(test, ..))]`, or `#[test]`).
fn scan_attribute(tokens: &[Token], hash: usize) -> Option<(usize, bool)> {
    let mut i = hash + 1;
    if i < tokens.len() && tokens[i].is_punct('!') {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct('[') {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut saw_test = false;
    let mut saw_not = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    // `#[cfg(not(test))]` gates *non*-test code; the
                    // coarse `saw_not` check keeps it unmasked.
                    let gates_test = match first_ident {
                        Some("cfg") => saw_test && !saw_not,
                        Some("test") => true,
                        _ => false,
                    };
                    return Some((i, gates_test));
                }
            }
            TokKind::Ident(name) => {
                if first_ident.is_none() && i > open {
                    first_ident = Some(name);
                }
                if name == "test" {
                    saw_test = true;
                }
                if name == "not" {
                    saw_not = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Skip one item starting at `start` (after its attributes): the item
/// ends at a `;` outside any braces, or at the close of its first brace
/// block.  Returns the index just past the item.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of(src: &str, name: &str) -> u32 {
        lex(src)
            .tokens
            .iter()
            .find(|t| t.is_ident(name))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    #[test]
    fn string_line_continuation_still_counts_the_newline() {
        // A `\` at end of line inside a string literal swallows the
        // newline for the *string*, but the physical line count must
        // still advance or every later diagnostic drifts upward.
        let src = "let s = \"first \\\n        second\";\nafter();\n";
        assert_eq!(line_of(src, "after"), 3);
    }

    #[test]
    fn string_literals_survive_as_str_tokens_with_raw_content() {
        let src = "let a = \"{\\\"kind\\\": \\\"run\\\"}\";\nlet b = r#\"raw \"text\"\"#;\nlet c = b\"bytes\";\n";
        let strs: Vec<(u32, String)> = lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some((t.line, s.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec![
                (1, "{\\\"kind\\\": \\\"run\\\"}".to_string()),
                (2, "raw \"text\"".to_string()),
                (3, "bytes".to_string()),
            ]
        );
    }

    #[test]
    fn multiline_strings_comments_and_raw_strings_keep_line_numbers() {
        let src =
            "let a = \"one\ntwo\";\n/* block\ncomment */\nlet b = r#\"raw\nstring\"#;\nlast();\n";
        assert_eq!(line_of(src, "last"), 7);
    }
}
