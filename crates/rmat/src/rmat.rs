//! The R-MAT recursive quadrant sampler.
//!
//! R-MAT (Chakrabarti, Zhan & Faloutsos 2004) samples each edge by walking
//! `scale` levels of a binary recursion: at each level the edge lands in one
//! of four quadrants with probabilities `(a, b, c, d)`.  With the Graph500
//! parameters `(0.57, 0.19, 0.19, 0.05)` the result approximates a power-law
//! graph — but only approximately, and only after the fact: the exact edge
//! count, degree distribution, and triangle count are not known until the
//! graph is generated and measured, which is precisely the workflow the
//! exact Kronecker designer replaces.
//!
//! Sampling is *indexed*: [`RmatGenerator::edge_at`] draws sample `i` from
//! an RNG seeded by `(seed, i)`, so any contiguous range of the requested
//! samples can be produced independently — per worker, per chunk — and the
//! full edge list is identical no matter how the range is carved up.  That
//! is what lets `RmatSource` stream R-MAT through the generic pipeline with
//! bounded memory; the materialising [`RmatGenerator::generate_edges`] /
//! [`RmatGenerator::generate_edges_parallel`] survive as deprecated thin
//! wrappers over the same indexed sampler.
//!
//! **Compatibility note:** the per-sample RNG is a SplitMix64 stream over
//! the derived `(seed, index)` state; it replaced an earlier
//! `StdRng`-per-sample (ChaCha12) construction whose key-schedule setup
//! dominated the sampler's cost.  Seeds recorded by manifests written
//! before the streaming-metrics engine therefore reproduce a *different*
//! (equally valid, identically distributed) sample stream under this
//! version.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use kron_core::CoreError;

/// Quadrant probabilities and size parameters of an R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant (`1 − a − b − c`).
    pub d: f64,
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of undirected edges per vertex.
    pub edge_factor: u64,
    /// Multiplicative noise applied to the quadrant probabilities at each
    /// recursion level (0.0 = classic R-MAT, Graph500 uses a small value to
    /// smooth the degree distribution).
    pub noise: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters at the given scale.
    pub fn graph500(scale: u32) -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            scale,
            edge_factor: 16,
            noise: 0.0,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edge samples drawn, `edge_factor · 2^scale`.
    pub fn requested_edges(&self) -> u64 {
        self.edge_factor * self.vertices()
    }

    /// Whether the probabilities form a valid distribution.
    pub fn is_valid(&self) -> bool {
        let sum = self.a + self.b + self.c + self.d;
        self.a >= 0.0
            && self.b >= 0.0
            && self.c >= 0.0
            && self.d >= 0.0
            && (sum - 1.0).abs() < 1e-9
            && self.scale >= 1
            && self.scale < 63
            && self.edge_factor >= 1
            && self.noise >= 0.0
            && self.noise < 1.0
    }
}

/// Derive the per-sample RNG seed from the generator seed and the sample's
/// global index: a SplitMix64-style finalizer over the pair, so consecutive
/// indices land on decorrelated streams and the map `index → seed` is
/// injective for a fixed generator seed.
fn sample_seed(seed: u64, index: u64) -> u64 {
    splitmix(seed ^ index.wrapping_mul(SPLITMIX_GAMMA))
}

/// The SplitMix64 output function.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One sample's RNG: a SplitMix64 stream over the sample's derived seed.
///
/// Indexed sampling needs a fresh, decorrelated stream per `(seed, index)`
/// pair.  Seeding a `StdRng` (ChaCha12) per sample pays a full key-schedule
/// expansion for the handful of draws one edge needs, which used to dominate
/// the R-MAT hot path (~70x slower than the Kronecker expansion through the
/// same pipeline); SplitMix64 has no setup at all — the derived seed *is*
/// the state — so per-chunk sampling spends its time on the recursion walk,
/// not on RNG construction.
struct SampleRng {
    state: u64,
}

impl SampleRng {
    #[inline]
    fn new(seed: u64) -> Self {
        SampleRng { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX_GAMMA);
        splitmix(self.state)
    }

    /// A uniform draw from `[0, 1)` with 53 random bits, the conversion
    /// `rand` uses for `f64`.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of samples the batched noise-free walk draws side by side.
///
/// Each sample's quadrant walk is a serial chain (state → splitmix →
/// threshold compares → shift), so one sample at a time leaves the ALUs
/// idle between dependent ops; sixteen independent lanes advanced level by
/// level keep the multipliers busy, and the fixed-size lane arrays let the
/// compiler unroll and vectorise the inner loop (every op is integer —
/// adds, multiplies, shifts, compares — once the thresholds are integers).
pub const SAMPLE_BATCH: usize = 16;

/// The golden-ratio increment of the SplitMix64 stream (shared by the
/// scalar [`SampleRng`] and the batched lanes, which must draw identically).
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The smallest integer `k` with `k · 2⁻⁵³ ≥ t` — the threshold `t` moved
/// into the integer sample space of [`SampleRng::next_f64`]'s 53-bit draws.
///
/// `next_f64` returns exactly `k · 2⁻⁵³` for the draw `k = bits >> 11`
/// (53 bits always fit a f64 mantissa), so `sample ≥ t ⟺ k ≥ ⌈t · 2⁵³⌉`;
/// scaling by the power of two is exact for any normal `t`, which makes the
/// ceiling below the *exact* real ceiling and the integer compare
/// bit-identical to the floating compare it replaces.
fn integer_threshold(t: f64) -> u64 {
    (t * 9_007_199_254_740_992.0).ceil() as u64
}

/// A seeded R-MAT edge sampler.
#[derive(Debug, Clone)]
pub struct RmatGenerator {
    params: RmatParams,
    seed: u64,
}

impl RmatGenerator {
    /// Create a generator from validated parameters and a seed.
    pub fn new(params: RmatParams, seed: u64) -> Result<Self, CoreError> {
        if !params.is_valid() {
            return Err(CoreError::InvalidConfig {
                message: format!("invalid R-MAT parameters: {params:?}"),
            });
        }
        Ok(RmatGenerator { params, seed })
    }

    /// The generator's parameters.
    pub fn params(&self) -> &RmatParams {
        &self.params
    }

    /// The generator's sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sample one edge with the given RNG.
    fn sample_edge(&self, rng: &mut SampleRng) -> (u64, u64) {
        if self.params.noise > 0.0 {
            return self.sample_edge_noisy(rng);
        }
        // Noise-free quadrant walk, branch-free.  The quadrant of each level
        // is a three-way threshold comparison whose outcome is close to a
        // coin flip (Graph500's a = 0.57), so a compare-and-branch ladder
        // mispredicts nearly every level and dominates the sampler's cost;
        // turning the ladder into boolean arithmetic keeps the pipeline
        // full.  Quadrants and thresholds are exactly the ladder's:
        //   [0, a) top-left · [a, a+b) col bit · [a+b, a+b+c) row bit ·
        //   [a+b+c, 1) both bits.
        let t_a = self.params.a;
        let t_ab = self.params.a + self.params.b;
        let t_abc = self.params.a + self.params.b + self.params.c;
        let mut row = 0u64;
        let mut col = 0u64;
        for _ in 0..self.params.scale {
            let sample = rng.next_f64();
            let ge_a = (sample >= t_a) as u64;
            let ge_ab = (sample >= t_ab) as u64;
            let ge_abc = (sample >= t_abc) as u64;
            row = (row << 1) | ge_ab;
            col = (col << 1) | ((ge_a ^ ge_ab) | ge_abc);
        }
        (row, col)
    }

    /// The noisy variant: quadrant probabilities are re-jittered and
    /// re-normalised at every level (Graph500's "noise" trick), so the
    /// thresholds cannot be hoisted out of the walk.
    fn sample_edge_noisy(&self, rng: &mut SampleRng) -> (u64, u64) {
        let mut row = 0u64;
        let mut col = 0u64;
        let (mut a, mut b, mut c, mut d) =
            (self.params.a, self.params.b, self.params.c, self.params.d);
        for _ in 0..self.params.scale {
            let jitter = |p: f64, r: &mut SampleRng| {
                p * (1.0 - self.params.noise + 2.0 * self.params.noise * r.next_f64())
            };
            let (na, nb, nc, nd) = (
                jitter(a, rng),
                jitter(b, rng),
                jitter(c, rng),
                jitter(d, rng),
            );
            let total = na + nb + nc + nd;
            a = na / total;
            b = nb / total;
            c = nc / total;
            d = nd / total;
            let sample = rng.next_f64();
            let ge_a = (sample >= a) as u64;
            let ge_ab = (sample >= a + b) as u64;
            let ge_abc = (sample >= a + b + c) as u64;
            row = (row << 1) | ge_ab;
            col = (col << 1) | ((ge_a ^ ge_ab) | ge_abc);
        }
        let _ = d;
        (row, col)
    }

    /// Sample edge `index` of the requested stream — deterministic for a
    /// given `(seed, index)` and independent of every other sample, so any
    /// worker can produce any contiguous slice of the stream without
    /// coordination.  This is the primitive behind `RmatSource`'s chunked
    /// per-worker streaming; the per-sample state is one SplitMix64 word,
    /// so there is no setup to amortise and chunked sampling runs at the
    /// speed of the recursion walk itself.
    pub fn edge_at(&self, index: u64) -> (u64, u64) {
        let mut rng = SampleRng::new(sample_seed(self.seed, index));
        self.sample_edge(&mut rng)
    }

    /// Worker `worker`'s contiguous range of global sample indices when the
    /// requested samples are split evenly across `workers` workers — the
    /// single owner of the balanced-range arithmetic shared by the streaming
    /// source and the deprecated materialising wrapper, so the two can never
    /// desynchronise.  Ranges are contiguous and ascending in worker order
    /// and cover `[0, requested_edges())` exactly.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn sample_range(&self, worker: usize, workers: usize) -> std::ops::Range<u64> {
        assert!(workers > 0, "sample_range needs at least one worker");
        let total = self.params.requested_edges();
        let workers = workers as u64;
        let worker = worker as u64;
        let per_worker = total / workers;
        let remainder = total % workers;
        let start = worker * per_worker + worker.min(remainder);
        let length = per_worker + u64::from(worker < remainder);
        start..start + length
    }

    /// A reusable batched sampler drawing [`SAMPLE_BATCH`]-wide lanes of
    /// this generator's stream — `fill(start, out)` produces exactly
    /// `edge_at(start)`, `edge_at(start + 1)`, … — with the per-level
    /// quadrant thresholds precomputed once (in integer sample space) so
    /// the hot loop is pure vectorisable integer arithmetic.  Noisy
    /// parameters fall back to the scalar walk inside `fill`, so callers
    /// never need to special-case.
    pub fn batch_sampler(&self) -> RmatBatchSampler<'_> {
        let levels = if self.params.noise > 0.0 {
            // Per-level jitter re-randomises the thresholds; the scalar
            // path owns that walk.
            Vec::new()
        } else {
            let t_a = integer_threshold(self.params.a);
            let t_ab = integer_threshold(self.params.a + self.params.b);
            let t_abc = integer_threshold(self.params.a + self.params.b + self.params.c);
            // One entry per recursion level.  Noise-free thresholds are
            // level-invariant today; the table keeps the kernel's loads
            // loop-constant and leaves room for level-varying schedules.
            (0..self.params.scale).map(|_| [t_a, t_ab, t_abc]).collect()
        };
        RmatBatchSampler {
            generator: self,
            levels,
        }
    }

    /// Sample the full edge list (deterministic for a given seed).
    #[deprecated(
        since = "0.1.0",
        note = "run the generator through the pipeline (RmatSource) or sample \
                indexed ranges with edge_at; this wrapper materialises every edge"
    )]
    pub fn generate_edges(&self) -> Vec<(u64, u64)> {
        (0..self.params.requested_edges())
            .map(|index| self.edge_at(index))
            .collect()
    }

    /// Sample the edge list in parallel chunks.  The indexed sampler makes
    /// the output identical to [`RmatGenerator::generate_edges`] for every
    /// chunk count — the chunking is now purely a work split.
    #[deprecated(
        since = "0.1.0",
        note = "run the generator through the pipeline (RmatSource), which \
                streams the same samples without materialising them"
    )]
    pub fn generate_edges_parallel(&self, chunks: usize) -> Vec<(u64, u64)> {
        let chunks = chunks.max(1);
        (0..chunks)
            .into_par_iter()
            .flat_map_iter(|chunk| {
                self.sample_range(chunk, chunks)
                    .map(|index| self.edge_at(index))
            })
            .collect()
    }
}

/// The batched quadrant walk over one generator's sample stream.
///
/// Built by [`RmatGenerator::batch_sampler`]; holds the precomputed
/// per-level integer thresholds so repeated [`RmatBatchSampler::fill`]
/// calls pay no setup.  The batched kernel draws the *same* SplitMix64
/// stream per `(seed, index)` as [`RmatGenerator::edge_at`] — the lanes
/// are just independent indices advanced level by level instead of index
/// by index — so the output is bit-identical to the scalar sampler.
#[derive(Debug, Clone)]
pub struct RmatBatchSampler<'a> {
    generator: &'a RmatGenerator,
    /// `[t_a, t_ab, t_abc]` per recursion level, in the 53-bit integer
    /// sample space; empty when the parameters are noisy (scalar fallback).
    levels: Vec<[u64; 3]>,
}

impl RmatBatchSampler<'_> {
    /// Fill `out[i] = edge_at(start + i)` for every `i`.
    ///
    /// Full [`SAMPLE_BATCH`]-wide groups run the vectorisable lane kernel;
    /// the remainder (and the noisy-parameter case, whose thresholds cannot
    /// be precomputed) falls back to the scalar walk.
    pub fn fill(&self, start: u64, out: &mut [(u64, u64)]) {
        if self.levels.is_empty() {
            for (offset, slot) in out.iter_mut().enumerate() {
                *slot = self.generator.edge_at(start + offset as u64);
            }
            return;
        }
        let mut chunks = out.chunks_exact_mut(SAMPLE_BATCH);
        let mut index = start;
        for chunk in &mut chunks {
            self.fill_lanes(index, chunk);
            index += SAMPLE_BATCH as u64;
        }
        for slot in chunks.into_remainder() {
            *slot = self.generator.edge_at(index);
            index += 1;
        }
    }

    /// The lane kernel: `out.len() == SAMPLE_BATCH`, noise-free thresholds.
    /// All state lives in fixed-size lane arrays and every level is pure
    /// integer arithmetic with no cross-lane dependency, so the compiler
    /// unrolls (and where the target allows, vectorises) the inner loops.
    fn fill_lanes(&self, start: u64, out: &mut [(u64, u64)]) {
        debug_assert_eq!(out.len(), SAMPLE_BATCH);
        let seed = self.generator.seed;
        let mut state = [0u64; SAMPLE_BATCH];
        for (lane, slot) in state.iter_mut().enumerate() {
            *slot = sample_seed(seed, start + lane as u64);
        }
        let mut row = [0u64; SAMPLE_BATCH];
        let mut col = [0u64; SAMPLE_BATCH];
        for &[t_a, t_ab, t_abc] in &self.levels {
            for lane in 0..SAMPLE_BATCH {
                state[lane] = state[lane].wrapping_add(SPLITMIX_GAMMA);
                // The scalar walk's next_f64() ≥ t compares, moved into the
                // integer sample space (see integer_threshold's exactness
                // argument); the quadrant bit arithmetic is unchanged.
                let draw = splitmix(state[lane]) >> 11;
                let ge_a = (draw >= t_a) as u64;
                let ge_ab = (draw >= t_ab) as u64;
                let ge_abc = (draw >= t_abc) as u64;
                row[lane] = (row[lane] << 1) | ge_ab;
                col[lane] = (col[lane] << 1) | ((ge_a ^ ge_ab) | ge_abc);
            }
        }
        for lane in 0..SAMPLE_BATCH {
            out[lane] = (row[lane], col[lane]);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers are pinned against the indexed sampler

    use super::*;

    #[test]
    fn graph500_defaults_are_valid() {
        let p = RmatParams::graph500(10);
        assert!(p.is_valid());
        assert_eq!(p.vertices(), 1024);
        assert_eq!(p.requested_edges(), 16 * 1024);
    }

    #[test]
    fn invalid_parameters_rejected_with_typed_error() {
        let mut p = RmatParams::graph500(10);
        p.a = 0.9; // probabilities no longer sum to 1
        assert!(!p.is_valid());
        assert!(matches!(
            RmatGenerator::new(p, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut p = RmatParams::graph500(1);
        p.scale = 0;
        assert!(!p.is_valid());
        let mut p = RmatParams::graph500(5);
        p.noise = 1.5;
        assert!(!p.is_valid());
    }

    #[test]
    fn edge_indices_stay_in_range() {
        let gen = RmatGenerator::new(RmatParams::graph500(8), 42).unwrap();
        let edges = gen.generate_edges();
        assert_eq!(edges.len(), 16 * 256);
        let n = gen.params().vertices();
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = RmatGenerator::new(RmatParams::graph500(7), 7).unwrap();
        assert_eq!(gen.generate_edges(), gen.generate_edges());
        let other = RmatGenerator::new(RmatParams::graph500(7), 8).unwrap();
        assert_ne!(gen.generate_edges(), other.generate_edges());
    }

    #[test]
    fn indexed_sampling_is_the_single_engine() {
        let gen = RmatGenerator::new(RmatParams::graph500(7), 19).unwrap();
        let sequential = gen.generate_edges();
        let indexed: Vec<(u64, u64)> = (0..gen.params().requested_edges())
            .map(|i| gen.edge_at(i))
            .collect();
        assert_eq!(sequential, indexed);
    }

    #[test]
    fn parallel_generation_equals_sequential_for_every_chunking() {
        let gen = RmatGenerator::new(RmatParams::graph500(8), 3).unwrap();
        let sequential = gen.generate_edges();
        assert_eq!(sequential.len() as u64, gen.params().requested_edges());
        for chunks in [1usize, 2, 3, 7, 64] {
            assert_eq!(
                gen.generate_edges_parallel(chunks),
                sequential,
                "chunk count {chunks} changed the stream"
            );
        }
    }

    #[test]
    fn batch_sampler_is_bit_identical_to_edge_at() {
        // Every start offset and length shape: batch-aligned, a partial
        // tail, shorter than one batch, and empty.
        let gen = RmatGenerator::new(RmatParams::graph500(9), 23).unwrap();
        let sampler = gen.batch_sampler();
        for start in [0u64, 1, 5, 16, 1000] {
            for len in [0usize, 1, 15, 16, 17, 64, 100] {
                let mut out = vec![(0u64, 0u64); len];
                sampler.fill(start, &mut out);
                let expected: Vec<(u64, u64)> = (start..start + len as u64)
                    .map(|i| gen.edge_at(i))
                    .collect();
                assert_eq!(out, expected, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn batch_sampler_noisy_fallback_matches_scalar() {
        let mut p = RmatParams::graph500(8);
        p.noise = 0.1;
        let gen = RmatGenerator::new(p, 31).unwrap();
        let sampler = gen.batch_sampler();
        let mut out = vec![(0u64, 0u64); 50];
        sampler.fill(3, &mut out);
        let expected: Vec<(u64, u64)> = (3..53).map(|i| gen.edge_at(i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn integer_thresholds_agree_with_float_compares_at_boundaries() {
        // The exactness argument, checked mechanically: for thresholds
        // including exact dyadics and awkward sums, the integer compare
        // equals the f64 compare for draws straddling the boundary.
        for t in [
            0.0,
            0.05,
            0.19,
            0.57,
            0.57 + 0.19,
            0.57 + 0.19 + 0.19,
            0.5,
            1.0,
        ] {
            let ti = integer_threshold(t);
            for k in ti.saturating_sub(2)..=(ti + 2).min((1u64 << 53) - 1) {
                let sample = k as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(k >= ti, sample >= t, "t={t} k={k}");
            }
        }
    }

    #[test]
    fn sample_stream_golden_values_are_seed_stable() {
        // Exact (seed, index) → edge outputs pinned before the batched
        // sampler landed: any change to the seed derivation, the SplitMix64
        // stream, or the quadrant arithmetic breaks replay of previously
        // recorded manifests and must fail here.
        let gen = RmatGenerator::new(RmatParams::graph500(16), 42).unwrap();
        let golden = [
            (0u64, (2233u64, 34816u64)),
            (1, (16387, 18784)),
            (7, (930, 36480)),
            (12345, (32790, 8193)),
            (1_000_000, (1098, 16388)),
        ];
        for (index, expected) in golden {
            assert_eq!(gen.edge_at(index), expected, "index {index}");
        }
        let mut p = RmatParams::graph500(12);
        p.noise = 0.1;
        let noisy = RmatGenerator::new(p, 7).unwrap();
        let golden_noisy = [(0u64, (136u64, 2048u64)), (1, (130, 2)), (999, (2048, 264))];
        for (index, expected) in golden_noisy {
            assert_eq!(noisy.edge_at(index), expected, "noisy index {index}");
        }
    }

    #[test]
    fn skew_favours_low_vertex_ids() {
        // With a = 0.57 the low-numbered vertices receive far more edges than
        // the high-numbered ones — the hallmark of the R-MAT skew.
        let gen = RmatGenerator::new(RmatParams::graph500(10), 11).unwrap();
        let edges = gen.generate_edges();
        let n = gen.params().vertices();
        let low = edges.iter().filter(|&&(u, _)| u < n / 4).count();
        let high = edges.iter().filter(|&&(u, _)| u >= 3 * n / 4).count();
        assert!(
            low > 3 * high,
            "low quartile {low} should dominate high quartile {high}"
        );
    }

    #[test]
    fn noise_keeps_indices_in_range() {
        let mut p = RmatParams::graph500(8);
        p.noise = 0.1;
        let gen = RmatGenerator::new(p, 5).unwrap();
        let n = p.vertices();
        assert!(gen.generate_edges().iter().all(|&(u, v)| u < n && v < n));
    }
}
