//! O(1)-memory vertex relabelling: a seeded Feistel bijection on `[0, V)`.
//!
//! Graph500 — and the paper's released datasets — randomly permute vertex
//! labels before publication so that the heavy vertices are not trivially
//! identifiable by their index.  A permutation *table* needs `O(V)` memory,
//! which is unusable at the paper's 10¹⁰-vertex designs; the
//! [`FeistelPermutation`] here is a keyed bijection evaluated per vertex in
//! constant memory instead: a balanced Feistel network over the smallest
//! even number of bits covering `V`, with cycle-walking to restrict the
//! domain to exactly `[0, V)` when `V` is not a power of four.
//!
//! Because the network is a permutation of its power-of-two domain for *any*
//! round function, and cycle-walking restricted to a subset of a
//! permutation's domain is again a permutation of that subset, the map is an
//! exact bijection on `[0, V)` — every degree-, loop-, and multiplicity-
//! preserving guarantee of table-based relabelling carries over, with no
//! table.  The same seed always produces the same permutation, so a run is
//! reproducible from the seed recorded in its
//! [`RunManifest`](crate::manifest::RunManifest).
//!
//! The permutation sits on the generation hot path (every endpoint of every
//! edge passes through it), so the network is engineered for throughput:
//! three rounds — the Luby–Rackoff minimum for a pseudorandom permutation —
//! of a single multiply-and-take-high-bits round function, and the
//! [`FeistelPermutation::apply_edges_into`] entry point relabels whole
//! chunks at a time with the cycle-walk reorganised into branch-free
//! compaction passes (an unpredictable 50/50 walk branch per endpoint would
//! otherwise cost more than the arithmetic).  Domains small enough that a
//! table *is* affordable (up to 2²¹ vertices, ≤ 16 MiB) additionally cache
//! the permutation's dense image at construction — entry `x` is exactly the
//! network-and-walk image of `x`, so the cached and computed paths are the
//! same function and the hot path collapses to one load per endpoint.
//! **Compatibility note:** this
//! faster network replaces the earlier four-round SplitMix64 one, so seeds
//! recorded by manifests written before the streaming-metrics engine
//! reproduce a *different* (equally valid) relabelling under this version;
//! the graph's degree structure is identical either way, since both are
//! exact bijections.

/// Number of Feistel rounds.  Three rounds are the Luby–Rackoff minimum for
/// a pseudorandom permutation given a pseudorandom round function; the
/// relabelling needs statistical scrambling (no fixed structure, no
/// preserved locality), not adversarial indistinguishability, and each extra
/// round is pure hot-path cost.
const ROUNDS: usize = 3;

/// Number of independent cycle-walk endpoints re-evaluated together per
/// retry-pass step.  Each endpoint's three-round network is a serial
/// multiply chain; eight side-by-side chains keep the multiplier busy while
/// earlier lanes wait on their round dependency, and the fixed-size lane
/// arrays let the compiler unroll (and on wide targets vectorise) the
/// middle loop.
const WALK_LANES: usize = 8;

/// Largest domain for which construction precomputes the permutation's
/// dense image table (≤ 16 MiB of `u64`s).  Below this size the table is
/// cheap to build (a few milliseconds of network walks, once per run) and
/// turns every hot-path relabelling into a single L2-resident load; above
/// it the O(1)-memory network evaluation takes over — the whole point of a
/// Feistel permutation at the paper's 10¹⁰-vertex designs.  The table is
/// *the same function*: entry `x` is exactly the network-and-walk image of
/// `x`, so which side of this threshold a domain lands on can never change
/// a relabelled stream, only its speed.
const TABLE_MAX_DOMAIN: u64 = 1 << 21;

/// The endpoint a pending slot addresses: slot `2i` is edge `i`'s row,
/// slot `2i + 1` its column.
#[inline(always)]
fn slot_value(out: &[(u64, u64)], slot: u32) -> u64 {
    let (row, col) = out[(slot >> 1) as usize];
    if slot & 1 == 0 {
        row
    } else {
        col
    }
}

/// Store a walked endpoint back into its slot.
#[inline(always)]
fn set_slot_value(out: &mut [(u64, u64)], slot: u32, value: u64) {
    let pair = &mut out[(slot >> 1) as usize];
    *if slot & 1 == 0 {
        &mut pair.0
    } else {
        &mut pair.1
    } = value;
}

/// The SplitMix64 finalizer: a cheap invertible mixer with full avalanche,
/// used to derive the round keys (construction-time only — the per-round
/// function is the single multiply in [`FeistelPermutation::network`]).
fn diffuse(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded bijection on `[0, n)` evaluated in O(1) memory.
///
/// ```
/// use kron_gen::permute::FeistelPermutation;
///
/// let perm = FeistelPermutation::new(1_000, 42);
/// let mut image: Vec<u64> = (0..1_000).map(|v| perm.apply(v)).collect();
/// image.sort_unstable();
/// assert_eq!(image, (0..1_000).collect::<Vec<u64>>()); // exact bijection
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; ROUNDS],
    /// The dense image table for domains up to [`TABLE_MAX_DOMAIN`]:
    /// `table[x]` is the network-and-walk image of `x`, precomputed once at
    /// construction.  `None` for larger domains, which evaluate the network
    /// per endpoint in O(1) memory.
    table: Option<Box<[u64]>>,
}

impl FeistelPermutation {
    /// Build the permutation of `[0, n)` keyed by `seed`.
    ///
    /// The Feistel domain is `2^b` for the smallest even `b` with
    /// `2^b ≥ n`, so cycle-walking needs fewer than four expected rounds per
    /// vertex and the whole structure is a few machine words regardless of
    /// `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        // Smallest bit width covering n-1, rounded up to an even number of
        // bits so the two Feistel halves are balanced.  n ≤ 1 still gets a
        // 2-bit domain (the walk collapses to the identity on {0}).
        let bits = (64 - n.saturating_sub(1).leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        let half_bits = bits / 2;
        let mut state = seed;
        let mut next_key = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            diffuse(state)
        };
        let mut perm = FeistelPermutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys: std::array::from_fn(|_| next_key()),
            table: None,
        };
        if n <= TABLE_MAX_DOMAIN {
            perm.table = Some((0..n).map(|x| perm.walk(x)).collect());
        }
        perm
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One pass of the Feistel network over the full `2^(2·half_bits)`
    /// domain — a bijection for any round function.  The round function is
    /// one multiply of the keyed right half by an odd constant, taking the
    /// high bits of the product (where a multiply mixes best); the whole
    /// pass is six cheap ALU ops per round and branch-free.
    #[inline(always)]
    fn network(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for &key in &self.keys {
            let feedback =
                ((right ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.half_mask;
            (left, right) = (right, left ^ feedback);
        }
        (left << self.half_bits) | right
    }

    /// [`Self::network`] over a fixed block of lanes.
    ///
    /// The hot relabelling paths evaluate networks in [`WALK_LANES`]-wide
    /// blocks: the per-round multiply chains of one endpoint are serial, so
    /// a lane block is what keeps the multipliers fed, and the fixed-size
    /// arrays of pure integer ops are exactly the shape the vectoriser
    /// turns into 64-bit SIMD multiplies where the target has them.
    /// `inline(always)`: out-of-line, each 8-lane call pays argument/return
    /// stack traffic plus a `vzeroupper`, which costs more than the ~20
    /// vector ops of the body; inlined, the row and column blocks of the
    /// relabelling pass also interleave their multiply chains.
    #[inline(always)]
    fn network_lanes(&self, x: [u64; WALK_LANES]) -> [u64; WALK_LANES] {
        let mut left = [0u64; WALK_LANES];
        let mut right = [0u64; WALK_LANES];
        for lane in 0..WALK_LANES {
            left[lane] = (x[lane] >> self.half_bits) & self.half_mask;
            right[lane] = x[lane] & self.half_mask;
        }
        for &key in &self.keys {
            for lane in 0..WALK_LANES {
                let feedback = ((right[lane] ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32)
                    & self.half_mask;
                let next = left[lane] ^ feedback;
                left[lane] = right[lane];
                right[lane] = next;
            }
        }
        let mut y = [0u64; WALK_LANES];
        for lane in 0..WALK_LANES {
            y[lane] = (left[lane] << self.half_bits) | right[lane];
        }
        y
    }

    /// The network-and-cycle-walk image of `x` — the definition the table
    /// caches: values the network maps outside `[0, n)` are fed back in
    /// until one lands inside, which restricts the power-of-two bijection to
    /// an exact bijection on `[0, n)`.
    #[inline]
    fn walk(&self, x: u64) -> u64 {
        let mut y = self.network(x);
        while y >= self.n {
            y = self.network(y);
        }
        y
    }

    /// The permuted label of vertex `x`: one table load for domains up to
    /// `TABLE_MAX_DOMAIN`, the cycle-walked network otherwise.
    ///
    /// # Panics
    /// Panics if `x ≥ n` (the input is not a vertex of the graph).
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        assert!(
            x < self.n,
            "vertex {x} outside permutation domain {}",
            self.n
        );
        match &self.table {
            Some(table) => table[x as usize],
            None => self.walk(x),
        }
    }

    /// Permute both endpoints of an edge.
    #[inline]
    pub fn apply_edge(&self, (row, col): (u64, u64)) -> (u64, u64) {
        (self.apply(row), self.apply(col))
    }

    /// Relabel a whole chunk of edges into `out` — exactly
    /// `edges.iter().map(|&e| perm.apply_edge(e))`, restructured for the hot
    /// path.
    ///
    /// One branch-free pass evaluates the network for every endpoint while
    /// compacting the indices of endpoints the cycle-walk must continue on
    /// into `pending` (branchless: the data-dependent 50/50 "walked outside
    /// `[0, n)`?" test becomes an unconditional store plus a length
    /// increment, never a mispredicted jump).  Follow-up passes re-evaluate
    /// only the pending endpoints until none remain.  Both buffers are
    /// caller-owned and reused across chunks, so the steady state allocates
    /// nothing.
    ///
    /// Callers guarantee every endpoint is `< len()` (debug-checked); the
    /// pipeline's generation invariant.
    ///
    /// # Panics
    /// Panics if `edges` holds more than `u32::MAX / 2` edges — the pending
    /// slots are 32-bit, and a wrapped slot would silently corrupt the
    /// relabelling, so the bound is enforced in release builds too (one
    /// check per chunk).
    pub fn apply_edges_into(
        &self,
        edges: &[(u64, u64)],
        out: &mut Vec<(u64, u64)>,
        pending: &mut Vec<u32>,
    ) {
        assert!(
            edges.len() * 2 <= u32::MAX as usize,
            "chunk of {} edges too large for 32-bit endpoint slots",
            edges.len()
        );
        out.clear();
        out.reserve(edges.len());
        if let Some(table) = &self.table {
            // Table-resident domain: the whole relabelling is two loads per
            // edge from an L2-sized array — no network, no walk, nothing
            // pending.
            out.extend(edges.iter().map(|&(row, col)| {
                debug_assert!(row < self.n && col < self.n, "edge outside domain");
                (table[row as usize], table[col as usize])
            }));
            pending.clear();
            return;
        }
        pending.clear();
        pending.resize(edges.len() * 2, 0);
        // First pass, split in two so each half optimises independently:
        // fixed-width lane blocks evaluate both networks of every edge
        // through the vectorisable [`Self::network_lanes`] kernel, then a
        // branchless scan over the stored results compacts the out-of-range
        // endpoint slots (reading back through memory is cheaper than
        // extracting lanes from vector registers one by one — the scan's
        // loads hit the store buffer / L1).
        let mut blocks = edges.chunks_exact(WALK_LANES);
        for block in &mut blocks {
            // The network treats every endpoint alike, so the lanes are the
            // endpoints in memory order — `[r0, c0, r1, c1, …]` — which
            // keeps both the loads here and the stores below contiguous
            // (no stride-2 gather of rows vs columns), two independent
            // half-blocks per iteration to overlap their multiply chains.
            let mut lo = [0u64; WALK_LANES];
            let mut hi = [0u64; WALK_LANES];
            for i in 0..WALK_LANES / 2 {
                let (row, col) = block[i];
                debug_assert!(row < self.n && col < self.n, "edge outside domain");
                lo[2 * i] = row;
                lo[2 * i + 1] = col;
                let (row, col) = block[WALK_LANES / 2 + i];
                debug_assert!(row < self.n && col < self.n, "edge outside domain");
                hi[2 * i] = row;
                hi[2 * i + 1] = col;
            }
            let lo = self.network_lanes(lo);
            let hi = self.network_lanes(hi);
            out.extend((0..WALK_LANES / 2).map(|i| (lo[2 * i], lo[2 * i + 1])));
            out.extend((0..WALK_LANES / 2).map(|i| (hi[2 * i], hi[2 * i + 1])));
        }
        out.extend(blocks.remainder().iter().map(|&(row, col)| {
            debug_assert!(row < self.n && col < self.n, "edge outside domain");
            (self.network(row), self.network(col))
        }));
        let mut walking = 0usize;
        for (i, &(new_row, new_col)) in out.iter().enumerate() {
            // Branchless compaction: always store the slot, only keep it
            // (advance the length) when the endpoint landed outside [0, n).
            pending[walking] = (i as u32) * 2;
            walking += (new_row >= self.n) as usize;
            pending[walking] = (i as u32) * 2 + 1;
            walking += (new_col >= self.n) as usize;
        }
        pending.truncate(walking);
        // Retry passes, re-batched: gather WALK_LANES pending endpoints,
        // advance all their networks side by side through the lane kernel,
        // scatter back, and compact the survivors — the walked value is
        // always stored, so a still-out-of-range endpoint is simply
        // overwritten next pass.  This computes exactly apply()'s walk for
        // every endpoint; only the evaluation order across endpoints
        // changes.
        while !pending.is_empty() {
            let mut kept = 0usize;
            let mut j = 0usize;
            while j + WALK_LANES <= pending.len() {
                let mut values = [0u64; WALK_LANES];
                for lane in 0..WALK_LANES {
                    values[lane] = slot_value(out, pending[j + lane]);
                }
                let values = self.network_lanes(values);
                for lane in 0..WALK_LANES {
                    let slot = pending[j + lane];
                    set_slot_value(out, slot, values[lane]);
                    pending[kept] = slot;
                    kept += (values[lane] >= self.n) as usize;
                }
                j += WALK_LANES;
            }
            while j < pending.len() {
                let slot = pending[j];
                let value = self.network(slot_value(out, slot));
                set_slot_value(out, slot, value);
                pending[kept] = slot;
                kept += (value >= self.n) as usize;
                j += 1;
            }
            pending.truncate(kept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn image(n: u64, seed: u64) -> Vec<u64> {
        let perm = FeistelPermutation::new(n, seed);
        (0..n).map(|v| perm.apply(v)).collect()
    }

    #[test]
    fn bijection_across_domain_sizes() {
        // Powers of four, powers of two needing an odd bit count, and
        // awkward in-between sizes that force cycle-walking.
        for n in [1u64, 2, 3, 4, 5, 7, 16, 17, 100, 1023, 1024, 1025, 4096] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let mut out = image(n, seed);
                out.sort_unstable();
                assert_eq!(out, (0..n).collect::<Vec<u64>>(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(image(500, 7), image(500, 7));
        assert_ne!(image(500, 7), image(500, 8));
    }

    #[test]
    fn actually_scrambles() {
        // A permutation that fixes nearly everything would defeat the
        // purpose; demand that most labels move.
        let out = image(1000, 3);
        let fixed = out
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u64 == v)
            .count();
        assert!(fixed < 50, "{fixed} fixed points out of 1000");
    }

    #[test]
    fn does_not_preserve_locality() {
        // Consecutive labels must not stay consecutive — index-adjacency is
        // exactly the structure the relabelling exists to destroy.
        let perm = FeistelPermutation::new(100_000, 7);
        let adjacent = (0..10_000u64)
            .filter(|&x| perm.apply(x + 1).abs_diff(perm.apply(x)) == 1)
            .count();
        assert!(adjacent < 20, "{adjacent} adjacent pairs survived of 10000");
    }

    #[test]
    fn degree_histogram_is_preserved() {
        let edges = [(0u64, 1), (1, 2), (2, 0), (3, 3), (0, 1), (4, 0)];
        let perm = FeistelPermutation::new(5, 99);
        let relabelled: Vec<(u64, u64)> = edges.iter().map(|&e| perm.apply_edge(e)).collect();
        let histogram = |edges: &[(u64, u64)]| {
            let mut rows: BTreeMap<u64, u64> = BTreeMap::new();
            for &(r, _) in edges {
                *rows.entry(r).or_insert(0) += 1;
            }
            let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
            for &d in rows.values() {
                *counts.entry(d).or_insert(0) += 1;
            }
            counts
        };
        assert_eq!(histogram(&edges), histogram(&relabelled));
        let loops = |edges: &[(u64, u64)]| edges.iter().filter(|&&(r, c)| r == c).count();
        assert_eq!(loops(&edges), loops(&relabelled));
    }

    #[test]
    fn batched_relabelling_equals_per_edge_apply() {
        // The batched hot path must compute the *same function* as apply —
        // including every cycle-walk — across sizes that do and don't force
        // walking, sizes on both sides of the table threshold, chunk sizes,
        // and seeds.
        for n in [1u64, 5, 1024, 1025, 530_400, TABLE_MAX_DOMAIN + 13] {
            for seed in [0u64, 9, 0x5EED] {
                let perm = FeistelPermutation::new(n, seed);
                let edges: Vec<(u64, u64)> = (0..2_000u64)
                    .map(|i| (diffuse(i) % n, diffuse(i ^ 0xF00D) % n))
                    .collect();
                let expected: Vec<(u64, u64)> = edges.iter().map(|&e| perm.apply_edge(e)).collect();
                let mut out = Vec::new();
                let mut pending = Vec::new();
                for chunk_len in [1usize, 7, 512, 2_000] {
                    let mut batched = Vec::new();
                    for chunk in edges.chunks(chunk_len) {
                        perm.apply_edges_into(chunk, &mut out, &mut pending);
                        batched.extend_from_slice(&out);
                    }
                    assert_eq!(batched, expected, "n={n} seed={seed} chunk={chunk_len}");
                }
                // Empty chunks are fine and leave the buffers empty.
                perm.apply_edges_into(&[], &mut out, &mut pending);
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn permutation_golden_values_are_seed_stable() {
        // Exact outputs pinned before the batched retry tail landed: any
        // change to the key schedule, round function, round count, or the
        // cycle-walk itself is a seed-compatibility break (previously
        // recorded manifests would replay a different relabelling) and must
        // fail here, not be discovered in a downstream dataset.
        type GoldenCase = (u64, u64, &'static [(u64, u64)]);
        let cases: &[GoldenCase] = &[
            (
                530_400,
                0x5EED,
                &[
                    (0, 432_656),
                    (1, 185_448),
                    (2, 189_491),
                    (1023, 124_237),
                    (265_200, 491_656),
                    (530_399, 334_647),
                ],
            ),
            (
                1 << 20,
                42,
                &[
                    (0, 707_873),
                    (1, 157_160),
                    (2, 778_900),
                    (1023, 591_821),
                    (524_288, 443_439),
                    (1_048_575, 140_492),
                ],
            ),
            (
                20_400,
                99,
                &[
                    (0, 11_079),
                    (1, 4_744),
                    (2, 6_719),
                    (1023, 10_804),
                    (10_200, 16_444),
                    (20_399, 10_413),
                ],
            ),
            (
                u64::MAX - 3,
                5,
                &[
                    (0, 2_417_852_004_650_106_285),
                    (1, 5_988_385_429_285_447_643),
                    (2, 9_510_331_781_891_129_470),
                    (1023, 14_256_582_083_747_129_534),
                    (9_223_372_036_854_775_806, 6_193_212_085_761_497_435),
                    (18_446_744_073_709_551_611, 16_638_709_567_451_873_422),
                ],
            ),
        ];
        for &(n, seed, pairs) in cases {
            let perm = FeistelPermutation::new(n, seed);
            // Pin the scalar walk and the batched chunk path to the same
            // golden outputs — both are public entry points.
            let edges: Vec<(u64, u64)> = pairs.iter().map(|&(x, _)| (x, x)).collect();
            let mut out = Vec::new();
            let mut pending = Vec::new();
            perm.apply_edges_into(&edges, &mut out, &mut pending);
            for (k, &(x, expected)) in pairs.iter().enumerate() {
                assert_eq!(perm.apply(x), expected, "apply n={n} seed={seed} x={x}");
                assert_eq!(
                    out[k],
                    (expected, expected),
                    "batched n={n} seed={seed} x={x}"
                );
            }
        }
    }

    #[test]
    fn table_path_is_the_network_walk_exactly() {
        // Tabled domains must return precisely what the O(1)-memory network
        // walk would — entry by entry, for every vertex — or the threshold
        // constant would silently change relabelled streams.
        let n = 43_200u64; // the source-throughput bench's Kronecker domain
        let perm = FeistelPermutation::new(n, 0x5EED);
        assert!(perm.table.is_some(), "n={n} should sit below the threshold");
        for x in 0..n {
            assert_eq!(perm.apply(x), perm.walk(x), "x={x}");
        }
        // And a domain just past the threshold stays table-free.
        let big = FeistelPermutation::new(TABLE_MAX_DOMAIN + 1, 0x5EED);
        assert!(big.table.is_none());
    }

    #[test]
    fn tiny_domains_are_total() {
        let perm = FeistelPermutation::new(1, 12345);
        assert_eq!(perm.apply(0), 0);
        assert_eq!(perm.len(), 1);
        assert!(!perm.is_empty());
        assert!(FeistelPermutation::new(0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside permutation domain")]
    fn out_of_domain_input_panics() {
        FeistelPermutation::new(10, 1).apply(10);
    }

    #[test]
    fn huge_domains_stay_in_range() {
        // Near the top of u64: the network must not overflow and the walk
        // must terminate.
        let n = u64::MAX - 3;
        let perm = FeistelPermutation::new(n, 5);
        for x in [0u64, 1, 12345, n - 1] {
            assert!(perm.apply(x) < n);
        }
    }
}
