//! §V claims, quantified: every worker receives the same number of edges and
//! the generated graph has none of the structural artefacts (self-loops,
//! empty vertices, duplicate edges) that random generators produce.

use kron_bench::{design, figure_header, machine_pipeline, paper};
use kron_core::SelfLoop;
use kron_gen::measure::BalanceReport;
use kron_sparse::select::{empty_vertices, has_duplicates, self_loop_count};

fn main() {
    figure_header(
        "Balance / cleanliness",
        "per-worker edge balance and structural checks (§V)",
    );

    let scaled = design(paper::MACHINE_SCALE, SelfLoop::Centre);
    println!(
        "design: m̂ = {:?} with centre loops -> {} edges\n",
        paper::MACHINE_SCALE,
        scaled.edges()
    );
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "workers", "min edges", "max edges", "imbalance", "max/mean"
    );
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let run = machine_pipeline(&scaled, workers)
            .split_index(paper::MACHINE_SCALE_SPLIT)
            .count()
            .expect("machine-scale design fits in memory");
        let balance = BalanceReport::from_stats(&run.stats);
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>12.4}",
            workers,
            balance.min_edges,
            balance.max_edges,
            balance.max_edges - balance.min_edges,
            balance.max_over_mean,
        );
    }

    let collected = machine_pipeline(&scaled, 8)
        .split_index(paper::MACHINE_SCALE_SPLIT)
        .collect_coo()
        .expect("machine-scale design fits in memory");
    let assembled = collected.assemble();
    println!("\nstructural checks on the assembled graph:");
    println!("  self-loops:       {}", self_loop_count(&assembled));
    println!("  duplicate edges:  {}", has_duplicates(&assembled));
    println!("  empty vertices:   {}", empty_vertices(&assembled).len());
    assert_eq!(self_loop_count(&assembled), 0);
    assert!(!has_duplicates(&assembled));
    assert!(empty_vertices(&assembled).is_empty());
    println!("\n§V reproduced: equal per-worker edge counts, no reindexing required.");
}
