//! Graph500-style use of a designed graph: generate it in parallel, run BFS
//! from a set of roots, validate every BFS tree against the adjacency matrix,
//! and report traversal statistics.  This is the "downstream consumer" view:
//! the generated graph is exactly the one the designer specified, so the BFS
//! workload's input properties (vertex count, edge count, degree skew) are
//! known in advance rather than discovered afterwards.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph500_style_bfs
//! ```

use std::time::Instant;

use extreme_graphs::sparse::bfs::{bfs, connected_components};
use extreme_graphs::sparse::{CsrMatrix, PlusTimes};
use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design and generate: centre-loop construction so the graph is connected
    // through its hub and has a known triangle count too.
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::Centre)?;
    println!(
        "designed graph: {} vertices, {} edges, {} triangles (all known before generation)",
        design.vertices(),
        design.edges(),
        design.triangles()?,
    );

    let started = Instant::now();
    let report = Pipeline::for_design(&design)
        .workers(8)
        .max_c_edges(200_000)
        .collect_coo()?;
    println!(
        "generated in {:?} on {} workers ({:.1} Medges/s), streamed validation exact: {}",
        started.elapsed(),
        report.stats.workers,
        report.stats.edges_per_second() / 1e6,
        report.validation.is_exact_match(),
    );

    // Build the CSR the traversal kernels consume.
    let assembled = report.assemble();
    let csr = CsrMatrix::from_coo::<PlusTimes>(&assembled)?;

    // Connectivity: the centre-loop star product is a single connected
    // component (every vertex reaches the all-centres hub).
    let (_, components) = connected_components(&csr)?;
    println!("connected components: {components}");

    // BFS from a deterministic sample of roots, Graph500-style.
    let n = csr.nrows();
    let roots: Vec<usize> = (0..16).map(|i| (i * 7919) % n).collect();
    println!(
        "\n{:>10} {:>12} {:>12} {:>14} {:>12}",
        "root", "reached", "max level", "time", "valid"
    );
    let mut total_edges_traversed = 0u64;
    let mut total_seconds = 0.0f64;
    for &root in &roots {
        let started = Instant::now();
        let tree = bfs(&csr, root)?;
        let elapsed = started.elapsed();
        tree.validate(&csr)?;
        total_edges_traversed += csr.nnz() as u64;
        total_seconds += elapsed.as_secs_f64();
        println!(
            "{:>10} {:>12} {:>12} {:>14?} {:>12}",
            root,
            tree.reached(),
            tree.max_level(),
            elapsed,
            "ok"
        );
        assert_eq!(
            tree.reached(),
            n,
            "centre-loop Kronecker graphs are connected"
        );
    }
    println!(
        "\naggregate traversal rate: {:.1} Medges/s over {} BFS runs",
        total_edges_traversed as f64 / total_seconds / 1e6,
        roots.len()
    );
    println!("graph500_style_bfs: every BFS tree validated against the designed graph ✓");

    Ok(())
}
