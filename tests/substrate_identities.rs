//! Integration tests for the algebraic identities the paper relies on,
//! checked across crate boundaries on realised graphs: the Kronecker
//! mixed-product rule, incidence-matrix reconstruction, BFS connectivity of
//! star products, and the equivalence of the independent triangle counters.

use extreme_graphs::bignum::BigUint;
use extreme_graphs::core::incidence::{design_incidence, IncidencePair};
use extreme_graphs::core::powerlaw::star_products_unique;
use extreme_graphs::sparse::bfs::{bfs, connected_components};
use extreme_graphs::sparse::ops::spgemm;
use extreme_graphs::sparse::triangles::{
    count_triangles, count_triangles_merge, count_triangles_oriented,
};
use extreme_graphs::sparse::{kron_coo, CsrMatrix, PlusTimes};
use extreme_graphs::{KroneckerDesign, SelfLoop, StarGraph};

fn csr(coo: &extreme_graphs::sparse::CooMatrix<u64>) -> CsrMatrix<u64> {
    CsrMatrix::from_coo::<PlusTimes>(coo).unwrap()
}

#[test]
fn mixed_product_rule_on_star_adjacencies() {
    // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD) with star adjacency matrices.
    let a = StarGraph::new(3, SelfLoop::Centre).unwrap().adjacency();
    let b = StarGraph::new(4, SelfLoop::None).unwrap().adjacency();
    let c = StarGraph::new(3, SelfLoop::Leaf).unwrap().adjacency();
    let d = StarGraph::new(4, SelfLoop::Centre).unwrap().adjacency();

    let left = spgemm::<u64, PlusTimes>(
        &csr(&kron_coo::<u64, PlusTimes>(&a, &b).unwrap()),
        &csr(&kron_coo::<u64, PlusTimes>(&c, &d).unwrap()),
    )
    .unwrap();
    let ac = spgemm::<u64, PlusTimes>(&csr(&a), &csr(&c)).unwrap();
    let bd = spgemm::<u64, PlusTimes>(&csr(&b), &csr(&d)).unwrap();
    let right = csr(&kron_coo::<u64, PlusTimes>(&ac.to_coo(), &bd.to_coo()).unwrap());
    assert_eq!(left, right);
}

#[test]
fn incidence_product_reconstructs_every_design() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 5], self_loop).unwrap();
        let pair = design_incidence(&design, 100_000).unwrap();
        assert_eq!(BigUint::from(pair.edges()), design.nnz_with_loops());
        let rebuilt = pair.to_adjacency().unwrap();
        let raw = design.realize_raw(100_000).unwrap();
        // Same pattern (values may differ because E_outᵀ·E_in counts parallel
        // edge rows, which do not occur here).
        let rebuilt_pattern: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> = rebuilt.iter().map(|(r, c, _)| (r, c)).collect();
            v.sort_unstable();
            v
        };
        let raw_pattern: Vec<(u64, u64)> = {
            let mut v: Vec<(u64, u64)> = raw.iter().map(|(r, c, _)| (r, c)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            rebuilt_pattern, raw_pattern,
            "incidence mismatch for {self_loop:?}"
        );
    }
}

#[test]
fn incidence_pair_kron_matches_design_incidence() {
    let design = KroneckerDesign::from_star_points(&[4, 3], SelfLoop::Centre).unwrap();
    let from_design = design_incidence(&design, 100_000).unwrap();
    let stars: Vec<IncidencePair> = design
        .constituents()
        .iter()
        .map(|c| IncidencePair::from_adjacency(&c.adjacency()))
        .collect();
    let manual = stars[0].kron(&stars[1]).unwrap();
    assert_eq!(manual.edges(), from_design.edges());
    assert_eq!(
        manual.to_adjacency().unwrap().nnz(),
        from_design.to_adjacency().unwrap().nnz()
    );
}

#[test]
fn centre_loop_products_are_connected_leaf_and_plain_are_not_necessarily() {
    // Centre-loop products are connected through the all-centres hub.
    let centre = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
    let graph = csr(&centre.realize(1_000_000).unwrap());
    let (_, components) = connected_components(&graph).unwrap();
    assert_eq!(components, 1);
    let tree = bfs(&graph, 0).unwrap();
    assert_eq!(tree.reached(), graph.nrows());
    tree.validate(&graph).unwrap();

    // The plain bipartite product splits into multiple bipartite pieces
    // (Weichsel's theorem) — exactly what Figure 1 illustrates.
    let plain = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
    let graph = csr(&plain.realize(1_000_000).unwrap());
    let (_, components) = connected_components(&graph).unwrap();
    assert!(components > 1, "bipartite star products are disconnected");
}

#[test]
fn triangle_counters_agree_on_kronecker_graphs() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], self_loop).unwrap();
        let graph = csr(&design.realize(1_000_000).unwrap());
        let by_formula = count_triangles(&graph).unwrap();
        let by_merge = count_triangles_merge(&graph).unwrap();
        let by_rank = count_triangles_oriented(&graph).unwrap();
        assert_eq!(by_formula, by_merge);
        assert_eq!(by_formula, by_rank);
        assert_eq!(BigUint::from(by_formula), design.triangles().unwrap());
    }
}

#[test]
fn product_uniqueness_controls_perfect_power_law() {
    // Unique products -> exact n(d) = c/d; colliding products -> not.
    let unique = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
    assert!(star_products_unique(&[3, 4, 5]));
    assert!(unique
        .degree_distribution()
        .perfect_power_law_constant()
        .is_some());

    let colliding = KroneckerDesign::from_star_points(&[2, 3, 6], SelfLoop::None).unwrap();
    assert!(!star_products_unique(&[2, 3, 6]));
    assert!(colliding
        .degree_distribution()
        .perfect_power_law_constant()
        .is_none());
    // Even so, every exact count still holds for the colliding design.
    let graph = colliding.realize(100_000).unwrap();
    assert_eq!(BigUint::from(graph.nnz() as u64), colliding.edges());
}
