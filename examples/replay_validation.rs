//! Validate an existing graph from disk: generate once, then re-measure the
//! shards through `ReplaySource` and check the streamed metrics reproduce
//! the generation-time ones exactly — the design → generate → **validate**
//! loop as a standalone stage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example replay_validation
//! ```

use extreme_graphs::gen::{Pipeline, PredicateCountMetric, ReplaySource};
use extreme_graphs::{KroneckerDesign, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("extreme_graphs_replay_validation");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Generate a designed graph to binary shards (one per worker, plus a
    //    manifest.json describing the run and its measured metrics).
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)?;
    let generated = Pipeline::for_design(&design)
        .workers(4)
        .write_binary(&dir)?;
    assert!(generated.is_valid());
    println!("=== generation ===");
    println!(
        "wrote {} shards, {} edges, exact match: {}",
        generated.manifest.outputs.len(),
        generated.edge_count(),
        generated.is_valid()
    );

    // 2. Replay: stream the shard set back through the same pipeline — no
    //    regeneration — re-measuring everything the run measured, plus a
    //    custom metric the original run never computed.
    let source = ReplaySource::from_directory(&dir)?;
    let replayed = Pipeline::for_source(source)
        .workers(4)
        .with_metric(PredicateCountMetric::new("upper_triangle", |r, c| r < c))
        .count()?;
    assert!(replayed.is_valid());

    println!();
    println!("=== replayed metrics (measured from disk) ===");
    for record in replayed.metrics.records() {
        println!("  {:<28} {}", record.name, record.value);
    }

    // 3. The replay-validation check: the built-in metric report of the
    //    replay equals the generation-time one, field for field (the custom
    //    metric is extra — the generation run never computed it).
    let mut replayed_builtins = replayed.metrics.clone();
    let custom = std::mem::take(&mut replayed_builtins.custom);
    assert_eq!(
        replayed_builtins, generated.metrics,
        "replayed metrics must reproduce the generation-time metrics"
    );
    println!();
    println!("replayed metrics == generation-time metrics: OK");
    println!(
        "upper-triangle edges (computed only at replay): {}",
        custom[0].value
    );
    let fit = replayed
        .metrics
        .power_law
        .as_ref()
        .ok_or("a designed graph pins a slope")?;
    println!(
        "power-law fit: alpha {:.4}, residual vs ideal {:.4}",
        fit.alpha, fit.residual_vs_ideal
    );

    std::fs::remove_dir_all(&dir).ok();

    Ok(())
}
