//! Figure 4: exact agreement between the predicted and measured degree
//! distribution of a trillion-edge power-law Kronecker graph.
//!
//! The full-scale design (11,177,649,600 vertices, 1,853,002,140,758 edges,
//! 6,777,007,252,427 triangles) is predicted analytically and its degree
//! distribution series printed.  A machine-scale design with the same
//! structure is then generated in parallel and its *measured* distribution
//! compared point-by-point with the prediction — the figure's "predicted"
//! and "measured" curves.

use kron_bench::{design, figure_header, machine_generator, paper, print_distribution_series};
use kron_bignum::grouped;
use kron_core::validate::compare_properties;
use kron_core::SelfLoop;
use kron_gen::measure::measured_properties;

fn main() {
    figure_header(
        "Figure 4",
        "predicted vs measured degree distribution (centre-loop design)",
    );

    // Full paper scale, analytic.
    let full = design(paper::FIG3_4, SelfLoop::Centre);
    println!("full-scale design (analytic):");
    println!("  vertices:  {}", grouped(&full.vertices().to_string()));
    println!("  edges:     {}", grouped(&full.edges().to_string()));
    println!(
        "  triangles: {}",
        grouped(&full.triangles().unwrap().to_string())
    );
    println!(
        "  edge/vertex ratio: {:.4}  (paper caption: 165.7774)",
        full.properties().edge_vertex_ratio()
    );
    println!("\npredicted degree distribution of the full-scale graph:");
    print_distribution_series(&full.degree_distribution(), 24);

    // Machine scale, generated and measured.
    let scaled = design(paper::MACHINE_SCALE, SelfLoop::Centre);
    println!(
        "\nmachine-scale generation with the same structure (m̂ = {:?}):",
        paper::MACHINE_SCALE
    );
    let generator = machine_generator(8);
    let graph = generator
        .generate(&scaled)
        .expect("machine-scale design fits in memory");
    let measured = measured_properties(&graph, 60_000_000).expect("measurable");
    let predicted = scaled.properties();
    println!(
        "  generated {} edges on {} workers at {:.1} Medges/s",
        grouped(&graph.stats.total_edges.to_string()),
        graph.stats.workers,
        graph.stats.edges_per_second() / 1e6
    );

    println!("\npredicted vs measured (every field exact):");
    let report = compare_properties(&predicted, &measured);
    println!("{report}");
    assert!(report.is_exact_match());

    println!("\nmeasured degree distribution (equals prediction exactly):");
    print_distribution_series(&measured.degree_distribution, 24);
    println!("\nFigure 4 reproduced: predicted and measured distributions are identical.");
}
