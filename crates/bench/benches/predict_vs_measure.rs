//! The paper's core value proposition, timed: computing a graph's exact
//! properties analytically (never building the graph) versus realising the
//! graph and measuring the same properties.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kron_core::validate::measure_properties;
use kron_core::{KroneckerDesign, SelfLoop};

fn bench_predict_vs_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_vs_measure");
    group.sample_size(10);

    let cases: &[(&str, &[u64])] = &[
        ("small", &[3, 4, 5]),
        ("medium", &[3, 4, 5, 9]),
        ("large", &[3, 4, 5, 9, 16]),
    ];
    for &(label, points) in cases {
        let design =
            KroneckerDesign::from_star_points(points, SelfLoop::Centre).expect("valid design");

        group.bench_with_input(
            BenchmarkId::new("analytic_prediction", label),
            &(),
            |b, _| {
                b.iter(|| design.properties());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("realize_and_measure", label),
            &(),
            |b, _| {
                b.iter(|| {
                    let graph = design.realize(60_000_000).expect("fits in memory");
                    measure_properties(&graph).expect("measurable")
                });
            },
        );
    }

    // Prediction also works at scales that cannot be realised at all; time it
    // for the paper's decetta-scale design.
    let decetta = KroneckerDesign::from_star_points(
        &[
            3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
        ],
        SelfLoop::Leaf,
    )
    .expect("valid design");
    group.bench_function("analytic_prediction/decetta_scale", |b| {
        b.iter(|| decetta.properties());
    });
    group.finish();
}

criterion_group!(benches, bench_predict_vs_measure);
criterion_main!(benches);
