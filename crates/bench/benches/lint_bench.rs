//! Self-timing for the static analyzer: whole-workspace `kron-lint`
//! wall time, tracked like every other hot path.
//!
//! The lint graduated from per-file token scanning to whole-workspace
//! semantic analysis (item parsing, a cross-crate call graph, and the
//! reachability BFS), so its cost is no longer trivially linear in file
//! count.  This bench measures
//!
//! * `lint_full` — `lint_root` end to end: parallel per-file analysis
//!   followed by the sequential cross-file phase,
//! * `analyze_sequential` — the same end-to-end work (reads included)
//!   on one thread, pricing what the vendored-rayon parallelism buys,
//!
//! and records file/finding/suppression counts so a finding-set change
//! is visible next to any timing change.  Results are printed and
//! written as machine-readable JSON to `BENCH_lint.json` at the
//! workspace root, so successive PRs can track the trajectory.

use std::path::Path;
use std::time::{Duration, Instant};

use kron_lint::{analyze_file, collect_sources, lint_root, lint_workspace};

const SAMPLES: usize = 5;

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_passes(mut pass: impl FnMut()) -> Duration {
    median(
        (0..SAMPLES)
            .map(|_| {
                let started = Instant::now();
                pass();
                started.elapsed()
            })
            .collect(),
    )
}

fn main() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let findings = lint_root(root).expect("workspace lints");
    let unsuppressed = findings.iter().filter(|f| !f.suppressed).count();
    let suppressed = findings.len() - unsuppressed;
    let files = collect_sources(root)
        .expect("workspace sources enumerate")
        .len();
    println!(
        "lint_bench: {files} files, {unsuppressed} unsuppressed + {suppressed} suppressed finding(s)"
    );

    let full = time_passes(|| {
        criterion::black_box(lint_root(root).expect("workspace lints"));
    });
    let sequential = time_passes(|| {
        let analyses: Vec<_> = collect_sources(root)
            .expect("workspace sources enumerate")
            .into_iter()
            .filter_map(|rel| {
                let text = std::fs::read_to_string(root.join(&rel)).expect("readable source");
                analyze_file(&rel, &text)
            })
            .collect();
        criterion::black_box(lint_workspace(&analyses));
    });

    println!("  lint_full           median {full:>12?}");
    println!("  analyze_sequential  median {sequential:>12?}");
    let speedup = sequential.as_secs_f64() / full.as_secs_f64();
    println!("  parallel speedup: {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"lint\",\n  \"files\": {files},\n  \"findings_unsuppressed\": {unsuppressed},\n  \"findings_suppressed\": {suppressed},\n  \"samples\": {SAMPLES},\n  \"results\": [\n    {{\"name\": \"lint_full\", \"seconds\": {:.6}}},\n    {{\"name\": \"analyze_sequential\", \"seconds\": {:.6}}}\n  ],\n  \"parallel_speedup\": {speedup:.3}\n}}\n",
        full.as_secs_f64(),
        sequential.as_secs_f64(),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(out_path, &json).expect("write BENCH_lint.json");
    println!("wrote {out_path}");
}
