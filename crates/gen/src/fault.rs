//! Deterministic fault injection for crash-safety testing.
//!
//! Proving that a pipeline run survives failures needs failures on demand:
//! reproducible ones, at exact points in the edge stream, distinguishing
//! *transient* faults (a retried attempt succeeds) from *permanent* ones (a
//! quarantined shard that only [`Pipeline::resume`] can repair).  This
//! module provides that harness:
//!
//! * [`FaultSchedule`] — a shared, seedable plan of per-worker faults with
//!   fail-after-N-edges semantics.  Transient faults fire a bounded number
//!   of times and then clear (so a retry eventually succeeds); permanent
//!   faults fire on every attempt.
//! * [`FaultySink`] — wraps any [`EdgeSink`], delivering edges faithfully
//!   until its worker's scheduled fault point, then delivering exactly the
//!   partial slice up to the boundary and failing — the shape of a real
//!   mid-write crash.
//! * [`FaultySource`] — wraps any [`EdgeSource`] the same way on the read
//!   side, so file-writing terminals (whose sinks the pipeline constructs
//!   internally) can be crashed mid-shard too.  The wrapper forwards the
//!   inner source's descriptor, predictions, and validation untouched: a
//!   faulty run is still *the same run*, which is what lets
//!   [`Pipeline::resume`] repair it afterwards.
//!
//! Everything is deterministic: an explicit schedule fires exactly where it
//! was placed, and [`FaultSchedule::seeded`] derives its plan from a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream of the seed,
//! so a failing test case is a seed, not a flake.
//!
//! [`Pipeline::resume`]: crate::pipeline::Pipeline::resume

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use kron_core::validate::ValidationReport;
use kron_core::{CoreError, GraphProperties};
use kron_sparse::SparseError;

use crate::chunk::EdgeChunk;
use crate::sink::EdgeSink;
use crate::source::{EdgeSource, SourceDescriptor, SourceRun};
use crate::split::SplitPlan;

/// How a planned fault behaves across attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails the next `failures` attempts that reach the fault point, then
    /// clears — a retried attempt eventually succeeds.
    Transient {
        /// Attempts this fault will still fail.
        failures: u32,
    },
    /// Fails every attempt that reaches the fault point — only quarantine
    /// (and a later resume without the fault) gets past it.
    Permanent,
}

/// One worker's planned fault, as [`FaultSchedule::planned`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// The worker the fault targets.
    pub worker: usize,
    /// Edges the worker's stream delivers before the fault fires.
    pub after_edges: u64,
    /// Transient or permanent.
    pub kind: FaultKind,
}

#[derive(Debug, Clone)]
struct FaultState {
    after_edges: u64,
    kind: FaultKind,
}

/// A shared, deterministic plan of per-worker faults.
///
/// Cloning shares the plan (it is behind an [`Arc`]), which is what makes
/// transient faults work across retries: every [`FaultySink`] /
/// [`FaultySource`] attempt consults — and a firing transient fault
/// decrements — the *same* plan, so the schedule "fail twice, then
/// succeed" means exactly that.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    faults: Arc<Mutex<BTreeMap<usize, FaultState>>>,
}

impl FaultSchedule {
    /// An empty schedule: nothing ever fails.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Plan a transient fault: worker `worker` fails after delivering
    /// `after_edges` edges, on its next `failures` attempts.
    pub fn with_transient(self, worker: usize, after_edges: u64, failures: u32) -> Self {
        if failures > 0 {
            // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
            self.faults.lock().expect("fault plan poisoned").insert(
                worker,
                FaultState {
                    after_edges,
                    kind: FaultKind::Transient { failures },
                },
            );
        }
        self
    }

    /// Plan a permanent fault: worker `worker` fails after delivering
    /// `after_edges` edges, on every attempt.
    pub fn with_permanent(self, worker: usize, after_edges: u64) -> Self {
        // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
        self.faults.lock().expect("fault plan poisoned").insert(
            worker,
            FaultState {
                after_edges,
                kind: FaultKind::Permanent,
            },
        );
        self
    }

    /// Derive a deterministic schedule for `workers` workers from `seed`:
    /// each worker independently faults with probability ~1/2; a faulting
    /// worker fails after 0–511 edges and is transient (1–3 failures) three
    /// times out of four, permanent otherwise.  The same seed always yields
    /// the same plan.
    pub fn seeded(seed: u64, workers: usize) -> Self {
        let schedule = FaultSchedule::none();
        for worker in 0..workers {
            // One independent SplitMix64 stream per worker, so the plan for
            // worker w does not depend on how many workers precede it.
            let mut state = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if !splitmix64(&mut state).is_multiple_of(2) {
                continue;
            }
            let after_edges = splitmix64(&mut state) % 512;
            let kind = if !splitmix64(&mut state).is_multiple_of(4) {
                FaultKind::Transient {
                    failures: 1 + (splitmix64(&mut state) % 3) as u32,
                }
            } else {
                FaultKind::Permanent
            };
            schedule
                .faults
                .lock()
                // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
                .expect("fault plan poisoned")
                .insert(worker, FaultState { after_edges, kind });
        }
        schedule
    }

    /// The faults still pending, in worker order — transient faults that
    /// already fired their last failure are gone.
    pub fn planned(&self) -> Vec<PlannedFault> {
        self.faults
            .lock()
            // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
            .expect("fault plan poisoned")
            .iter()
            .map(|(&worker, state)| PlannedFault {
                worker,
                after_edges: state.after_edges,
                kind: state.kind,
            })
            .collect()
    }

    /// Whether any fault is still pending.
    pub fn is_exhausted(&self) -> bool {
        // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
        self.faults.lock().expect("fault plan poisoned").is_empty()
    }

    /// Consult the plan for a batch of `batch` edges arriving when `worker`
    /// has already delivered `delivered` edges this attempt.  If the fault
    /// point falls inside (or before) the batch, returns how many of the
    /// batch's edges to deliver before failing, plus the injected error —
    /// and counts a transient firing down.
    fn take_fault(&self, worker: usize, delivered: u64, batch: u64) -> Option<(u64, SparseError)> {
        // lint:allow(no-expect) -- a poisoned fault-plan mutex means a worker already panicked; re-panicking is the correct fault-injection outcome
        let mut faults = self.faults.lock().expect("fault plan poisoned");
        let state = faults.get_mut(&worker)?;
        if delivered + batch < state.after_edges {
            return None;
        }
        let boundary = state.after_edges.saturating_sub(delivered).min(batch);
        let after = state.after_edges;
        let label = match &mut state.kind {
            FaultKind::Transient { failures } => {
                *failures -= 1;
                if *failures == 0 {
                    faults.remove(&worker);
                }
                "transient"
            }
            FaultKind::Permanent => "permanent",
        };
        Some((
            boundary,
            SparseError::Io(format!(
                "injected {label} fault for worker {worker} after {after} edges"
            )),
        ))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An [`EdgeSink`] wrapper that fails at its worker's scheduled fault
/// point, after delivering exactly the scheduled prefix to the inner sink —
/// a reproducible mid-write crash.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    worker: usize,
    schedule: FaultSchedule,
    delivered: u64,
}

impl<S> FaultySink<S> {
    /// Wrap `inner` as worker `worker`'s sink under `schedule`.
    pub fn new(inner: S, worker: usize, schedule: FaultSchedule) -> Self {
        FaultySink {
            inner,
            worker,
            schedule,
            delivered: 0,
        }
    }
}

impl<S: EdgeSink> EdgeSink for FaultySink<S> {
    type Output = S::Output;

    fn consume(&mut self, edges: &[(u64, u64)]) -> Result<(), SparseError> {
        match self
            .schedule
            .take_fault(self.worker, self.delivered, edges.len() as u64)
        {
            Some((boundary, error)) => {
                if boundary > 0 {
                    self.inner.consume(&edges[..boundary as usize])?;
                }
                self.delivered += boundary;
                Err(error)
            }
            None => {
                self.inner.consume(edges)?;
                self.delivered += edges.len() as u64;
                Ok(())
            }
        }
    }

    fn finish(self) -> Result<Self::Output, SparseError> {
        self.inner.finish()
    }

    fn abandon(self) {
        self.inner.abandon();
    }

    fn payload_checksum(&self) -> Option<u64> {
        self.inner.payload_checksum()
    }
}

/// An [`EdgeSource`] wrapper whose workers fail at their scheduled fault
/// points — the way to crash the pipeline's *file* terminals, whose sinks
/// the pipeline constructs internally.  Everything else (vertex count,
/// predictions, validation, manifest descriptor) is the inner source's,
/// verbatim.
#[derive(Debug, Clone)]
pub struct FaultySource<S> {
    inner: S,
    schedule: FaultSchedule,
}

impl<S> FaultySource<S> {
    /// Wrap `inner` under `schedule`.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        FaultySource { inner, schedule }
    }
}

impl<S: EdgeSource> EdgeSource for FaultySource<S> {
    type Run = FaultyRun<S::Run>;

    fn vertices(&self) -> Result<u64, CoreError> {
        self.inner.vertices()
    }

    fn prepare(&self, workers: usize) -> Result<(Self::Run, Vec<String>), CoreError> {
        let (inner, warnings) = self.inner.prepare(workers)?;
        Ok((
            FaultyRun {
                inner,
                schedule: self.schedule.clone(),
            },
            warnings,
        ))
    }
}

/// The prepared run of a [`FaultySource`].
#[derive(Debug)]
pub struct FaultyRun<R> {
    inner: R,
    schedule: FaultSchedule,
}

impl<R: SourceRun> SourceRun for FaultyRun<R> {
    fn stream_worker<E, F>(
        &self,
        worker: usize,
        chunk: &mut EdgeChunk,
        mut sink: F,
    ) -> Result<u64, E>
    where
        E: From<SparseError>,
        F: FnMut(&[(u64, u64)]) -> Result<(), E>,
    {
        let mut delivered = 0u64;
        self.inner.stream_worker::<E, _>(worker, chunk, |edges| {
            match self
                .schedule
                .take_fault(worker, delivered, edges.len() as u64)
            {
                Some((boundary, error)) => {
                    if boundary > 0 {
                        sink(&edges[..boundary as usize])?;
                    }
                    delivered += boundary;
                    Err(E::from(error))
                }
                None => {
                    delivered += edges.len() as u64;
                    sink(edges)
                }
            }
        })
    }

    fn predicted_properties(&self) -> Option<GraphProperties> {
        self.inner.predicted_properties()
    }

    fn validate(&self, measured: &GraphProperties) -> ValidationReport {
        self.inner.validate(measured)
    }

    fn split_plan(&self) -> Option<SplitPlan> {
        self.inner.split_plan()
    }

    fn descriptor(&self) -> SourceDescriptor {
        self.inner.descriptor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountingSink;

    fn consume_all(
        sink: &mut FaultySink<CountingSink>,
        edges: &[(u64, u64)],
    ) -> Result<(), SparseError> {
        sink.consume(edges)
    }

    #[test]
    fn transient_faults_fire_then_clear() {
        let schedule = FaultSchedule::none().with_transient(0, 3, 2);
        let edges: Vec<(u64, u64)> = (0..5).map(|i| (i, i)).collect();

        // First two attempts fail after exactly 3 edges…
        for _ in 0..2 {
            let mut sink = FaultySink::new(CountingSink::new(), 0, schedule.clone());
            let err = consume_all(&mut sink, &edges).unwrap_err();
            assert!(err.to_string().contains("injected transient fault"));
            assert_eq!(sink.inner.clone().finish().unwrap(), 3);
        }
        // …then the fault is spent and the third attempt succeeds.
        assert!(schedule.is_exhausted());
        let mut sink = FaultySink::new(CountingSink::new(), 0, schedule.clone());
        consume_all(&mut sink, &edges).unwrap();
        assert_eq!(sink.finish().unwrap(), 5);
    }

    #[test]
    fn permanent_faults_fire_on_every_attempt() {
        let schedule = FaultSchedule::none().with_permanent(1, 0);
        for _ in 0..3 {
            let mut sink = FaultySink::new(CountingSink::new(), 1, schedule.clone());
            let err = sink.consume(&[(0, 0)]).unwrap_err();
            assert!(err.to_string().contains("permanent fault"));
            assert!(err.to_string().contains("worker 1"));
            // Boundary 0: nothing delivered before the failure.
            assert_eq!(sink.inner.clone().finish().unwrap(), 0);
        }
        assert!(!schedule.is_exhausted());
        // Other workers are untouched.
        let mut sink = FaultySink::new(CountingSink::new(), 0, schedule.clone());
        sink.consume(&[(0, 0)]).unwrap();
        assert_eq!(sink.finish().unwrap(), 1);
    }

    #[test]
    fn fault_boundary_splits_a_batch_mid_chunk() {
        let schedule = FaultSchedule::none().with_transient(0, 4, 1);
        let mut sink = FaultySink::new(CountingSink::new(), 0, schedule.clone());
        // 2 delivered, then the next batch of 4 crosses the boundary at 4.
        sink.consume(&[(0, 0), (1, 1)]).unwrap();
        let err = sink.consume(&[(2, 2), (3, 3), (4, 4), (5, 5)]).unwrap_err();
        assert!(err.to_string().contains("after 4 edges"));
        assert_eq!(sink.inner.clone().finish().unwrap(), 4);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultSchedule::seeded(0xFA17, 64);
        let b = FaultSchedule::seeded(0xFA17, 64);
        assert_eq!(a.planned(), b.planned());
        assert!(
            !a.planned().is_empty(),
            "64 workers at ~1/2 fault rate should plan at least one fault"
        );
        let c = FaultSchedule::seeded(0xFA18, 64);
        assert_ne!(a.planned(), c.planned(), "different seeds, different plans");
        // Per-worker independence: the plan for a given worker is the same
        // regardless of how many workers the schedule covers.
        let wide = FaultSchedule::seeded(0xFA17, 128);
        let wide_prefix: Vec<_> = wide
            .planned()
            .into_iter()
            .filter(|f| f.worker < 64)
            .collect();
        assert_eq!(a.planned(), wide_prefix);
    }
}
