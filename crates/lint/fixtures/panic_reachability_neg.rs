//@ path: crates/gen/src/under_test.rs
pub struct Pipeline;

impl Pipeline {
    pub fn count(self, values: &[u32]) -> u32 {
        total(values)
    }
}

fn total(values: &[u32]) -> u32 {
    // lint:allow(no-unwrap) -- documented contract: every caller passes a non-empty batch
    *values.first().unwrap()
}

fn orphan(values: &[u32]) -> u32 {
    *values.first().unwrap() //~ no-unwrap
}
