//! Target-driven design search.
//!
//! The whole point of the paper is to invert the usual workflow: instead of
//! generating a graph and measuring what came out, a designer states targets
//! (edge count, edge/vertex ratio, triangle regime) and obtains a constituent
//! list whose *exact* properties are known up front.  [`DesignSearch`]
//! performs that inversion over star-product designs: it enumerates
//! combinations of candidate star sizes, keeps only product-unique sets (the
//! perfect power-law condition), computes exact properties for each, and
//! returns the designs closest to the targets.

use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;

use crate::design::KroneckerDesign;
use crate::error::CoreError;
use crate::powerlaw::star_products_unique;
use crate::star::SelfLoop;

/// Targets for a design search.  All fields are optional except the edge
/// count; unspecified targets simply do not contribute to the ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignTargets {
    /// Desired number of edges of the final graph.
    pub edges: BigUint,
    /// Desired number of vertices (optional).
    pub vertices: Option<BigUint>,
    /// Desired triangle regime (optional; `SelfLoop::None` → zero triangles).
    pub self_loop: SelfLoop,
    /// Maximum number of constituents to combine.
    pub max_constituents: usize,
    /// Require the exact power-law condition (all star products unique).
    pub require_unique_products: bool,
}

impl DesignTargets {
    /// Convenience constructor: target an edge count with defaults
    /// (no vertex target, no self-loops, at most 8 constituents, uniqueness
    /// required).
    pub fn edges(edges: impl Into<BigUint>) -> Self {
        DesignTargets {
            edges: edges.into(),
            vertices: None,
            self_loop: SelfLoop::None,
            max_constituents: 8,
            require_unique_products: true,
        }
    }
}

/// A scored candidate produced by the search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignCandidate {
    /// The star points of the candidate design, in search order.
    pub points: Vec<u64>,
    /// Exact number of edges of the candidate.
    pub edges: BigUint,
    /// Exact number of vertices of the candidate.
    pub vertices: BigUint,
    /// Relative error of the edge count against the target
    /// (`|log10(edges) − log10(target)|`).
    pub edge_log_error: f64,
    /// Relative error of the vertex count against the target (0 when no
    /// vertex target was given).
    pub vertex_log_error: f64,
}

impl DesignCandidate {
    /// Combined ranking score (lower is better).
    pub fn score(&self) -> f64 {
        self.edge_log_error + self.vertex_log_error
    }

    /// Materialise the candidate as a design with the requested self-loop
    /// placement.
    pub fn into_design(self, self_loop: SelfLoop) -> Result<KroneckerDesign, CoreError> {
        KroneckerDesign::from_star_points(&self.points, self_loop)
    }
}

/// A design search over a pool of candidate star sizes.
#[derive(Debug, Clone)]
pub struct DesignSearch {
    pool: Vec<u64>,
}

impl Default for DesignSearch {
    fn default() -> Self {
        DesignSearch::new(DEFAULT_POOL.to_vec())
    }
}

/// The default candidate pool: the star sizes used across the paper's
/// evaluation plus nearby primes and prime powers, which keep subset products
/// unique.
pub const DEFAULT_POOL: &[u64] = &[
    3, 4, 5, 7, 9, 11, 13, 16, 25, 49, 81, 121, 128, 169, 256, 625, 2401, 14641,
];

impl DesignSearch {
    /// Create a search over an explicit pool of star sizes.
    pub fn new(mut pool: Vec<u64>) -> Self {
        pool.retain(|&p| p >= 1);
        pool.sort_unstable();
        pool.dedup();
        DesignSearch { pool }
    }

    /// The candidate pool.
    pub fn pool(&self) -> &[u64] {
        &self.pool
    }

    /// Run the search and return up to `top_k` candidates ranked by score.
    ///
    /// The search is a bounded depth-first enumeration of increasing subsets
    /// of the pool with two prunes: subsets whose edge count already exceeds
    /// the target stop growing, and (optionally) subsets whose products
    /// collide are discarded.
    pub fn search(
        &self,
        targets: &DesignTargets,
        top_k: usize,
    ) -> Result<Vec<DesignCandidate>, CoreError> {
        if self.pool.is_empty() {
            return Err(CoreError::DesignNotFound {
                message: "candidate pool is empty".into(),
            });
        }
        if targets.edges.is_zero() {
            return Err(CoreError::DesignNotFound {
                message: "edge target must be positive".into(),
            });
        }
        // lint:allow(no-expect) -- edge targets are validated non-zero before the search starts, so log10 is defined
        let target_log_edges = targets.edges.log10().expect("non-zero target");
        let target_log_vertices = targets.vertices.as_ref().and_then(|v| v.log10());

        let mut candidates: Vec<DesignCandidate> = Vec::new();
        let mut stack: Vec<u64> = Vec::new();
        self.enumerate(
            0,
            &mut stack,
            targets,
            target_log_edges,
            target_log_vertices,
            &mut candidates,
        );
        if candidates.is_empty() {
            return Err(CoreError::DesignNotFound {
                message: format!(
                    "no product-unique design with ≤{} constituents reaches ~{} edges",
                    targets.max_constituents, targets.edges
                ),
            });
        }
        candidates.sort_by(|a, b| {
            a.score()
                .partial_cmp(&b.score())
                // lint:allow(no-expect) -- candidate scores are sums of finite terms, so partial_cmp cannot return None
                .expect("scores are finite")
        });
        candidates.truncate(top_k.max(1));
        Ok(candidates)
    }

    fn enumerate(
        &self,
        start: usize,
        stack: &mut Vec<u64>,
        targets: &DesignTargets,
        target_log_edges: f64,
        target_log_vertices: Option<f64>,
        out: &mut Vec<DesignCandidate>,
    ) {
        if !stack.is_empty() {
            if targets.require_unique_products && !star_products_unique(stack) {
                return;
            }
            let (edges, vertices) = star_design_counts(stack, targets.self_loop);
            let edge_log_error = (edges.log10().unwrap_or(0.0) - target_log_edges).abs();
            let vertex_log_error = match (target_log_vertices, vertices.log10()) {
                (Some(t), Some(v)) => (v - t).abs(),
                _ => 0.0,
            };
            out.push(DesignCandidate {
                points: stack.clone(),
                edges: edges.clone(),
                vertices,
                edge_log_error,
                vertex_log_error,
            });
            // Prune: once past the edge target by 10x, adding more stars only
            // moves further away.
            if edges.log10().unwrap_or(0.0) > target_log_edges + 1.0 {
                return;
            }
        }
        if stack.len() >= targets.max_constituents {
            return;
        }
        for i in start..self.pool.len() {
            stack.push(self.pool[i]);
            self.enumerate(
                i + 1,
                stack,
                targets,
                target_log_edges,
                target_log_vertices,
                out,
            );
            stack.pop();
        }
    }
}

/// Exact `(edges, vertices)` of a star design without building constituents,
/// used inside the search loop for speed.
fn star_design_counts(points: &[u64], self_loop: SelfLoop) -> (BigUint, BigUint) {
    let mut edges = BigUint::one();
    let mut vertices = BigUint::one();
    for &p in points {
        let nnz = match self_loop {
            SelfLoop::None => 2 * p,
            _ => 2 * p + 1,
        };
        edges *= nnz;
        vertices *= p + 1;
    }
    if !matches!(self_loop, SelfLoop::None) {
        edges -= BigUint::one();
    }
    (edges, vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_known_design_for_paper_edge_target() {
        // Target the paper's Figure 3 B-factor: 13,824,000 edges.
        let search = DesignSearch::new(vec![3, 4, 5, 9, 16, 25, 81, 256]);
        let targets = DesignTargets::edges(BigUint::from(13_824_000u64));
        let results = search.search(&targets, 5).unwrap();
        assert!(!results.is_empty());
        let best = &results[0];
        assert_eq!(best.edges, BigUint::from(13_824_000u64));
        assert_eq!(best.points, vec![3, 4, 5, 9, 16, 25]);
        assert!(best.score() < 1e-9);
        let design = best.clone().into_design(SelfLoop::None).unwrap();
        assert_eq!(design.edges(), BigUint::from(13_824_000u64));
    }

    #[test]
    fn respects_vertex_target() {
        let search = DesignSearch::default();
        let mut targets = DesignTargets::edges(BigUint::from(80_000u64));
        targets.vertices = Some(BigUint::from(20_000u64));
        targets.max_constituents = 4;
        let results = search.search(&targets, 3).unwrap();
        for c in &results {
            assert!(c.score().is_finite());
        }
        // The best candidate should be within a factor of ~10 on both axes.
        assert!(results[0].edge_log_error < 1.0);
        assert!(results[0].vertex_log_error < 1.0);
    }

    #[test]
    fn unique_products_filter_is_applied() {
        let search = DesignSearch::new(vec![2, 3, 6]);
        let mut targets = DesignTargets::edges(BigUint::from(72u64));
        targets.max_constituents = 3;
        let results = search.search(&targets, 10).unwrap();
        for c in &results {
            assert!(
                star_products_unique(&c.points),
                "non-unique candidate {:?}",
                c.points
            );
        }
        // With the filter disabled the colliding set {2,3,6} is allowed.
        targets.require_unique_products = false;
        let unfiltered = search.search(&targets, 50).unwrap();
        assert!(unfiltered.iter().any(|c| c.points == vec![2, 3, 6]));
    }

    #[test]
    fn self_loop_target_changes_edge_counts() {
        let (edges_plain, vertices) = star_design_counts(&[3, 4], SelfLoop::None);
        assert_eq!(edges_plain, BigUint::from(48u64));
        assert_eq!(vertices, BigUint::from(20u64));
        let (edges_loop, _) = star_design_counts(&[3, 4], SelfLoop::Centre);
        assert_eq!(edges_loop, BigUint::from(7 * 9 - 1u64));
        let (edges_leaf, _) = star_design_counts(&[3, 4], SelfLoop::Leaf);
        assert_eq!(edges_leaf, edges_loop);
    }

    #[test]
    fn error_cases() {
        let search = DesignSearch::new(vec![]);
        assert!(search
            .search(&DesignTargets::edges(BigUint::from(10u64)), 3)
            .is_err());
        let search = DesignSearch::default();
        assert!(search
            .search(&DesignTargets::edges(BigUint::zero()), 3)
            .is_err());
    }

    #[test]
    fn default_pool_is_product_unique_overall() {
        // Not required in general, but the default pool was chosen so that
        // moderate subsets stay unique; check a representative subset.
        assert!(star_products_unique(&[3, 4, 5, 7, 9, 11, 16, 25]));
    }
}
