//! Crash safety end to end: inject deterministic faults into a generation
//! run, watch transient ones get retried in place and a permanent one get
//! quarantined, then repair the run with `Pipeline::resume` and prove the
//! result is byte-identical to a run that never failed — and finally show
//! the checksum layer catching a corrupted shard by name.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerant_run
//! ```

use std::path::{Path, PathBuf};
use std::time::Duration;

use extreme_graphs::gen::ReplaySource;
use extreme_graphs::{
    FaultSchedule, FaultySource, KroneckerDesign, KroneckerSource, Pipeline, RetryPolicy, SelfLoop,
};

/// One pipeline configuration, built identically every time — the
/// determinism `resume` relies on to regenerate exactly the missing work.
fn pipeline(design: &KroneckerDesign, workers: usize) -> extreme_graphs::DesignPipeline<'_> {
    Pipeline::for_design(design)
        .workers(workers)
        .split_index(2)
        .chunk_capacity(512)
}

fn shard_bytes(directory: &Path, extension: &str) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let mut shards = Vec::new();
    for entry in std::fs::read_dir(directory)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == extension) {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            shards.push((name, std::fs::read(&path)?));
        }
    }
    shards.sort();
    Ok(shards)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_fault_tolerant_run")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)?;
    let workers = 4;

    // 0. The reference: the same run, never interrupted.
    let clean_dir = fresh_dir("clean");
    let clean = pipeline(&design, workers).write_binary(&clean_dir)?;
    assert!(clean.is_valid());
    println!("=== reference run (no faults) ===");
    println!(
        "wrote {} shards, {} edges, exact match: {}",
        clean.manifest.outputs.len(),
        clean.edge_count(),
        clean.is_valid()
    );

    // 1. Inject faults: worker 1 fails once at edge 50 (transient — the
    //    retry policy absorbs it), worker 2 fails at edge 100 on every
    //    attempt (permanent — quarantined, its shard left missing).
    let crash_dir = fresh_dir("crash");
    let schedule = FaultSchedule::none()
        .with_transient(1, 50, 1)
        .with_permanent(2, 100);
    let source = KroneckerSource::new(&design).split_index(2);
    let crashed = Pipeline::for_source(FaultySource::new(source, schedule))
        .workers(workers)
        .chunk_capacity(512)
        .retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        })
        .quarantine_failures(true)
        .write_binary(&crash_dir)?;

    println!();
    println!("=== faulty run (transient fault on worker 1, permanent on worker 2) ===");
    println!(
        "complete: {}, failures: {}",
        crashed.is_complete(),
        crashed.failures.len()
    );
    for failure in &crashed.failures {
        println!(
            "  worker {} quarantined after {} attempt(s): {}",
            failure.worker, failure.attempts, failure.error
        );
    }
    assert!(!crashed.is_complete());
    assert_eq!(
        crashed.failures.len(),
        1,
        "only the permanent fault survives"
    );
    assert_eq!(crashed.failures[0].worker, 2);
    // The transient fault was retried in place; the permanent one left no
    // truncated shard behind — its staging file was abandoned.
    assert!(!crash_dir.join("block_00002.kbk").exists());
    assert_eq!(shard_bytes(&crash_dir, "kbk")?.len(), 3);
    assert!(shard_bytes(&crash_dir, "tmp")?.is_empty());

    // 2. Resume with the same (fault-free) configuration: the journal knows
    //    which shards finished; each is verified by checksum and skipped,
    //    and only worker 2's shard is regenerated.
    let resumed = pipeline(&design, workers).resume(&crash_dir)?;
    println!();
    println!("=== resumed run ===");
    for warning in &resumed.stats.warnings {
        println!("  note: {warning}");
    }
    assert!(resumed.is_complete());
    assert!(resumed.is_valid());
    assert_eq!(
        shard_bytes(&crash_dir, "kbk")?,
        shard_bytes(&clean_dir, "kbk")?,
        "resumed shards are byte-identical to the uninterrupted run"
    );
    assert_eq!(resumed.metrics, clean.metrics);
    println!(
        "repaired run: {} shards, {} edges, byte-identical to the reference: true",
        resumed.manifest.outputs.len(),
        resumed.edge_count()
    );

    // 3. Corruption detection: flip one payload bit in a finished shard.
    //    The edge stays in bounds, so only the recorded checksum can tell —
    //    and the error names the failing shard.
    let shard = crash_dir.join("block_00001.kbk");
    let mut bytes = std::fs::read(&shard)?;
    bytes[40] ^= 1;
    std::fs::write(&shard, &bytes)?;
    let err = Pipeline::for_source(ReplaySource::from_directory(&crash_dir)?)
        .workers(workers)
        .count()
        .expect_err("a flipped payload bit must fail the replay checksum");
    println!();
    println!("=== corruption detection on replay ===");
    println!("  {err}");
    assert!(err.to_string().contains("checksum mismatch"));
    assert!(err.to_string().contains("block_00001.kbk"));

    // 4. Resume heals the corruption too: the bad shard fails verification,
    //    is regenerated, and the directory matches the reference again.
    let healed = pipeline(&design, workers).resume(&crash_dir)?;
    assert!(healed.is_valid());
    assert_eq!(
        shard_bytes(&crash_dir, "kbk")?,
        shard_bytes(&clean_dir, "kbk")?
    );
    println!();
    println!("=== corruption repaired by resume ===");
    for warning in healed
        .stats
        .warnings
        .iter()
        .filter(|w| w.contains("block_00001.kbk"))
    {
        println!("  note: {warning}");
    }
    println!("directory byte-identical to the reference again: true");

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();

    Ok(())
}
