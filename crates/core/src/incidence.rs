//! Incidence (edge) matrices of Kronecker designs.
//!
//! The paper (§IV-D) represents a graph by two incidence matrices: `E_out`
//! with `E_out(e, i) = 1` and `E_in` with `E_in(e, j) = 1` meaning edge `e`
//! runs from vertex `i` to vertex `j`.  The adjacency matrix is recovered by
//! `A = E_outᵀ · E_in`, and — the property this module implements — the
//! incidence matrices of a Kronecker product are the Kronecker products of
//! the constituents' incidence matrices.

use kron_bignum::BigUint;
use kron_sparse::kron::kron_chain;
use kron_sparse::ops::spgemm;
use kron_sparse::{CooMatrix, CsrMatrix, PlusTimes};

use crate::design::KroneckerDesign;
use crate::error::CoreError;

/// A pair of incidence matrices describing the same edge set.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidencePair {
    /// `E_out(e, i) = 1` when edge `e` leaves vertex `i`.
    pub out: CooMatrix<u64>,
    /// `E_in(e, j) = 1` when edge `e` enters vertex `j`.
    pub inc: CooMatrix<u64>,
}

impl IncidencePair {
    /// Build the incidence pair of an arbitrary adjacency matrix, one edge
    /// row per stored entry, in iteration order.
    pub fn from_adjacency(adjacency: &CooMatrix<u64>) -> Self {
        let edges = adjacency.nnz() as u64;
        let vertices_out = adjacency.nrows();
        let vertices_in = adjacency.ncols();
        let mut out = CooMatrix::with_capacity(edges, vertices_out, adjacency.nnz());
        let mut inc = CooMatrix::with_capacity(edges, vertices_in, adjacency.nnz());
        for (e, (i, j, _)) in adjacency.iter().enumerate() {
            // lint:allow(no-expect) -- edge row e < edge count, the exact dimension the matrix was created with
            out.push(e as u64, i, 1).expect("edge row in bounds");
            // lint:allow(no-expect) -- edge row e < edge count, the exact dimension the matrix was created with
            inc.push(e as u64, j, 1).expect("edge row in bounds");
        }
        IncidencePair { out, inc }
    }

    /// Number of edges (rows).
    pub fn edges(&self) -> u64 {
        self.out.nrows()
    }

    /// Number of vertices (columns).
    pub fn vertices(&self) -> u64 {
        self.out.ncols()
    }

    /// Kronecker product of two incidence pairs: edge rows and vertex columns
    /// both combine multiplicatively.
    pub fn kron(&self, other: &IncidencePair) -> Result<IncidencePair, CoreError> {
        let out = kron_sparse::kron_coo::<u64, PlusTimes>(&self.out, &other.out)?;
        let inc = kron_sparse::kron_coo::<u64, PlusTimes>(&self.inc, &other.inc)?;
        Ok(IncidencePair { out, inc })
    }

    /// Reconstruct the adjacency matrix `A = E_outᵀ · E_in`.
    pub fn to_adjacency(&self) -> Result<CooMatrix<u64>, CoreError> {
        let out_t = CsrMatrix::from_coo::<PlusTimes>(&self.out.transpose())?;
        let inc = CsrMatrix::from_coo::<PlusTimes>(&self.inc)?;
        Ok(spgemm::<u64, PlusTimes>(&out_t, &inc)?.to_coo())
    }
}

/// Build the incidence pair of a full Kronecker design by taking the
/// Kronecker product of each constituent's incidence matrices (paper §IV-D).
///
/// The result describes the *raw* product (before the final self-loop
/// removal), mirroring the paper's construction; refuse designs whose edge
/// count does not fit in memory-addressable sizes.
pub fn design_incidence(
    design: &KroneckerDesign,
    max_edges: u64,
) -> Result<IncidencePair, CoreError> {
    let raw_edges = design.nnz_with_loops();
    if raw_edges > BigUint::from(max_edges) {
        return Err(CoreError::TooLargeToRealise {
            vertices: design.vertices().to_string(),
            edges: raw_edges.to_string(),
        });
    }
    let outs: Vec<CooMatrix<u64>> = design
        .constituents()
        .iter()
        .map(|c| IncidencePair::from_adjacency(&c.adjacency()).out)
        .collect();
    let incs: Vec<CooMatrix<u64>> = design
        .constituents()
        .iter()
        .map(|c| IncidencePair::from_adjacency(&c.adjacency()).inc)
        .collect();
    let out = kron_chain::<u64, PlusTimes>(&outs)?;
    let inc = kron_chain::<u64, PlusTimes>(&incs)?;
    Ok(IncidencePair { out, inc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::SelfLoop;
    use kron_sparse::semiring::Semiring;

    fn patterns_equal(a: &CooMatrix<u64>, b: &CooMatrix<u64>) -> bool {
        let mut ca = a.map_values(|_| 1u64);
        ca.sum_duplicates::<PlusTimes>();
        let mut cb = b.map_values(|_| 1u64);
        cb.sum_duplicates::<PlusTimes>();
        let na: Vec<(u64, u64)> = ca.iter().map(|(r, c, _)| (r, c)).collect();
        let nb: Vec<(u64, u64)> = cb.iter().map(|(r, c, _)| (r, c)).collect();
        na == nb
    }

    #[test]
    fn incidence_round_trips_simple_graph() {
        let adjacency =
            CooMatrix::from_edges(4, 4, vec![(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]).unwrap();
        let pair = IncidencePair::from_adjacency(&adjacency);
        assert_eq!(pair.edges(), 5);
        assert_eq!(pair.vertices(), 4);
        let rebuilt = pair.to_adjacency().unwrap();
        assert!(patterns_equal(&rebuilt, &adjacency));
    }

    #[test]
    fn kron_of_incidence_matches_incidence_of_kron() {
        // E(A) ⊗ E(B) reconstructs the adjacency of A ⊗ B (up to edge order).
        let a = CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let b = CooMatrix::from_edges(2, 2, vec![(0, 1), (1, 0)]).unwrap();
        let pair_a = IncidencePair::from_adjacency(&a);
        let pair_b = IncidencePair::from_adjacency(&b);
        let pair_ab = pair_a.kron(&pair_b).unwrap();
        let direct = kron_sparse::kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        assert_eq!(pair_ab.edges() as usize, direct.nnz());
        let rebuilt = pair_ab.to_adjacency().unwrap();
        assert!(patterns_equal(&rebuilt, &direct));
    }

    #[test]
    fn design_incidence_reconstructs_raw_product() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design =
                crate::design::KroneckerDesign::from_star_points(&[3, 4], self_loop).unwrap();
            let pair = design_incidence(&design, 100_000).unwrap();
            assert_eq!(BigUint::from(pair.edges()), design.nnz_with_loops());
            let rebuilt = pair.to_adjacency().unwrap();
            // Raw product (before self-loop removal) materialised directly:
            let matrices: Vec<CooMatrix<u64>> = design
                .constituents()
                .iter()
                .map(|c| c.adjacency())
                .collect();
            let raw = kron_chain::<u64, PlusTimes>(&matrices).unwrap();
            assert!(
                patterns_equal(&rebuilt, &raw),
                "incidence product mismatch ({self_loop:?})"
            );
        }
    }

    #[test]
    fn design_incidence_refuses_huge_designs() {
        let design =
            crate::design::KroneckerDesign::from_star_points(&[81, 256, 625], SelfLoop::None)
                .unwrap();
        assert!(matches!(
            design_incidence(&design, 1_000),
            Err(CoreError::TooLargeToRealise { .. })
        ));
    }

    #[test]
    fn incidence_values_are_semiring_ones() {
        let adjacency = CooMatrix::from_edges(3, 3, vec![(0, 1), (1, 2)]).unwrap();
        let pair = IncidencePair::from_adjacency(&adjacency);
        assert!(pair
            .out
            .values()
            .iter()
            .all(|&v| v == <PlusTimes as Semiring<u64>>::one()));
        assert!(pair
            .inc
            .values()
            .iter()
            .all(|&v| v == <PlusTimes as Semiring<u64>>::one()));
    }
}
