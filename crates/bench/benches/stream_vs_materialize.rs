//! Ablation: streaming edge generation versus materialising per-worker
//! blocks, at a fixed worker count.

// The legacy entry points are this benchmark's subject: they are measured
// against the pipeline on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kron_bench::paper;
use kron_core::{KroneckerDesign, SelfLoop};
use kron_gen::{count_edges_streaming, GeneratorConfig, ParallelGenerator};

fn bench_stream_vs_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_vs_materialize");
    group.sample_size(10);

    let cases: &[(&str, &[u64], usize)] = &[
        ("quarter_scale", &[3, 4, 5, 9], 2),
        (
            "machine_scale",
            paper::MACHINE_SCALE,
            paper::MACHINE_SCALE_SPLIT,
        ),
    ];
    let workers = 4usize;
    for &(label, points, split) in cases {
        let design =
            KroneckerDesign::from_star_points(points, SelfLoop::None).expect("valid design");
        group.throughput(Throughput::Elements(
            design.edges().to_u64().expect("machine scale"),
        ));

        group.bench_with_input(BenchmarkId::new("streaming", label), &(), |b, _| {
            b.iter(|| count_edges_streaming(&design, split, workers, 60_000_000).expect("fits"));
        });
        group.bench_with_input(
            BenchmarkId::new("materialised_blocks", label),
            &(),
            |b, _| {
                let generator = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 200_000,
                    max_total_edges: 60_000_000,
                });
                b.iter(|| {
                    generator
                        .generate_with_split(&design, split)
                        .expect("fits")
                        .edge_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream_vs_materialize);
criterion_main!(benches);
