//! Choosing the `B ⊗ C` split of a design.
//!
//! The paper requires both factors to fit in one processor's memory; beyond
//! that the split determines the available parallelism (`nnz(B)` triples are
//! what gets divided among workers) and the per-worker work
//! (`nnz(B)/N_p × nnz(C)` edges).  [`choose_split`] picks the split index
//! that keeps `C` under a memory budget while making `nnz(B)` at least the
//! requested worker count, preferring the most balanced option.

use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;
use kron_core::{CoreError, KroneckerDesign};

/// A chosen split of a design into `A = B ⊗ C`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Number of leading constituents forming `B`.
    pub split_index: usize,
    /// `nnz(B)` — the number of triples divided among workers.
    pub b_nnz: BigUint,
    /// `nnz(C)` — the number of edges each `B` triple expands into.
    pub c_nnz: BigUint,
    /// Number of vertices of `C` (each worker holds `C` densely as triples).
    pub c_vertices: BigUint,
}

impl SplitPlan {
    /// Edges produced per worker when `workers` divide `B`'s triples evenly.
    pub fn edges_per_worker(&self, workers: u64) -> BigUint {
        if workers == 0 {
            return BigUint::zero();
        }
        let total = &self.b_nnz * &self.c_nnz;
        total.div_rem_u64(workers).0
    }
}

/// [`choose_split`] with the single-worker fallback every generation entry
/// point shares: when no split can give `workers` workers at least one `B`
/// triple each, fall back to the best split for a single worker and return
/// the warning recording the lost `nnz(B) ≥ workers` balance guarantee
/// alongside it.
pub fn choose_split_with_fallback(
    design: &KroneckerDesign,
    max_c_edges: u64,
    workers: usize,
) -> Result<(SplitPlan, Option<String>), CoreError> {
    match choose_split(design, max_c_edges, workers as u64) {
        Ok(plan) => Ok((plan, None)),
        Err(_) => {
            let plan = choose_split(design, max_c_edges, 1)?;
            let warning = format!(
                "no split gives {workers} workers one B triple each; fell back to \
                 split index {} with nnz(B) = {}, so {} worker(s) are idle \
                 and the per-worker balance guarantee does not hold",
                plan.split_index,
                plan.b_nnz,
                workers.saturating_sub(plan.b_nnz.to_u64().unwrap_or(u64::MAX) as usize),
            );
            Ok((plan, Some(warning)))
        }
    }
}

/// Choose a split of `design` into `B ⊗ C` such that:
///
/// * `C` has at most `max_c_edges` stored entries (the per-worker memory
///   budget for the replicated factor), and
/// * `nnz(B)` is at least `min_b_nnz` (usually the worker count), so every
///   worker receives at least one triple.
///
/// Among the feasible splits the one with the largest `C` (and therefore the
/// smallest per-worker triple list) is returned, mirroring the paper's choice
/// of a small-but-dense `C`.
pub fn choose_split(
    design: &KroneckerDesign,
    max_c_edges: u64,
    min_b_nnz: u64,
) -> Result<SplitPlan, CoreError> {
    let n = design.len();
    if n < 2 {
        return Err(CoreError::DesignNotFound {
            message: "need at least two constituents to split into B ⊗ C".into(),
        });
    }
    let max_c = BigUint::from(max_c_edges);
    let min_b = BigUint::from(min_b_nnz);
    let mut best: Option<SplitPlan> = None;
    for split_index in 1..n {
        let (b, c) = design.split(split_index)?;
        let b_nnz = b.nnz_with_loops();
        let c_nnz = c.nnz_with_loops();
        if c_nnz > max_c || b_nnz < min_b {
            continue;
        }
        let plan = SplitPlan {
            split_index,
            b_nnz,
            c_nnz,
            c_vertices: c.vertices(),
        };
        let better = match &best {
            None => true,
            Some(existing) => plan.c_nnz > existing.c_nnz,
        };
        if better {
            best = Some(plan);
        }
    }
    best.ok_or_else(|| CoreError::DesignNotFound {
        message: format!(
            "no split keeps C within {max_c_edges} edges while giving B at least {min_b_nnz} triples"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::SelfLoop;

    fn paper_design() -> KroneckerDesign {
        KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16, 25, 81, 256], SelfLoop::None).unwrap()
    }

    #[test]
    fn reproduces_paper_b_c_split() {
        // The paper uses B = m̂{3,4,5,9,16,25} (13,824,000 edges) and
        // C = m̂{81,256} (82,944 edges): split index 6.
        let plan = choose_split(&paper_design(), 100_000, 1_000).unwrap();
        assert_eq!(plan.split_index, 6);
        assert_eq!(plan.b_nnz, BigUint::from(13_824_000u64));
        assert_eq!(plan.c_nnz, BigUint::from(82_944u64));
        assert_eq!(plan.c_vertices, BigUint::from(21_074u64));
    }

    #[test]
    fn prefers_largest_feasible_c() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        // Budget large enough for C = {5, 9} (nnz 10*18=180) but not {4,5,9}.
        let plan = choose_split(&design, 200, 4).unwrap();
        assert_eq!(plan.split_index, 2);
        assert_eq!(plan.c_nnz, BigUint::from(180u64));
    }

    #[test]
    fn respects_min_b_nnz() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        // Requiring B to have at least 400 triples forces a later split.
        let plan = choose_split(&design, 100_000, 400).unwrap();
        assert!(plan.b_nnz >= BigUint::from(400u64));
        assert!(plan.split_index >= 3);
    }

    #[test]
    fn errors_when_no_split_is_feasible() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(choose_split(&design, 1, 1).is_err());
        let single = KroneckerDesign::from_star_points(&[3], SelfLoop::None).unwrap();
        assert!(choose_split(&single, 100, 1).is_err());
    }

    #[test]
    fn edges_per_worker_division() {
        let plan = choose_split(&paper_design(), 100_000, 1_000).unwrap();
        let per_worker = plan.edges_per_worker(4);
        assert_eq!(per_worker, BigUint::from(1_146_617_856_000u64 / 4));
        assert_eq!(plan.edges_per_worker(0), BigUint::zero());
    }
}
