//! # kron-sparse
//!
//! A GraphBLAS-flavoured sparse linear algebra substrate built from scratch
//! for the extreme-scale Kronecker graph workspace.
//!
//! The paper this workspace reproduces (Kepner et al. 2018) phrases every
//! graph operation in the language of sparse matrices over a semiring:
//! adjacency matrices, Kronecker products, element-wise products, sparse
//! matrix-matrix multiplication, and reductions.  This crate provides exactly
//! that subset:
//!
//! * [`Semiring`] — the algebraic structure (⊕, ⊗, 0, 1) all kernels are
//!   generic over, with the standard instances ([`PlusTimes`], [`BoolOrAnd`],
//!   [`MinPlus`], [`MaxTimes`]).
//! * [`CooMatrix`] — triple (row, col, value) storage with `u64` indices,
//!   used for construction, Kronecker products, and distributed blocks.
//! * [`CsrMatrix`] / [`CscMatrix`] — compressed row/column storage for
//!   kernels that need fast row or column access (SpGEMM, SpMV, the paper's
//!   CSC-based processor split).
//! * [`kron`] — Kronecker products of sparse matrices, including a
//!   streaming, allocation-free edge iterator.
//! * [`ops`] — element-wise add/multiply (graph union / intersection),
//!   SpGEMM, SpMV, transpose.
//! * [`reduce`] — row/column degree vectors, nnz reductions, degree
//!   histograms.
//! * [`triangles`] — triangle counting via `1ᵀ((A·A) ⊗ A)1 / 6` and an
//!   ordered merge variant.
//! * [`select`] — submatrix extraction, diagonal manipulation (the paper's
//!   self-loop insertion/removal), and structural predicates.
//! * [`io`] — TSV triple and MatrixMarket-style readers/writers.
//! * [`parallel`] — rayon-parallel versions of the hot kernels.
//!
//! Everything is exercised heavily by the higher-level crates; this crate is
//! deliberately free of graph semantics so it can be reused as a small
//! stand-alone sparse library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Convert a `u64` dimension or index into a `usize` the host can
/// address, panicking with the caller's capacity message when it cannot.
///
/// This is the single owner of the workspace's "fits in memory" contract:
/// per-vertex vectors (degree counts, bitmaps, permutation tables) are
/// `O(vertices)` by design, so failing to address them is a host capacity
/// limit, not a data error, and every call site documents what would not
/// fit via `what`.
///
/// # Panics
/// Panics with `what` when `n` exceeds `usize::MAX` (32-bit hosts).
pub fn addressable(n: u64, what: &str) -> usize {
    // lint:allow(no-expect) -- single documented owner of the capacity contract: a host that cannot address the vector cannot run the algorithm at all
    usize::try_from(n).expect(what)
}

pub mod bfs;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod io;
pub mod kron;
pub mod ops;
pub mod parallel;
pub mod reduce;
pub mod select;
pub mod semiring;
pub mod triangles;

pub use bfs::{bfs, connected_components, BfsTree};
pub use coo::{CooMatrix, Triple};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use kron::{kron_coo, kron_dims, KronEdgeIter};
pub use reduce::{DegreeAccumulator, SharedDegreeAccumulator};
pub use semiring::{BoolOrAnd, MaxTimes, MinPlus, PlusTimes, Semiring};
