//! Equivalence of every edge-generation path.
//!
//! The chunked zero-allocation pipeline must be a pure optimisation: for any
//! design, worker count, and chunk capacity, the edges it produces are
//! exactly the edges of the per-edge streaming API, the materialised
//! [`GraphBlock`]s, and the full `kron_coo` product (sorted-triple
//! equality).  These tests pin that invariant across every `SelfLoop`
//! variant, worker counts {1, 2, 4, 7}, chunk capacities {1, 3, 4096}, the
//! empty-slice edge case, and more workers than `B` triples — first on the
//! paper-shaped deterministic designs, then on randomly drawn star sets.

use extreme_graphs::gen::partition::{csc_ordered_triples, Partition};
use extreme_graphs::gen::{
    count_block_edges, stream_block_edges, stream_block_edges_into, EdgeChunk, GraphBlock,
};
use extreme_graphs::sparse::{kron_coo, CooMatrix, PlusTimes};
use extreme_graphs::{KroneckerDesign, SelfLoop};

/// All edges of the full design product, generated with `workers` slices by
/// the requested path, sorted.
fn generate_sorted(
    triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    workers: usize,
    mut path: impl GenerationPath,
) -> Vec<(u64, u64)> {
    let partition = Partition::even(triples.len(), workers);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for worker in 0..workers {
        edges.extend(path(&triples[partition.range(worker)], c));
    }
    edges.sort_unstable();
    edges
}

fn per_edge_path(b_triples: &[(u64, u64, u64)], c: &CooMatrix<u64>) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    stream_block_edges(b_triples, c, |row, col| edges.push((row, col)));
    edges
}

/// One way of turning a worker's `B`-triple slice into its block's edges.
trait GenerationPath: FnMut(&[(u64, u64, u64)], &CooMatrix<u64>) -> Vec<(u64, u64)> {}
impl<F: FnMut(&[(u64, u64, u64)], &CooMatrix<u64>) -> Vec<(u64, u64)>> GenerationPath for F {}

fn chunked_path(chunk_capacity: usize) -> impl GenerationPath {
    move |b_triples, c| {
        let mut edges = Vec::new();
        let mut chunk = EdgeChunk::new(chunk_capacity);
        let produced = stream_block_edges_into(b_triples, c, &mut chunk, |slice| {
            edges.extend_from_slice(slice)
        });
        assert_eq!(produced as usize, edges.len());
        edges
    }
}

fn materialised_path(b_triples: &[(u64, u64, u64)], c: &CooMatrix<u64>) -> Vec<(u64, u64)> {
    let b_rows = b_triples.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(1);
    let b_cols = b_triples
        .iter()
        .map(|&(_, col, _)| col + 1)
        .max()
        .unwrap_or(1);
    let block = GraphBlock::generate(0, b_triples, c, b_rows * c.nrows(), b_cols * c.ncols());
    block.edges.iter().map(|(r, col, _)| (r, col)).collect()
}

fn assert_all_paths_agree(b: &CooMatrix<u64>, c: &CooMatrix<u64>, label: &str) {
    let triples = csc_ordered_triples(b);

    let full = kron_coo::<u64, PlusTimes>(b, c).expect("product fits");
    let mut expected: Vec<(u64, u64)> = full.iter().map(|(r, col, _)| (r, col)).collect();
    expected.sort_unstable();

    for workers in [1usize, 2, 4, 7] {
        let per_edge = generate_sorted(&triples, c, workers, per_edge_path);
        assert_eq!(
            per_edge, expected,
            "{label}: per-edge stream with {workers} workers"
        );

        for chunk_capacity in [1usize, 3, 4096] {
            let chunked = generate_sorted(&triples, c, workers, chunked_path(chunk_capacity));
            assert_eq!(
                chunked, expected,
                "{label}: chunked stream, {workers} workers, chunk {chunk_capacity}"
            );
        }

        let materialised = generate_sorted(&triples, c, workers, materialised_path);
        assert_eq!(
            materialised, expected,
            "{label}: materialised blocks with {workers} workers"
        );

        let partition = Partition::even(triples.len(), workers);
        let counted: u64 = (0..workers)
            .map(|w| count_block_edges(&triples[partition.range(w)], c))
            .sum();
        assert_eq!(
            counted as usize,
            expected.len(),
            "{label}: counting fast path"
        );
    }
}

#[test]
fn all_paths_agree_for_every_self_loop_variant() {
    for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], self_loop).unwrap();
        let (b_design, c_design) = design.split(1).unwrap();
        let b = b_design.realize_raw(100_000).unwrap();
        let c = c_design.realize_raw(100_000).unwrap();
        assert_all_paths_agree(&b, &c, &format!("{self_loop:?}"));
    }
}

#[test]
fn more_workers_than_triples_still_agree() {
    let design = KroneckerDesign::from_star_points(&[2, 2], SelfLoop::Centre).unwrap();
    let (b_design, c_design) = design.split(1).unwrap();
    let b = b_design.realize_raw(1_000).unwrap();
    let c = c_design.realize_raw(1_000).unwrap();
    let triples = csc_ordered_triples(&b);
    assert!(triples.len() < 64);

    let expected = generate_sorted(&triples, &c, 1, per_edge_path);
    let with_idle_workers = generate_sorted(&triples, &c, 64, chunked_path(3));
    assert_eq!(with_idle_workers, expected);
}

#[test]
fn empty_slice_is_a_clean_no_op_everywhere() {
    let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
    let (_, c_design) = design.split(1).unwrap();
    let c = c_design.realize_raw(1_000).unwrap();

    assert_eq!(per_edge_path(&[], &c), Vec::new());
    assert_eq!(chunked_path(1)(&[], &c), Vec::new());
    assert_eq!(count_block_edges(&[], &c), 0);
    let block = GraphBlock::generate(0, &[], &c, 10, 10);
    assert_eq!(block.edge_count(), 0);
}

mod random_designs {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn chunked_equals_per_edge_on_random_star_products(
            left_points in 2u64..6,
            right_points in 2u64..6,
            workers in 1usize..8,
            chunk_capacity in 1usize..5000,
            loop_choice in 0u8..3,
        ) {
            let self_loop = match loop_choice {
                0 => SelfLoop::None,
                1 => SelfLoop::Centre,
                _ => SelfLoop::Leaf,
            };
            let design =
                KroneckerDesign::from_star_points(&[left_points, right_points], self_loop).unwrap();
            let (b_design, c_design) = design.split(1).unwrap();
            let b = b_design.realize_raw(10_000).unwrap();
            let c = c_design.realize_raw(10_000).unwrap();
            let triples = csc_ordered_triples(&b);

            let expected = generate_sorted(&triples, &c, workers, per_edge_path);
            let chunked = generate_sorted(&triples, &c, workers, chunked_path(chunk_capacity));
            prop_assert_eq!(&chunked, &expected);

            let full = kron_coo::<u64, PlusTimes>(&b, &c).unwrap();
            let mut product: Vec<(u64, u64)> = full.iter().map(|(r, col, _)| (r, col)).collect();
            product.sort_unstable();
            prop_assert_eq!(&chunked, &product);
        }
    }
}
