//! Streaming generation.
//!
//! Materialising every block is convenient for validation but unnecessary
//! when edges are being piped straight into a consumer (a file, a network
//! socket, a streaming analytic).  The fast path here is *chunked*: a worker
//! expands its `B`-triple slice against `C` into a reusable [`EdgeChunk`] and
//! hands the sink whole slices of edges, so the per-edge cost is two adds and
//! a buffered store — no bounds check, no closure dispatch, no allocation
//! after the first chunk.  The original per-edge API is kept as a thin
//! adapter over the chunked one, and a closure-free counting path measures
//! raw generation throughput (the paper's Figure 3 metric).

use rayon::prelude::*;

use kron_core::{CoreError, KroneckerDesign};
use kron_sparse::CooMatrix;

use crate::chunk::EdgeChunk;
use crate::partition::{csc_ordered_triples, Partition};

/// Stream the edges of worker `p`'s block — the Kronecker product of its
/// `B`-triple slice with `C` — filling the caller's reusable `chunk` and
/// calling the fallible `sink` with each full chunk (and once with the
/// final partial chunk).  Global `(row, col)` indices; returns the number
/// of edges produced.
///
/// The first sink error aborts the expansion immediately — no further
/// edges are generated — and the undelivered edges stay in `chunk` (see
/// [`EdgeChunk::try_flush`]).  On success the chunk is left empty, so one
/// buffer can serve a whole run of blocks.  The chunk is also flushed on
/// entry if it still holds edges from a previous call.
pub fn try_stream_block_edges_into<E, F: FnMut(&[(u64, u64)]) -> Result<(), E>>(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    chunk: &mut EdgeChunk,
    mut sink: F,
) -> Result<u64, E> {
    chunk.try_flush(&mut sink)?;
    let (c_rows, c_cols) = (c.row_indices(), c.col_indices());
    let (c_nrows, c_ncols) = (c.nrows(), c.ncols());
    let c_nnz = c_rows.len();
    for &(rb, cb, _) in b_triples {
        let row_base = rb * c_nrows;
        let col_base = cb * c_ncols;
        // Copy C in runs sized to the space left in the chunk: each run is a
        // single vectorized extend, and the full-chunk test amortizes over
        // the run instead of running per edge.
        let mut done = 0;
        while done < c_nnz {
            let take = (c_nnz - done).min(chunk.remaining());
            chunk.extend_translated(
                row_base,
                col_base,
                &c_rows[done..done + take],
                &c_cols[done..done + take],
            );
            done += take;
            if chunk.is_full() {
                chunk.try_flush(&mut sink)?;
            }
        }
    }
    chunk.try_flush(&mut sink)?;
    Ok((b_triples.len() * c_nnz) as u64)
}

/// Infallible-sink variant of [`try_stream_block_edges_into`].
pub fn stream_block_edges_into<F: FnMut(&[(u64, u64)])>(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    chunk: &mut EdgeChunk,
    mut sink: F,
) -> u64 {
    let result: Result<u64, std::convert::Infallible> =
        try_stream_block_edges_into(b_triples, c, chunk, |edges| {
            sink(edges);
            Ok(())
        });
    match result {
        Ok(produced) => produced,
        Err(never) => match never {},
    }
}

/// Stream a block's edges in chunks, allocating the one buffer internally —
/// sized to the expansion, capped at [`EdgeChunk::DEFAULT_CAPACITY`], so
/// small blocks do not pay for a full-size buffer.  See
/// [`stream_block_edges_into`] for the buffer-reusing variant.
pub fn stream_block_edges_chunked<F: FnMut(&[(u64, u64)])>(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    sink: F,
) -> u64 {
    let capacity = b_triples
        .len()
        .saturating_mul(c.nnz())
        .clamp(1, EdgeChunk::DEFAULT_CAPACITY);
    let mut chunk = EdgeChunk::new(capacity);
    stream_block_edges_into(b_triples, c, &mut chunk, sink)
}

/// Stream a block's edges one at a time, calling `sink` once per edge with
/// global `(row, col)` indices.  Returns the number of edges produced.
///
/// This is a thin adapter over the chunked path; use
/// [`stream_block_edges_into`] directly when the consumer can take whole
/// slices.
pub fn stream_block_edges<F: FnMut(u64, u64)>(
    b_triples: &[(u64, u64, u64)],
    c: &CooMatrix<u64>,
    mut sink: F,
) -> u64 {
    stream_block_edges_chunked(b_triples, c, |edges| {
        for &(row, col) in edges {
            sink(row, col);
        }
    })
}

/// Closure-free counting fast path: run the exact expansion arithmetic of
/// [`stream_block_edges_into`] — every edge's global indices are computed —
/// but fold them into two independent accumulators instead of buffering
/// them, so the measured rate is the cost of index generation alone.  The
/// accumulators carry no loop-to-loop dependency chain (a sum and an xor),
/// letting the reduction vectorize; their digest passes through
/// [`std::hint::black_box`] to keep the optimizer honest.
pub fn count_block_edges(b_triples: &[(u64, u64, u64)], c: &CooMatrix<u64>) -> u64 {
    let (c_rows, c_cols) = (c.row_indices(), c.col_indices());
    let (c_nrows, c_ncols) = (c.nrows(), c.ncols());
    let mut row_sum = 0u64;
    let mut col_xor = 0u64;
    for &(rb, cb, _) in b_triples {
        let row_base = rb * c_nrows;
        let col_base = cb * c_ncols;
        for i in 0..c_rows.len() {
            row_sum = row_sum.wrapping_add(row_base + c_rows[i]);
            col_xor ^= col_base + c_cols[i];
        }
    }
    std::hint::black_box(row_sum ^ col_xor);
    (b_triples.len() * c_rows.len()) as u64
}

/// Generate the whole design in streaming mode across `workers` rayon tasks,
/// counting edges instead of storing them (via the closure-free
/// [`count_block_edges`] fast path).  Returns the total edge count of the
/// *raw* product (before self-loop removal), which is the quantity the
/// throughput figure reports.
pub fn count_edges_streaming(
    design: &KroneckerDesign,
    split_index: usize,
    workers: usize,
    max_factor_edges: u64,
) -> Result<u64, CoreError> {
    if workers == 0 {
        return Err(CoreError::InvalidConfig {
            message: "streaming generation needs at least one worker".into(),
        });
    }
    let (b_design, c_design) = design.split(split_index)?;
    let b = b_design.realize_raw(max_factor_edges)?;
    let c = c_design.realize_raw(max_factor_edges)?;
    let triples = csc_ordered_triples(&b);
    let partition = Partition::even(triples.len(), workers);
    let total: u64 = (0..workers)
        .into_par_iter()
        .map(|worker| count_block_edges(&triples[partition.range(worker)], &c))
        .sum();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_core::SelfLoop;

    #[test]
    fn streamed_edges_match_materialised_block() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::None).unwrap();
        let (b_design, c_design) = design.split(2).unwrap();
        let b = b_design.realize_raw(10_000).unwrap();
        let c = c_design.realize_raw(10_000).unwrap();
        let triples = csc_ordered_triples(&b);

        let mut streamed: Vec<(u64, u64)> = Vec::new();
        let produced = stream_block_edges(&triples, &c, |r, col| streamed.push((r, col)));
        assert_eq!(produced as usize, streamed.len());

        let block = crate::block::GraphBlock::generate(0, &triples, &c, 120, 120);
        let mut materialised: Vec<(u64, u64)> =
            block.edges.iter().map(|(r, col, _)| (r, col)).collect();
        streamed.sort_unstable();
        materialised.sort_unstable();
        assert_eq!(streamed, materialised);
    }

    #[test]
    fn chunked_stream_matches_per_edge_across_chunk_sizes() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let (b_design, c_design) = design.split(1).unwrap();
        let b = b_design.realize_raw(10_000).unwrap();
        let c = c_design.realize_raw(10_000).unwrap();
        let triples = csc_ordered_triples(&b);

        let mut per_edge: Vec<(u64, u64)> = Vec::new();
        stream_block_edges(&triples, &c, |r, col| per_edge.push((r, col)));

        for chunk_capacity in [1usize, 3, 4096] {
            let mut chunked: Vec<(u64, u64)> = Vec::new();
            let mut chunk = EdgeChunk::new(chunk_capacity);
            let produced = stream_block_edges_into(&triples, &c, &mut chunk, |edges| {
                chunked.extend_from_slice(edges)
            });
            assert!(chunk.is_empty(), "chunk must be drained on return");
            assert_eq!(produced as usize, chunked.len());
            // Chunked emission preserves the exact per-edge order.
            assert_eq!(
                chunked, per_edge,
                "order differs at chunk capacity {chunk_capacity}"
            );
            assert_eq!(count_block_edges(&triples, &c), produced);
        }
    }

    #[test]
    fn empty_slice_streams_nothing() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let (_, c_design) = design.split(1).unwrap();
        let c = c_design.realize_raw(1_000).unwrap();
        let mut calls = 0usize;
        let produced = stream_block_edges_chunked(&[], &c, |_| calls += 1);
        assert_eq!(produced, 0);
        assert_eq!(calls, 0, "no edges must mean no sink calls");
        assert_eq!(count_block_edges(&[], &c), 0);
    }

    #[test]
    fn streaming_count_equals_raw_product_nnz() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let counted = count_edges_streaming(&design, 2, workers, 1_000_000).unwrap();
            assert_eq!(
                counted,
                design.nnz_with_loops().to_u64().unwrap(),
                "streaming edge count wrong with {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_rejects_zero_workers() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(matches!(
            count_edges_streaming(&design, 1, 0, 1_000),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
