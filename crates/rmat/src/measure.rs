//! Measuring sampled edge lists.
//!
//! Randomly sampled generators only reveal their properties after the fact,
//! and their raw output contains artefacts — duplicate edges, self-loops,
//! vertices that received no edges at all — that the paper's exact generator
//! avoids by construction.  [`measure_edge_list`] quantifies all of that so
//! the comparison benches can report it side by side with the Kronecker
//! designs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use kron_core::DegreeDistribution;

/// Structural statistics of a sampled edge list over `vertices` vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeListStats {
    /// Number of vertices of the vertex space the edges were sampled into.
    pub vertices: u64,
    /// Number of raw (possibly duplicate) edges sampled.
    pub raw_edges: u64,
    /// Number of distinct directed edges after de-duplication.
    pub unique_edges: u64,
    /// Number of self-loop samples.
    pub self_loops: u64,
    /// Number of vertices that received no edge at all ("empty vertices").
    pub empty_vertices: u64,
    /// Largest out-degree (counting duplicates once).
    pub max_degree: u64,
    /// Degree distribution of the de-duplicated, loop-free graph
    /// (out-degree + in-degree per vertex, i.e. row+column pattern entries).
    pub degree_distribution: DegreeDistribution,
}

impl EdgeListStats {
    /// Fraction of sampled edges that were duplicates or self-loops.
    pub fn waste_fraction(&self) -> f64 {
        if self.raw_edges == 0 {
            return 0.0;
        }
        1.0 - (self.unique_edges as f64 / self.raw_edges as f64)
    }

    /// Least-squares power-law slope of the measured distribution.
    pub fn alpha(&self) -> Option<f64> {
        self.degree_distribution.fit_alpha()
    }
}

/// Measure a sampled directed edge list over `vertices` vertices.
pub fn measure_edge_list(vertices: u64, edges: &[(u64, u64)]) -> EdgeListStats {
    let raw_edges = edges.len() as u64;
    let self_loops = edges.iter().filter(|&&(u, v)| u == v).count() as u64;

    // De-duplicate (and drop self-loops) to obtain the simple directed graph.
    let mut unique: Vec<(u64, u64)> = edges.iter().copied().filter(|&(u, v)| u != v).collect();
    unique.sort_unstable();
    unique.dedup();
    let unique_edges = unique.len() as u64;

    // Pattern degree per vertex: out-entries plus in-entries.
    let mut degree: BTreeMap<u64, u64> = BTreeMap::new();
    for &(u, v) in &unique {
        *degree.entry(u).or_insert(0) += 1;
        *degree.entry(v).or_insert(0) += 1;
    }
    let empty_vertices = vertices.saturating_sub(degree.len() as u64);
    let max_degree = degree.values().copied().max().unwrap_or(0);
    let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, d) in degree {
        *histogram.entry(d).or_insert(0) += 1;
    }
    EdgeListStats {
        vertices,
        raw_edges,
        unique_edges,
        self_loops,
        empty_vertices,
        max_degree,
        degree_distribution: DegreeDistribution::from_histogram(&histogram),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{RmatGenerator, RmatParams};

    #[test]
    fn measures_simple_known_list() {
        // 4 vertices, edges 0->1 (twice), 1->2, 2->2 (self-loop), vertex 3 empty.
        let edges = vec![(0u64, 1u64), (0, 1), (1, 2), (2, 2)];
        let stats = measure_edge_list(4, &edges);
        assert_eq!(stats.raw_edges, 4);
        assert_eq!(stats.unique_edges, 2);
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.empty_vertices, 1);
        assert_eq!(stats.max_degree, 2);
        assert!((stats.waste_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_list() {
        let stats = measure_edge_list(10, &[]);
        assert_eq!(stats.unique_edges, 0);
        assert_eq!(stats.empty_vertices, 10);
        assert_eq!(stats.waste_fraction(), 0.0);
        assert_eq!(stats.max_degree, 0);
    }

    #[test]
    fn rmat_output_contains_the_artefacts_the_paper_mentions() {
        let gen = RmatGenerator::new(RmatParams::graph500(10), 99).unwrap();
        let edges: Vec<(u64, u64)> = (0..gen.params().requested_edges())
            .map(|i| gen.edge_at(i))
            .collect();
        let stats = measure_edge_list(gen.params().vertices(), &edges);
        // Random sampling at edge factor 16 over a skewed distribution always
        // produces duplicates and leaves some vertices empty.
        assert!(
            stats.unique_edges < stats.raw_edges,
            "expected duplicate samples"
        );
        assert!(stats.empty_vertices > 0, "expected empty vertices");
        assert!(stats.waste_fraction() > 0.0);
        // The distribution is heavy-tailed: the fitted slope is positive.
        assert!(stats.alpha().unwrap() > 0.3, "alpha = {:?}", stats.alpha());
        assert_eq!(
            stats.degree_distribution.total_vertices(),
            kron_bignum_vertices(&stats)
        );
    }

    fn kron_bignum_vertices(stats: &EdgeListStats) -> kron_bignum::BigUint {
        kron_bignum::BigUint::from(stats.vertices - stats.empty_vertices)
    }
}
