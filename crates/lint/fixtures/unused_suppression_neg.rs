//@ path: crates/core/src/under_test.rs
pub fn first(values: &[u32]) -> u32 {
    // lint:allow(no-unwrap) -- documented contract: callers pass non-empty slices
    *values.first().unwrap()
}

// A suppression kept deliberately documents itself by also naming
// unused-suppression, which self-suppresses the staleness finding.
// lint:allow(no-expect, unused-suppression) -- exemplar kept while no expect remains here
pub fn second(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}
