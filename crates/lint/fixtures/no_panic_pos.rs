//@ path: crates/core/src/under_test.rs
pub fn checked(flag: bool) {
    if !flag {
        panic!("invariant violated"); //~ no-panic
    }
}
