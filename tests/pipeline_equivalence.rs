//! The pipeline is the single engine: every legacy entry point must be a
//! pure re-plumbing of it.
//!
//! These tests pin `Pipeline` output bit-identical to the deprecated
//! `ShardDriver::run_*` and `ParallelGenerator::generate().assemble()`
//! wrappers across worker counts, chunk capacities, and every `SelfLoop`
//! variant (deterministically and under proptest), verify that the shard
//! files the two paths write are byte-for-byte identical, and round-trip
//! the `RunManifest` JSON that every shard-producing run now emits.

// The deprecated wrappers are half of every comparison here.
#![allow(deprecated)]

use std::path::PathBuf;

use extreme_graphs::gen::manifest::MANIFEST_FILE_NAME;
use extreme_graphs::gen::{DesignPipeline, DriverConfig, Pipeline, RunManifest};
use extreme_graphs::sparse::CooMatrix;
use extreme_graphs::{GeneratorConfig, KroneckerDesign, ParallelGenerator, SelfLoop, ShardDriver};

const SELF_LOOPS: [SelfLoop; 3] = [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extreme_graphs_pipeline_equivalence")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline(design: &KroneckerDesign, workers: usize, chunk: usize) -> DesignPipeline<'_> {
    Pipeline::for_design(design)
        .workers(workers)
        .max_c_edges(200_000)
        .chunk_capacity(chunk)
}

fn driver(workers: usize, chunk: usize) -> ShardDriver {
    ShardDriver::new(DriverConfig {
        workers,
        max_c_edges: 200_000,
        chunk_capacity: chunk,
        ..DriverConfig::default()
    })
}

#[test]
fn pipeline_blocks_equal_generator_blocks_bit_for_bit() {
    for self_loop in SELF_LOOPS {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
        for workers in [1usize, 3, 8] {
            for chunk in [1usize, 64, 4096] {
                let report = pipeline(&design, workers, chunk)
                    .split_index(2)
                    .collect_coo()
                    .unwrap();
                assert!(report.is_valid());

                let legacy = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 200_000,
                    max_total_edges: 10_000_000,
                })
                .generate_with_split(&design, 2)
                .unwrap();

                // Same number of blocks, same per-worker edge counts…
                assert_eq!(report.outputs.len(), legacy.blocks.len());
                assert_eq!(
                    report.stats.edges_per_worker,
                    legacy.edges_per_worker(),
                    "per-worker counts differ for {self_loop:?} w{workers} c{chunk}"
                );
                // …and identical assembled graphs, triple for triple.
                let mut streamed = report.assemble();
                let mut materialised = legacy.assemble();
                streamed.sort();
                materialised.sort();
                assert_eq!(
                    streamed, materialised,
                    "pipeline differs from generator for {self_loop:?} w{workers} c{chunk}"
                );
            }
        }
    }
}

#[test]
fn pipeline_counts_equal_driver_counts() {
    for self_loop in SELF_LOOPS {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
        for workers in [1usize, 2, 5] {
            let report = pipeline(&design, workers, 512)
                .split_index(2)
                .count()
                .unwrap();
            let legacy = driver(workers, 512).run_counting(&design, 2).unwrap();
            assert_eq!(report.outputs, legacy.outputs);
            assert_eq!(report.measured, legacy.measured);
            assert_eq!(report.edge_count(), legacy.edge_count());
            assert_eq!(
                report.validation.is_exact_match(),
                legacy.validate().is_exact_match()
            );
        }
    }
}

#[test]
fn shard_files_are_byte_identical_across_entry_points() {
    let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
    for (format, ext) in [("binary", "kbk"), ("tsv", "tsv")] {
        let via_pipeline = temp_dir(&format!("pipeline_{format}"));
        let via_driver = temp_dir(&format!("driver_{format}"));

        let (report, legacy_files) = if format == "binary" {
            let report = pipeline(&design, 3, 512)
                .split_index(1)
                .write_binary(&via_pipeline)
                .unwrap();
            let (_, files) = driver(3, 512).run_binary(&design, 1, &via_driver).unwrap();
            (report, files)
        } else {
            let report = pipeline(&design, 3, 512)
                .split_index(1)
                .write_tsv(&via_pipeline)
                .unwrap();
            let (_, files) = driver(3, 512).run_tsv(&design, 1, &via_driver).unwrap();
            (report, files)
        };

        let pipeline_files = report.files.as_ref().expect("file terminal");
        assert_eq!(pipeline_files.files.len(), legacy_files.files.len());
        for (a, b) in pipeline_files.files.iter().zip(legacy_files.files.iter()) {
            assert_eq!(a.file_name(), b.file_name(), "shard naming must not change");
            assert_eq!(a.extension().and_then(|e| e.to_str()), Some(ext));
            let left = std::fs::read(a).unwrap();
            let right = std::fs::read(b).unwrap();
            assert_eq!(left, right, "{format} shard {a:?} differs from {b:?}");
        }

        // Both entry points emit the same manifest (modulo the paths and
        // wall-clock timing, which necessarily differ).
        let mut from_pipeline =
            RunManifest::read_from(&via_pipeline.join(MANIFEST_FILE_NAME)).unwrap();
        let mut from_driver = RunManifest::read_from(&via_driver.join(MANIFEST_FILE_NAME)).unwrap();
        assert_eq!(from_pipeline, report.manifest);
        from_pipeline.seconds = 0.0;
        from_driver.seconds = 0.0;
        from_pipeline.directory = None;
        from_driver.directory = None;
        from_pipeline.outputs.clear();
        from_driver.outputs.clear();
        assert_eq!(from_pipeline, from_driver);

        std::fs::remove_dir_all(&via_pipeline).ok();
        std::fs::remove_dir_all(&via_driver).ok();
    }
}

#[test]
fn every_shard_producing_run_emits_a_round_tripping_manifest() {
    let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Leaf).unwrap();
    let dir = temp_dir("manifest_round_trip");
    let report = pipeline(&design, 4, 2048)
        .split_index(2)
        .write_binary(&dir)
        .unwrap();

    let path = dir.join(MANIFEST_FILE_NAME);
    assert!(path.exists(), "shard runs must write manifest.json");
    let manifest = RunManifest::read_from(&path).unwrap();
    assert_eq!(manifest, report.manifest);
    // Full JSON round trip: parse(serialise(m)) == m.
    assert_eq!(
        RunManifest::from_json(&manifest.to_json()).unwrap(),
        manifest
    );

    // The manifest records the run faithfully.
    assert_eq!(manifest.star_points, vec![3, 4, 5]);
    assert_eq!(manifest.self_loop, "Leaf");
    assert_eq!(manifest.workers, 4);
    assert_eq!(manifest.split_index, 2);
    assert_eq!(manifest.chunk_capacity, 2048);
    assert_eq!(manifest.sink, "binary");
    assert_eq!(manifest.total_edges, report.edge_count());
    assert_eq!(manifest.edges_per_worker, report.stats.edges_per_worker);
    assert_eq!(manifest.outputs.len(), 4);
    assert!(manifest.exact_match);
    assert_eq!(manifest.vertices, design.vertices().to_string());
    assert_eq!(manifest.predicted_edges, design.edges().to_string());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_errors_name_the_failing_file() {
    let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
    let dir = temp_dir("corrupt_named");
    let report = pipeline(&design, 2, 512)
        .split_index(1)
        .write_binary(&dir)
        .unwrap();
    let files = report.files.unwrap();
    // Corrupt the second shard's magic.
    let victim = &files.files[1];
    let mut bytes = std::fs::read(victim).unwrap();
    bytes[..4].copy_from_slice(b"NOPE");
    std::fs::write(victim, &bytes).unwrap();

    let error = files.read_assembled().unwrap_err();
    let message = error.to_string();
    assert!(
        message.contains("block_00001"),
        "error must name the failing shard, got: {message}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

mod random_designs {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn pipeline_is_bit_identical_to_both_legacy_paths(
            left_points in 2u64..6,
            right_points in 2u64..6,
            workers in 1usize..8,
            chunk_choice in 0usize..3,
            loop_choice in 0u8..3,
        ) {
            let self_loop = SELF_LOOPS[loop_choice as usize];
            let chunk = [1usize, 7, 4096][chunk_choice];
            let design =
                KroneckerDesign::from_star_points(&[left_points, right_points], self_loop)
                    .unwrap();

            let report = pipeline(&design, workers, chunk)
                .split_index(1)
                .collect_coo()
                .unwrap();
            prop_assert!(report.is_valid());

            // Legacy path 1: the materialising generator.
            let generated = ParallelGenerator::new(GeneratorConfig {
                workers,
                max_c_edges: 200_000,
                max_total_edges: 1_000_000,
            })
            .generate_with_split(&design, 1)
            .unwrap();

            // Legacy path 2: the shard driver's COO sinks.
            let run = driver(workers, chunk).run_coo(&design, 1).unwrap();
            let mut via_driver = CooMatrix::new(run.vertices, run.vertices);
            for block in &run.outputs {
                via_driver.append(block).unwrap();
            }

            let mut via_pipeline = report.assemble();
            let mut via_generator = generated.assemble();
            via_pipeline.sort();
            via_generator.sort();
            via_driver.sort();
            prop_assert_eq!(&via_pipeline, &via_generator);
            prop_assert_eq!(&via_pipeline, &via_driver);

            // And the manifest of any run round-trips through JSON.
            prop_assert_eq!(
                RunManifest::from_json(&report.manifest.to_json()).unwrap(),
                report.manifest
            );
        }
    }
}
