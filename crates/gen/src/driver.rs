//! The legacy out-of-core shard-driver entry point.
//!
//! [`ShardDriver`] predates the unified [`Pipeline`](crate::pipeline); its
//! `run_*` conveniences survive as deprecated thin wrappers so existing
//! callers keep working, but every run executes on the pipeline engine and
//! therefore also emits a [`RunManifest`](crate::manifest::RunManifest) for
//! file-writing sinks.  New code should build a
//! [`Pipeline`] directly:
//!
//! | legacy | pipeline |
//! |---|---|
//! | `ShardDriver::run_counting(d, s)` | `Pipeline::for_design(d).split_index(s).count()` |
//! | `ShardDriver::run_coo(d, s)` | `Pipeline::for_design(d).split_index(s).collect_coo()` |
//! | `ShardDriver::run_tsv(d, s, dir)` | `Pipeline::for_design(d).split_index(s).write_tsv(dir)` |
//! | `ShardDriver::run_binary(d, s, dir)` | `Pipeline::for_design(d).split_index(s).write_binary(dir)` |
//! | `ShardDriver::run_compressed(d, s, dir)` | `Pipeline::for_design(d).split_index(s).write_compressed(dir)` |
//! | `ShardDriver::run(d, s, factory)` | `Pipeline::for_design(d).split_index(s).into_sinks(factory)` |
//!
//! The sink types themselves moved to the public [`crate::sink`] module and
//! are re-exported here for path compatibility.

use std::path::{Path, PathBuf};

use kron_core::validate::{validate_streamed, ValidationReport};
use kron_core::{CoreError, GraphProperties, KroneckerDesign};
use kron_sparse::{CooMatrix, SparseError};

use crate::chunk::EdgeChunk;
use crate::pipeline::{DesignPipeline, Pipeline, RunReport};
use crate::split::SplitPlan;
use crate::stats::GenerationStats;
use crate::writer::BlockFileSet;

pub use crate::sink::{BinaryShardSink, CooSink, CountingSink, EdgeSink, TsvShardSink};

/// Configuration of a shard-driver run (and the defaults of a
/// [`Pipeline`]).
///
/// Unlike [`crate::generator::GeneratorConfig`] there is no
/// `max_total_edges`: the streaming engine never materialises the product,
/// so only the *factors* carry memory budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverConfig {
    /// Number of workers (rayon tasks; the paper's "processors").
    pub workers: usize,
    /// Memory budget for the replicated `C` factor, in stored entries.
    pub max_c_edges: u64,
    /// Memory budget for the partitioned `B` factor, in stored entries
    /// (each worker indexes a shared triple list of this size).
    pub max_b_edges: u64,
    /// Capacity of each worker's reusable [`EdgeChunk`].
    pub chunk_capacity: usize,
    /// Memory budget for the streaming degree histogram, in bytes.  While
    /// the peak of per-worker local count vectors — `(concurrent workers
    /// + 1) × vertices × 8` bytes, since a vector is folded and dropped the
    /// moment its worker finishes — fits the budget, each worker counts
    /// privately at full speed; beyond it the run switches to a single
    /// shared atomic vector — `O(vertices)` total no matter the worker
    /// count, at the price of one relaxed `fetch_add` per edge.
    pub max_histogram_bytes: u64,
}

impl DriverConfig {
    /// Default worker count.
    pub const DEFAULT_WORKERS: usize = 4;
    /// Default memory budget for the replicated `C` factor, in entries.
    pub const DEFAULT_MAX_C_EDGES: u64 = 1 << 20;
    /// Default memory budget for the partitioned `B` factor, in entries.
    pub const DEFAULT_MAX_B_EDGES: u64 = 1 << 24;
    /// Default streaming-histogram budget, in bytes (1 GiB).
    pub const DEFAULT_MAX_HISTOGRAM_BYTES: u64 = 1 << 30;

    /// [`DriverConfig::DEFAULT_WORKERS`] clamped to the host's available
    /// parallelism, with a warning when the clamp engaged.
    ///
    /// Oversubscribing a small host costs real throughput (the Figure-3
    /// sweep measured 8 workers *slower* than 4 on a 4-thread machine), so
    /// a pipeline whose worker count was never chosen by the caller runs at
    /// most `available` workers.  Only the *default* is clamped: an explicit
    /// worker count — `Pipeline::workers`, a populated [`DriverConfig`], or
    /// a resume matching its journal — is always honoured, because the
    /// worker count is part of a run's deterministic configuration (shard
    /// layout and journal compatibility depend on it).
    pub fn clamped_default_workers(available: usize) -> (usize, Option<String>) {
        if available == 0 || available >= Self::DEFAULT_WORKERS {
            (Self::DEFAULT_WORKERS, None)
        } else {
            (
                available,
                Some(format!(
                    "default worker count {} exceeds the host's available parallelism; \
                     running {available} worker(s) — set workers explicitly to override",
                    Self::DEFAULT_WORKERS
                )),
            )
        }
    }
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: DriverConfig::DEFAULT_WORKERS,
            max_c_edges: DriverConfig::DEFAULT_MAX_C_EDGES,
            max_b_edges: DriverConfig::DEFAULT_MAX_B_EDGES,
            chunk_capacity: EdgeChunk::DEFAULT_CAPACITY,
            max_histogram_bytes: DriverConfig::DEFAULT_MAX_HISTOGRAM_BYTES,
        }
    }
}

/// The result of one shard-driver run.
#[derive(Debug, Clone)]
pub struct ShardRun<O> {
    /// Per-worker sink outputs, in worker order.
    pub outputs: Vec<O>,
    /// Number of rows/columns of the generated graph.
    pub vertices: u64,
    /// The split plan the run executed.
    pub split: SplitPlan,
    /// Exact predicted properties of the design.
    pub predicted: GraphProperties,
    /// Properties measured from the merged streaming degree histograms
    /// (triangles are never measured in streaming mode).
    pub measured: GraphProperties,
    /// Timing and balance statistics.
    pub stats: GenerationStats,
}

impl<O> ShardRun<O> {
    fn from_report(report: RunReport<O>) -> Self {
        ShardRun {
            outputs: report.outputs,
            vertices: report.vertices,
            // lint:allow(no-expect) -- the deprecated driver only wraps Kronecker runs, whose reports always carry a split
            split: report.split.expect("a Kronecker run always has a split"),
            predicted: report
                .predicted
                // lint:allow(no-expect) -- a Kronecker run always computes its predicted properties
                .expect("a Kronecker run predicts its properties exactly"),
            measured: report.measured,
            stats: report.stats,
        }
    }

    /// Total number of edges delivered to the sinks.
    pub fn edge_count(&self) -> u64 {
        self.stats.total_edges
    }

    /// The paper's Figure-4 check, streamed: compare the predicted
    /// properties with the histogram-measured ones, field by field.
    pub fn validate(&self) -> ValidationReport {
        validate_streamed(&self.predicted, &self.measured)
    }
}

/// The legacy streaming shard driver — a thin wrapper over
/// [`Pipeline`].
#[derive(Debug, Clone, Default)]
pub struct ShardDriver {
    config: DriverConfig,
}

impl ShardDriver {
    /// Create a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        ShardDriver { config }
    }

    /// The driver's configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// The equivalent pipeline for `design` with this driver's knobs and an
    /// explicit split index.
    fn pipeline<'d>(&self, design: &'d KroneckerDesign, split_index: usize) -> DesignPipeline<'d> {
        Pipeline::from_config(design, &self.config).split_index(split_index)
    }

    /// Run the driver: expand `B_p ⊗ C` on every worker, stream the chunks
    /// into the sink `make_sink` creates for that worker, and accumulate the
    /// streaming degree histogram.  `split_index` selects the `B ⊗ C` split
    /// (see [`KroneckerDesign::split`]).
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).into_sinks(..)"
    )]
    pub fn run<S, F>(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        make_sink: F,
    ) -> Result<ShardRun<S::Output>, CoreError>
    where
        S: EdgeSink,
        S::Output: Send,
        F: Fn(usize) -> Result<S, SparseError> + Sync,
    {
        self.pipeline(design, split_index)
            .into_sinks(make_sink)
            .map(ShardRun::from_report)
    }

    /// Run with a [`CountingSink`] per worker: generation and streamed
    /// validation with no output at all.
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).count()"
    )]
    pub fn run_counting(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
    ) -> Result<ShardRun<u64>, CoreError> {
        self.pipeline(design, split_index)
            .count()
            .map(ShardRun::from_report)
    }

    /// Run with an in-memory [`CooSink`] per worker (tests and small
    /// graphs).
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).collect_coo()"
    )]
    pub fn run_coo(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
    ) -> Result<ShardRun<CooMatrix<u64>>, CoreError> {
        self.pipeline(design, split_index)
            .collect_coo()
            .map(ShardRun::from_report)
    }

    /// Run with one TSV shard per worker under `directory`.
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).write_tsv(dir)"
    )]
    pub fn run_tsv(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        directory: &Path,
    ) -> Result<(ShardRun<PathBuf>, BlockFileSet), CoreError> {
        let report = self.pipeline(design, split_index).write_tsv(directory)?;
        // lint:allow(no-expect) -- the driver configured a file terminal above, so the report carries files
        let files = report.files.clone().expect("file terminal produces files");
        Ok((ShardRun::from_report(report), files))
    }

    /// Run with one interleaved binary shard per worker under `directory`.
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).write_binary(dir)"
    )]
    pub fn run_binary(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        directory: &Path,
    ) -> Result<(ShardRun<PathBuf>, BlockFileSet), CoreError> {
        let report = self.pipeline(design, split_index).write_binary(directory)?;
        // lint:allow(no-expect) -- the driver configured a file terminal above, so the report carries files
        let files = report.files.clone().expect("file terminal produces files");
        Ok((ShardRun::from_report(report), files))
    }

    /// Run with one compressed (delta/varint v4) shard per worker under
    /// `directory`, each written through a double-buffered writer thread.
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).write_compressed(dir)"
    )]
    pub fn run_compressed(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
        directory: &Path,
    ) -> Result<(ShardRun<PathBuf>, BlockFileSet), CoreError> {
        let report = self
            .pipeline(design, split_index)
            .write_compressed(directory)?;
        // lint:allow(no-expect) -- the driver configured a file terminal above, so the report carries files
        let files = report.files.clone().expect("file terminal produces files");
        Ok((ShardRun::from_report(report), files))
    }
}

#[cfg(test)]
#[allow(deprecated)] // these tests pin the legacy wrappers to the pipeline
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, ParallelGenerator};
    use crate::writer::{BlockFormat, BLOCK_HEADER_CHECKSUM_LEN};
    use kron_bignum::BigUint;
    use kron_core::SelfLoop;

    fn driver(workers: usize) -> ShardDriver {
        ShardDriver::new(DriverConfig {
            workers,
            max_c_edges: 100_000,
            max_b_edges: 1 << 20,
            chunk_capacity: 512,
            ..DriverConfig::default()
        })
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kron_gen_driver_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_validation_is_exact_for_every_self_loop_variant() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let run = driver(4).run_counting(&design, 2).unwrap();
            let report = run.validate();
            assert!(
                report.is_exact_match(),
                "streamed validation failed for {self_loop:?}: {:?}",
                report.failures()
            );
            assert_eq!(BigUint::from(run.edge_count()), design.edges());
        }
    }

    #[test]
    fn coo_sinks_reproduce_the_materialising_generator_exactly() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5], self_loop).unwrap();
            for workers in [1usize, 2, 5] {
                let run = driver(workers).run_coo(&design, 1).unwrap();
                let mut streamed = CooMatrix::new(run.vertices, run.vertices);
                for block in &run.outputs {
                    streamed.append(block).unwrap();
                }
                let reference = ParallelGenerator::new(GeneratorConfig {
                    workers,
                    max_c_edges: 100_000,
                    max_total_edges: 1_000_000,
                })
                .generate_with_split(&design, 1)
                .unwrap();
                let mut materialised = reference.assemble();
                streamed.sort();
                materialised.sort();
                assert_eq!(
                    streamed, materialised,
                    "driver disagrees with generator for {self_loop:?} × {workers} workers"
                );
            }
        }
    }

    #[test]
    fn in_stream_loop_removal_crosses_chunk_boundaries() {
        // Chunk capacity 1 forces the loop edge to sit alone in its chunk;
        // capacity 7 makes it land mid-chunk.  Both must remove exactly one
        // edge and still validate.
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        for chunk_capacity in [1usize, 7, 4096] {
            let driver = ShardDriver::new(DriverConfig {
                workers: 3,
                chunk_capacity,
                ..DriverConfig::default()
            });
            let run = driver.run_counting(&design, 1).unwrap();
            assert_eq!(BigUint::from(run.edge_count()), design.edges());
            assert!(run.validate().is_exact_match());
            assert_eq!(run.measured.self_loops, BigUint::zero());
        }
    }

    #[test]
    fn driver_has_no_total_edge_ceiling() {
        // 276,480 edges exceeds this generator's max_total_edges ceiling …
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
        let config = GeneratorConfig {
            workers: 4,
            max_c_edges: 100_000,
            max_total_edges: 100_000,
        };
        assert!(matches!(
            ParallelGenerator::new(config).generate_with_split(&design, 2),
            Err(CoreError::TooLargeToRealise { .. })
        ));
        // … but streams and validates fine through the driver.
        let run = driver(4).run_counting(&design, 2).unwrap();
        assert_eq!(run.edge_count(), 276_480);
        assert!(run.validate().is_exact_match());
    }

    #[test]
    fn zero_workers_rejected_with_typed_error() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        assert!(matches!(
            driver(0).run_counting(&design, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn binary_shards_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("binary_shards");
        let (run, files) = driver(3).run_binary(&design, 1, &dir).unwrap();
        assert!(run.validate().is_exact_match());
        assert_eq!(files.format, BlockFormat::Binary);

        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);

        // Checksummed header + 16 bytes per edge, exactly.
        for (file, edges) in files.files.iter().zip(run.stats.edges_per_worker.iter()) {
            let len = std::fs::metadata(file).unwrap().len();
            assert_eq!(len, BLOCK_HEADER_CHECKSUM_LEN + 16 * edges);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tsv_shards_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Leaf).unwrap();
        let dir = temp_dir("tsv_shards");
        let (run, files) = driver(2).run_tsv(&design, 2, &dir).unwrap();
        assert!(run.validate().is_exact_match());

        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_shards_round_trip_through_disk() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let dir = temp_dir("compressed_shards");
        let (run, files) = driver(3).run_compressed(&design, 1, &dir).unwrap();
        assert!(run.validate().is_exact_match());
        assert_eq!(files.format, BlockFormat::Compressed);

        let mut from_disk = files.read_assembled().unwrap();
        let mut expected = design.realize(1_000_000).unwrap();
        from_disk.sort();
        expected.sort();
        assert_eq!(from_disk, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_workers_clamp_only_below_the_default() {
        // At or above the default (or an unknown parallelism, reported as
        // 0): the default stands, no warning.
        for available in [0usize, DriverConfig::DEFAULT_WORKERS, 64] {
            let (workers, note) = DriverConfig::clamped_default_workers(available);
            assert_eq!(workers, DriverConfig::DEFAULT_WORKERS);
            assert!(note.is_none(), "no clamp expected at available={available}");
        }
        // Below it: clamp to the host and say so.
        for available in 1..DriverConfig::DEFAULT_WORKERS {
            let (workers, note) = DriverConfig::clamped_default_workers(available);
            assert_eq!(workers, available);
            let note = note.expect("clamping must warn");
            assert!(note.contains("available parallelism"), "{note}");
        }
    }

    #[test]
    fn shared_and_local_histogram_modes_measure_identically() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let local = driver(4).run_counting(&design, 2).unwrap();
        // A zero budget forces the shared atomic vector on the same run.
        let shared_driver = ShardDriver::new(DriverConfig {
            max_histogram_bytes: 0,
            ..driver(4).config().clone()
        });
        let shared = shared_driver.run_counting(&design, 2).unwrap();
        assert_eq!(local.measured, shared.measured);
        assert_eq!(local.edge_count(), shared.edge_count());
        assert!(shared.validate().is_exact_match());
    }

    #[test]
    fn more_workers_than_triples_still_validates() {
        let design = KroneckerDesign::from_star_points(&[2, 2], SelfLoop::Centre).unwrap();
        let run = driver(32).run_counting(&design, 1).unwrap();
        assert_eq!(BigUint::from(run.edge_count()), design.edges());
        assert!(run.validate().is_exact_match());
        assert_eq!(run.outputs.len(), 32);
    }
}
