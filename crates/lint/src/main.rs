#![forbid(unsafe_code)]
//! Command-line front end for `kron-lint`.
//!
//! ```text
//! kron-lint [--deny] [--json] [--changed] [--rules] [ROOT]
//! ```
//!
//! * `--deny`    — exit non-zero when any unsuppressed finding remains
//!   (the CI gate).
//! * `--json`    — emit the report as JSON instead of `file:line` text.
//! * `--changed` — report only findings in files changed vs the merge
//!   base with the main branch (the whole workspace is still analyzed,
//!   so cross-file rules keep their full view).
//! * `--rules`   — list every rule with its rationale and exit.
//! * `ROOT`      — workspace root to scan (default: walk up from the
//!   current directory to the first `Cargo.toml` owning a `crates/`
//!   directory).

use std::path::PathBuf;
use std::process::ExitCode;

use kron_lint::{changed::changed_files, lint_root, Finding, RULES};

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut changed = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--changed" => changed = true,
            "--rules" => {
                for (id, why) in RULES {
                    println!("{id:24} {why}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: kron-lint [--deny] [--json] [--changed] [--rules] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("kron-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("kron-lint: could not locate the workspace root; pass it explicitly");
            return ExitCode::from(2);
        }
    };

    let mut findings = match lint_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kron-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if changed {
        match changed_files(&root) {
            Some(touched) => findings.retain(|f| touched.contains(&f.file)),
            None => {
                eprintln!("kron-lint: not a git checkout; --changed falls back to a full report")
            }
        }
    }

    let active: Vec<&Finding> = findings.iter().filter(|f| !f.suppressed).collect();
    let suppressed = findings.len() - active.len();

    if json {
        println!("{}", report_json(&active, suppressed));
    } else {
        for f in &active {
            println!("{f}");
        }
        println!(
            "kron-lint: {} finding(s), {} suppression(s) honoured",
            active.len(),
            suppressed
        );
    }

    if deny && !active.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first directory that looks
/// like the workspace root (a `Cargo.toml` next to a `crates/` dir).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Hand-rolled JSON report (the workspace's vendored serde is API-only,
/// and the lint stays dependency-free on purpose).
fn report_json(active: &[&Finding], suppressed: usize) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in active.iter().enumerate() {
        let comma = if i + 1 < active.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{comma}\n",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"unsuppressed\": {},\n  \"suppressed\": {}\n}}",
        active.len(),
        suppressed
    ));
    s
}

fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
