//! Figure 2: controlling the triangle count with self-loop placement.
//!
//! Top: self-loops on the centre vertices of the m̂={5,3} stars give a
//! product with 15 triangles.  Bottom: self-loops on a leaf vertex give a
//! product with a single triangle (after the final self-loop is removed).

use kron_bench::{design, figure_header};
use kron_bignum::BigUint;
use kron_core::validate::measure_properties;
use kron_core::SelfLoop;

fn main() {
    figure_header(
        "Figure 2",
        "Triangle control via self-loop placement (stars m̂ = 5, 3)",
    );
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>14}",
        "construction", "vertices", "edges", "triangles", "measured tri"
    );

    for (label, self_loop) in [
        ("no self-loops (baseline)", SelfLoop::None),
        ("centre loops (Case 1)", SelfLoop::Centre),
        ("leaf loops (Case 2)", SelfLoop::Leaf),
    ] {
        let d = design(kron_bench::paper::FIG1, self_loop);
        let graph = d.realize(10_000).expect("tiny graph");
        let measured = measure_properties(&graph).expect("measurable");
        println!(
            "{:<28} {:>10} {:>10} {:>12} {:>14}",
            label,
            d.vertices().to_string(),
            d.edges().to_string(),
            d.triangles().unwrap().to_string(),
            measured
                .triangles
                .clone()
                .unwrap_or_else(BigUint::zero)
                .to_string(),
        );
        assert_eq!(Some(d.triangles().unwrap()), measured.triangles);
    }

    println!("\npaper values: top construction 15 triangles, bottom construction 1 triangle");
    println!("Figure 2 reproduced: predicted and measured triangle counts agree exactly.");
}
