//! The paper's Figure 7: exact analysis of a decetta-scale (10^30-edge) graph
//! on an ordinary machine.
//!
//! No graph of this size can be materialised on any existing computer — the
//! point of the paper's closing result is that its *exact* properties can
//! still be computed in seconds.  This example reproduces the construction:
//! fifteen stars with a self-loop on one leaf vertex of each, giving a graph
//! with ~1.44 × 10^26 vertices, ~2.7 × 10^30 edges, and exactly 178,940,587
//! triangles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example decetta_laptop
//! ```

use std::time::Instant;

use extreme_graphs::bignum::{grouped, scientific};
use extreme_graphs::{KroneckerDesign, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points: [u64; 15] = [
        3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641,
    ];

    let started = Instant::now();
    let design = KroneckerDesign::from_star_points(&points, SelfLoop::Leaf)?;
    let vertices = design.vertices();
    let edges = design.edges();
    let triangles = design.triangles()?;
    let distribution = design.degree_distribution();
    let elapsed = started.elapsed();

    println!("=== decetta-scale design (paper Figure 7) ===");
    println!("star points m̂: {points:?} with a self-loop on one leaf of each star");
    println!();
    println!(
        "vertices:  {:>44}  ({})",
        grouped(&vertices.to_string()),
        scientific(&vertices)
    );
    println!(
        "edges:     {:>44}  ({})",
        grouped(&edges.to_string()),
        scientific(&edges)
    );
    println!("triangles: {:>44}", grouped(&triangles.to_string()));
    println!();
    println!(
        "degree distribution: {} exact support points spanning degrees {} .. {}",
        distribution.support_size(),
        distribution
            .min_degree()
            .ok_or("empty degree distribution")?,
        scientific(
            distribution
                .max_degree()
                .ok_or("empty degree distribution")?
        ),
    );
    println!("computed in {elapsed:?} — no graph was (or could be) generated.");
    println!();

    // Print the log-log series the paper plots: every exact (degree, count)
    // support point, decimated to keep the console readable.
    println!("sample of the exact predicted degree distribution (log10 degree, log10 count):");
    let pairs = distribution.to_pairs();
    let step = (pairs.len() / 20).max(1);
    for (d, n) in pairs.iter().step_by(step) {
        let ld = d.log10().unwrap_or(0.0);
        let ln = n.log10().unwrap_or(0.0);
        println!("  {ld:>8.3}  {ln:>8.3}");
    }

    // Cross-check against the paper's reported exact values.
    assert_eq!(vertices.to_string(), "144111718793178936483840000");
    assert_eq!(edges.to_string(), "2705963586782877716483871216764");
    assert_eq!(triangles.to_string(), "178940587");
    println!("\ndecetta_laptop: all three counts match the paper exactly ✓");

    Ok(())
}
