//! The pluggable streaming-metrics engine.
//!
//! The paper's headline result (Figure 4) is that *measured* properties of a
//! trillion-edge graph exactly equal the *predicted* ones — which makes the
//! measurement side a first-class subsystem, not a hard-coded histogram
//! buried in the generation loop.  This module owns everything a
//! [`Pipeline`](crate::pipeline::Pipeline) run measures while edges stream:
//!
//! * the **degree histogram** in both adaptive modes from the shard driver
//!   era — per-worker local [`DegreeAccumulator`] vectors folded as workers
//!   finish while the peak fits the byte budget, one run-wide
//!   [`SharedDegreeAccumulator`] (relaxed atomics, `O(vertices)` total)
//!   beyond it;
//! * **vertex / edge / self-loop counts** and the **max degree**;
//! * the **per-worker balance** sheet (the paper's "same number of edges on
//!   each processor" claim, quantified);
//! * the **power-law slope fit** from the extreme points
//!   (`α = log n(1) / log d_max`,
//!   [`kron_core::powerlaw::PowerLaw::from_extremes`]) with its goodness
//!   residuals against the fitted and the ideal `n(d) = n(1)/d` curves;
//! * any number of **custom [`StreamingMetric`]s** registered through
//!   [`Pipeline::with_metric`](crate::pipeline::Pipeline::with_metric) —
//!   per-worker observers that see every delivered chunk, merge when workers
//!   finish, and report one value each.
//!
//! Every run's [`RunReport`](crate::pipeline::RunReport) carries the result
//! as a typed [`MetricsReport`], and the run manifest records the same
//! numbers as forward-compatible name/value [`MetricRecord`]s — so a shard
//! directory on disk documents not just how it was generated but what it
//! measured, and a later [`ReplaySource`](crate::replay::ReplaySource) pass
//! can check it reproduces bit-identically.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use kron_core::powerlaw::PowerLawFit;
use kron_core::validate::measure_from_histogram;
use kron_core::GraphProperties;
use kron_sparse::reduce::SharedDegreeAccumulator;
use kron_sparse::DegreeAccumulator;

use crate::measure::BalanceReport;

/// A pluggable streaming metric: a factory of per-worker observers.
///
/// The engine asks the metric for one [`MetricObserver`] per worker; each
/// observer sees every chunk its worker delivers to the sink, observers are
/// merged pairwise as workers finish, and the surviving observer is
/// finalised into the metric's reported value.  Implementations must be
/// cheap per edge — they run inside the generation hot loop.
pub trait StreamingMetric: Send + Sync {
    /// The metric's name, used in the [`MetricsReport`] and the manifest.
    fn name(&self) -> &str;

    /// Create one worker's observer.
    fn observer(&self, context: &MetricContext) -> Box<dyn MetricObserver>;
}

/// What the engine tells a metric when creating observers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricContext {
    /// Number of vertices of the streamed graph.
    pub vertices: u64,
    /// Number of workers in the run.
    pub workers: usize,
}

/// One worker's live accumulator of a [`StreamingMetric`].
pub trait MetricObserver: Send {
    /// Observe one chunk of delivered `(row, col)` edges.
    fn observe(&mut self, edges: &[(u64, u64)]);

    /// Fold another worker's observer of the same metric into this one.
    /// Implementations downcast via [`MetricObserver::into_any`]; the engine
    /// guarantees `other` came from the same [`StreamingMetric`].
    fn merge(&mut self, other: Box<dyn MetricObserver>);

    /// The observer as `Any`, for [`MetricObserver::merge`] downcasts.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;

    /// Render the accumulated value (after all merges) for the report and
    /// the manifest.
    fn finalize(self: Box<Self>) -> String;
}

/// A ready-made [`StreamingMetric`] counting edges that satisfy a predicate
/// — duplicate-prone regions, upper-triangle edges, cross-partition edges,
/// anything expressible per edge:
///
/// ```
/// use kron_gen::metrics::PredicateCountMetric;
/// let uppers = PredicateCountMetric::new("upper_triangle", |row, col| row < col);
/// ```
#[derive(Clone)]
pub struct PredicateCountMetric {
    name: String,
    predicate: Arc<dyn Fn(u64, u64) -> bool + Send + Sync>,
}

impl PredicateCountMetric {
    /// A metric named `name` counting edges for which `predicate` holds.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(u64, u64) -> bool + Send + Sync + 'static,
    ) -> Self {
        PredicateCountMetric {
            name: name.into(),
            predicate: Arc::new(predicate),
        }
    }
}

struct PredicateCountObserver {
    count: u64,
    predicate: Arc<dyn Fn(u64, u64) -> bool + Send + Sync>,
}

impl StreamingMetric for PredicateCountMetric {
    fn name(&self) -> &str {
        &self.name
    }

    fn observer(&self, _context: &MetricContext) -> Box<dyn MetricObserver> {
        Box::new(PredicateCountObserver {
            count: 0,
            predicate: Arc::clone(&self.predicate),
        })
    }
}

impl MetricObserver for PredicateCountObserver {
    fn observe(&mut self, edges: &[(u64, u64)]) {
        self.count += edges
            .iter()
            .filter(|&&(row, col)| (self.predicate)(row, col))
            .count() as u64;
    }

    fn merge(&mut self, other: Box<dyn MetricObserver>) {
        let other = other
            .into_any()
            .downcast::<PredicateCountObserver>()
            // lint:allow(no-expect) -- merge is only called over observers cloned from the same engine, so the metric ids match
            .expect("merged observers come from the same metric");
        self.count += other.count;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn finalize(self: Box<Self>) -> String {
        self.count.to_string()
    }
}

/// An ordered collection of custom metrics — what
/// [`Pipeline::metrics`](crate::pipeline::Pipeline::metrics) installs.
/// Cloning shares the metrics (they are stateless factories).
#[derive(Clone, Default)]
pub struct MetricSuite {
    metrics: Vec<Arc<dyn StreamingMetric>>,
}

impl MetricSuite {
    /// The empty suite (the built-in metrics always run).
    pub fn new() -> Self {
        MetricSuite::default()
    }

    /// Add a metric, builder style.
    pub fn with(mut self, metric: impl StreamingMetric + 'static) -> Self {
        self.push(metric);
        self
    }

    /// Add a metric.
    pub fn push(&mut self, metric: impl StreamingMetric + 'static) {
        self.metrics.push(Arc::new(metric));
    }

    /// Number of custom metrics in the suite.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the suite holds no custom metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metric names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.metrics.iter().map(|m| m.name()).collect()
    }
}

impl fmt::Debug for MetricSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MetricSuite").field(&self.names()).finish()
    }
}

/// One named metric value, as recorded in the [`MetricsReport`] and the run
/// manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Metric name.
    pub name: String,
    /// Rendered value (decimal for counts, shortest-representation decimal
    /// for floats).
    pub value: String,
}

impl MetricRecord {
    /// Build a record from a name and any renderable value.
    pub fn new(name: impl Into<String>, value: impl ToString) -> Self {
        MetricRecord {
            name: name.into(),
            value: value.to_string(),
        }
    }
}

/// The typed result sheet of one run's streaming measurement.
///
/// Two runs over the same edge stream — a generation and a later replay of
/// its shards, say — produce equal reports (`PartialEq`) whenever they used
/// the same per-worker layout, which is exactly the replay-validation check.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Number of vertices of the streamed graph.
    pub vertices: u64,
    /// Total edges observed.
    pub edges: u64,
    /// Diagonal (self-loop) edges observed.
    pub self_loops: u64,
    /// Largest row-endpoint degree.
    pub max_degree: u64,
    /// Number of distinct non-zero degrees.
    pub distinct_degrees: usize,
    /// Row-endpoint degree histogram (degree → vertex count), degree-zero
    /// vertices excluded — the support of the measured distribution.
    pub degree_histogram: BTreeMap<u64, u64>,
    /// Per-worker load balance.
    pub balance: BalanceReport,
    /// Extreme-point power-law fit with goodness residuals, when the
    /// distribution pins one.
    pub power_law: Option<PowerLawFit>,
    /// Results of the custom metrics, in suite order.
    pub custom: Vec<MetricRecord>,
}

impl MetricsReport {
    /// The report as flat name/value records — the form the run manifest
    /// stores (custom metrics appended after the built-ins).
    pub fn records(&self) -> Vec<MetricRecord> {
        let mut records = vec![
            MetricRecord::new("vertices", self.vertices),
            MetricRecord::new("edges", self.edges),
            MetricRecord::new("self_loops", self.self_loops),
            MetricRecord::new("max_degree", self.max_degree),
            MetricRecord::new("distinct_degrees", self.distinct_degrees),
            // `{:?}` prints the shortest decimal that parses back to the
            // same f64, keeping manifest round trips exact.
            MetricRecord::new(
                "balance_max_over_mean",
                format!("{:?}", self.balance.max_over_mean),
            ),
        ];
        if let Some(fit) = &self.power_law {
            records.push(MetricRecord::new(
                "power_law_alpha",
                format!("{:?}", fit.alpha),
            ));
            records.push(MetricRecord::new(
                "power_law_residual",
                format!("{:?}", fit.mean_log_residual),
            ));
            records.push(MetricRecord::new(
                "power_law_residual_vs_ideal",
                format!("{:?}", fit.residual_vs_ideal),
            ));
        }
        records.extend(self.custom.iter().cloned());
        records
    }

    /// The value a custom metric reported, by name.
    pub fn custom_value(&self, name: &str) -> Option<&str> {
        self.custom
            .iter()
            .find(|record| record.name == name)
            .map(|record| record.value.as_str())
    }
}

/// The run-wide measurement state: the adaptive degree accumulator plus the
/// merge slots of every custom metric.  One engine per pipeline run; workers
/// check out a [`WorkerMetrics`] each and fold back in as they finish.
pub(crate) struct MetricsEngine<'s> {
    suite: &'s MetricSuite,
    context: MetricContext,
    /// The run-wide shared atomic accumulator, when the per-worker local
    /// vectors would exceed the byte budget.
    shared: Option<SharedDegreeAccumulator>,
    /// Local accumulators are folded and dropped as each worker finishes, so
    /// at most one per pool thread is live at once (plus this merged one).
    merged_degrees: Mutex<Option<DegreeAccumulator>>,
    merged_custom: Mutex<Vec<Option<Box<dyn MetricObserver>>>>,
}

impl<'s> MetricsEngine<'s> {
    /// Size the histogram mode from the budget: while the peak of concurrent
    /// per-worker local vectors fits `max_histogram_bytes`, workers count
    /// privately at full speed; beyond it one shared atomic vector bounds
    /// the cost at `O(vertices)` total.
    pub(crate) fn new(
        suite: &'s MetricSuite,
        vertices: u64,
        workers: usize,
        max_histogram_bytes: u64,
    ) -> Self {
        let shared = if would_share(vertices, workers, max_histogram_bytes) {
            Some(SharedDegreeAccumulator::rows_only(vertices, vertices))
        } else {
            None
        };
        MetricsEngine {
            suite,
            context: MetricContext { vertices, workers },
            shared,
            merged_degrees: Mutex::new(None),
            merged_custom: Mutex::new(vec_of_none(suite.len())),
        }
    }

    /// Check out one worker's observation state.
    pub(crate) fn worker(&self) -> WorkerMetrics<'_> {
        let degrees = match self.shared.as_ref() {
            Some(shared) => WorkerDegrees::Shared(shared),
            None => WorkerDegrees::Local(DegreeAccumulator::rows_only(
                self.context.vertices,
                self.context.vertices,
            )),
        };
        WorkerMetrics {
            engine: self,
            degrees,
            observers: self
                .suite
                .metrics
                .iter()
                .map(|metric| metric.observer(&self.context))
                .collect(),
        }
    }

    /// Assemble the measured property sheet and the typed metrics report
    /// once every worker has finished.
    pub(crate) fn finalize(self, edges_per_worker: Vec<u64>) -> (GraphProperties, MetricsReport) {
        let (histogram, self_loops, edges, max_degree) = match self.shared {
            Some(shared) => (
                shared.row_histogram(),
                shared.self_loop_count(),
                shared.edge_count(),
                shared.max_row_degree(),
            ),
            None => {
                // A fault-tolerant run can quarantine every worker, so an
                // empty accumulator stands in when none finished.
                let merged = self
                    .merged_degrees
                    .into_inner()
                    // lint:allow(no-expect) -- a poisoned metrics mutex means a worker already panicked; that panic is already aborting the run
                    .expect("degree mutex poisoned")
                    .unwrap_or_else(|| {
                        DegreeAccumulator::rows_only(self.context.vertices, self.context.vertices)
                    });
                (
                    merged.row_histogram(),
                    merged.self_loop_count(),
                    merged.edge_count(),
                    merged.max_row_degree(),
                )
            }
        };
        let measured = measure_from_histogram(self.context.vertices, &histogram, self_loops);
        let custom: Vec<MetricRecord> = self
            .suite
            .metrics
            .iter()
            .zip(
                self.merged_custom
                    .into_inner()
                    // lint:allow(no-expect) -- a poisoned metrics mutex means a worker already panicked; that panic is already aborting the run
                    .expect("metric mutex poisoned"),
            )
            .map(|(metric, observer)| MetricRecord {
                name: metric.name().to_string(),
                value: observer
                    .unwrap_or_else(|| metric.observer(&self.context))
                    .finalize(),
            })
            .collect();
        let mut degree_histogram = histogram;
        degree_histogram.remove(&0);
        let report = MetricsReport {
            vertices: self.context.vertices,
            edges,
            self_loops,
            max_degree,
            distinct_degrees: degree_histogram.len(),
            degree_histogram,
            balance: BalanceReport::from_worker_counts(edges_per_worker),
            power_law: measured.power_law_fit(),
            custom,
        };
        (measured, report)
    }
}

/// Whether a run with this shape counts degrees in the run-wide shared
/// atomic vector instead of per-worker local vectors — the budget decision
/// [`MetricsEngine::new`] makes, exposed so the pipeline's fault-tolerant
/// path can detect (and override) the shared mode, which cannot roll back a
/// failed worker's partial counts.
pub(crate) fn would_share(vertices: u64, workers: usize, max_histogram_bytes: u64) -> bool {
    let concurrent = workers.min(rayon::current_num_threads()) + 1;
    let local_histogram_bytes = (concurrent as u128) * (vertices as u128) * 8;
    local_histogram_bytes > u128::from(max_histogram_bytes)
}

fn vec_of_none(len: usize) -> Vec<Option<Box<dyn MetricObserver>>> {
    let mut slots = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    slots
}

/// One worker's view of the run's degree histogram: a private local vector
/// (fast, `O(vertices)` per concurrent worker) or the run-wide shared
/// atomic vector (`O(vertices)` total) — see
/// [`DriverConfig::max_histogram_bytes`](crate::driver::DriverConfig::max_histogram_bytes).
enum WorkerDegrees<'a> {
    Local(DegreeAccumulator),
    Shared(&'a SharedDegreeAccumulator),
}

/// One worker's live measurement state; fold back with
/// [`WorkerMetrics::finish`] when the worker's stream ends.
pub(crate) struct WorkerMetrics<'e> {
    engine: &'e MetricsEngine<'e>,
    degrees: WorkerDegrees<'e>,
    observers: Vec<Box<dyn MetricObserver>>,
}

impl WorkerMetrics<'_> {
    /// Observe one chunk as the *source* produced it, before any in-stream
    /// relabelling.  Only the built-in degree metrics record here: every one
    /// of them (histogram, counts, loops, max degree, slope) is invariant
    /// under a vertex bijection, and the pre-permutation labels are far
    /// cheaper to count (the source emits them with locality; the permuted
    /// labels scatter across the whole count vector by design).
    #[inline]
    pub(crate) fn observe_source(&mut self, edges: &[(u64, u64)]) {
        match &mut self.degrees {
            WorkerDegrees::Local(local) => local.record(edges),
            WorkerDegrees::Shared(shared) => shared.record(edges),
        }
    }

    /// Observe one chunk exactly as delivered to the sink (relabelled when
    /// the run permutes vertices) — what the custom metrics see, so a custom
    /// metric always describes the graph that actually left the run.
    #[inline]
    pub(crate) fn observe_delivered(&mut self, edges: &[(u64, u64)]) {
        for observer in &mut self.observers {
            observer.observe(edges);
        }
    }

    /// Fold this worker's state into the engine.  Local degree vectors merge
    /// and drop here, so the peak is bounded by the workers running
    /// concurrently.
    pub(crate) fn finish(self) {
        if let WorkerDegrees::Local(local) = self.degrees {
            let mut guard = self
                .engine
                .merged_degrees
                .lock()
                // lint:allow(no-expect) -- a poisoned metrics mutex means a worker already panicked; that panic is already aborting the run
                .expect("degree mutex poisoned");
            match guard.as_mut() {
                Some(merged) => merged.merge(&local),
                None => *guard = Some(local),
            }
        }
        if !self.observers.is_empty() {
            let mut guard = self
                .engine
                .merged_custom
                .lock()
                // lint:allow(no-expect) -- a poisoned metrics mutex means a worker already panicked; that panic is already aborting the run
                .expect("metric mutex poisoned");
            for (slot, observer) in guard.iter_mut().zip(self.observers) {
                match slot.as_mut() {
                    Some(merged) => merged.merge(observer),
                    None => *slot = Some(observer),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &[(u64, u64)] = &[(0, 1), (1, 1), (2, 0), (3, 3), (0, 2)];

    #[test]
    fn engine_measures_counts_histogram_and_balance() {
        let suite = MetricSuite::new();
        let engine = MetricsEngine::new(&suite, 4, 2, u64::MAX);
        let mut first = engine.worker();
        first.observe_source(&EDGES[..3]);
        first.finish();
        let mut second = engine.worker();
        second.observe_source(&EDGES[3..]);
        second.finish();
        let (measured, report) = engine.finalize(vec![3, 2]);

        assert_eq!(report.vertices, 4);
        assert_eq!(report.edges, 5);
        assert_eq!(report.self_loops, 2);
        assert_eq!(report.max_degree, 2);
        assert_eq!(report.distinct_degrees, 2);
        assert_eq!(report.degree_histogram.get(&1), Some(&3));
        assert_eq!(report.degree_histogram.get(&2), Some(&1));
        assert_eq!(report.degree_histogram.get(&0), None);
        assert_eq!(report.balance.max_edges, 3);
        assert_eq!(report.balance.min_edges, 2);
        assert_eq!(measured.edges.to_string(), "5");
        assert_eq!(measured.self_loops.to_string(), "2");
    }

    #[test]
    fn shared_and_local_modes_finalize_identically() {
        let suite = MetricSuite::new();
        let run = |budget: u64| {
            let engine = MetricsEngine::new(&suite, 4, 2, budget);
            let mut worker = engine.worker();
            worker.observe_source(EDGES);
            worker.finish();
            engine.finalize(vec![EDGES.len() as u64]).1
        };
        assert_eq!(run(u64::MAX), run(0));
    }

    #[test]
    fn custom_metric_observes_merges_and_reports() {
        let suite = MetricSuite::new()
            .with(PredicateCountMetric::new("upper_triangle", |r, c| r < c))
            .with(PredicateCountMetric::new("loops", |r, c| r == c));
        assert_eq!(suite.names(), vec!["upper_triangle", "loops"]);
        assert_eq!(suite.len(), 2);
        assert!(!suite.is_empty());
        assert!(format!("{suite:?}").contains("upper_triangle"));

        let engine = MetricsEngine::new(&suite, 4, 2, u64::MAX);
        let mut first = engine.worker();
        first.observe_source(&EDGES[..3]);
        first.observe_delivered(&EDGES[..3]);
        first.finish();
        let mut second = engine.worker();
        second.observe_source(&EDGES[3..]);
        second.observe_delivered(&EDGES[3..]);
        second.finish();
        let (_, report) = engine.finalize(vec![3, 2]);
        assert_eq!(report.custom_value("upper_triangle"), Some("2"));
        assert_eq!(report.custom_value("loops"), Some("2"));
        assert_eq!(report.custom_value("missing"), None);
    }

    #[test]
    fn finalize_tolerates_zero_finished_workers() {
        // Every worker of a fault-tolerant run can be quarantined; the
        // report must still assemble (as an empty graph) rather than panic.
        let suite = MetricSuite::new().with(PredicateCountMetric::new("loops", |r, c| r == c));
        let engine = MetricsEngine::new(&suite, 4, 2, u64::MAX);
        let (_, report) = engine.finalize(vec![0, 0]);
        assert_eq!(report.edges, 0);
        assert_eq!(report.max_degree, 0);
        assert_eq!(report.custom_value("loops"), Some("0"));
    }

    #[test]
    fn records_cover_builtins_and_customs() {
        let suite = MetricSuite::new().with(PredicateCountMetric::new("loops", |r, c| r == c));
        let engine = MetricsEngine::new(&suite, 4, 1, u64::MAX);
        let mut worker = engine.worker();
        worker.observe_source(EDGES);
        worker.observe_delivered(EDGES);
        worker.finish();
        let (_, report) = engine.finalize(vec![EDGES.len() as u64]);
        let records = report.records();
        let value = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("no record named {name}"))
                .value
                .clone()
        };
        assert_eq!(value("vertices"), "4");
        assert_eq!(value("edges"), "5");
        assert_eq!(value("self_loops"), "2");
        assert_eq!(value("max_degree"), "2");
        assert_eq!(value("distinct_degrees"), "2");
        assert_eq!(value("balance_max_over_mean"), "1.0");
        assert_eq!(value("loops"), "2");
        // The fit records are present exactly when a fit exists.
        assert_eq!(
            records.iter().any(|r| r.name == "power_law_alpha"),
            report.power_law.is_some()
        );
    }
}
