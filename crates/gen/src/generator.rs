//! The legacy materialising parallel generator.
//!
//! [`ParallelGenerator`] predates the unified
//! [`Pipeline`]; its `generate*` methods survive
//! as deprecated thin wrappers that run the pipeline with in-memory
//! [`CooSink`](crate::sink::CooSink)s and re-shape the per-worker blocks
//! into a [`DistributedGraph`].  New code should call
//! `Pipeline::for_design(design).collect_coo()` — same blocks, plus the
//! streamed validation report and run manifest, and no
//! [`GeneratorConfig::max_total_edges`] ceiling.

use serde::{Deserialize, Serialize};

use kron_bignum::BigUint;
use kron_core::{CoreError, GraphProperties, KroneckerDesign};
use kron_sparse::CooMatrix;

use crate::block::GraphBlock;
use crate::partition::{csc_ordered_triples, Partition};
use crate::pipeline::Pipeline;
use crate::split::{choose_split_with_fallback, SplitPlan};
use crate::stats::GenerationStats;

/// Configuration of a parallel generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of workers ("processors" in the paper's terminology).
    pub workers: usize,
    /// Memory budget for the replicated `C` factor, in stored entries.
    pub max_c_edges: u64,
    /// Safety cap on the total number of edges that may be materialised.
    #[deprecated(
        since = "0.1.0",
        note = "the Pipeline streams into sinks and has no total-edge ceiling; \
                this cap only guards the materialising legacy path"
    )]
    pub max_total_edges: u64,
}

#[allow(deprecated)] // the legacy ceiling keeps its default until removal
impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            workers: 4,
            max_c_edges: 1 << 20,
            max_total_edges: 50_000_000,
        }
    }
}

/// A generated graph distributed across per-worker blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedGraph {
    /// Per-worker blocks (always `config.workers` of them, possibly empty).
    pub blocks: Vec<GraphBlock>,
    /// Number of rows/columns of the full graph.
    pub vertices: u64,
    /// The split plan that produced the blocks.
    pub split: SplitPlan,
    /// Exact predicted properties of the design the blocks realise.
    pub predicted: GraphProperties,
    /// Timing and balance statistics of the generation run.
    pub stats: GenerationStats,
}

impl DistributedGraph {
    /// Total number of edges stored across all blocks.
    pub fn edge_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.edge_count() as u64).sum()
    }

    /// Assemble the full adjacency matrix (tests and small graphs only).
    pub fn assemble(&self) -> CooMatrix<u64> {
        let mut all = CooMatrix::new(self.vertices, self.vertices);
        for block in &self.blocks {
            all.append(&block.edges)
                // lint:allow(no-expect) -- every block is created with the same full-graph dimensions a few lines above
                .expect("blocks share the full graph dimensions");
        }
        all
    }

    /// Per-worker edge counts.
    pub fn edges_per_worker(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.edge_count() as u64).collect()
    }
}

/// The legacy parallel Kronecker graph generator — a thin wrapper over
/// [`Pipeline`].
#[derive(Debug, Clone, Default)]
pub struct ParallelGenerator {
    config: GeneratorConfig,
}

impl ParallelGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        ParallelGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the designed graph as a set of per-worker blocks.
    ///
    /// The split into `B ⊗ C` is chosen automatically (see
    /// [`choose_split_with_fallback`]); use
    /// [`ParallelGenerator::generate_with_split`] to
    /// control it explicitly.  When no split can give every worker at least
    /// one `B` triple, generation falls back to the best split for a single
    /// worker and records the lost `nnz(B) ≥ workers` balance guarantee in
    /// [`GenerationStats::warnings`].
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).collect_coo()"
    )]
    #[allow(deprecated)] // delegates to its deprecated sibling
    pub fn generate(&self, design: &KroneckerDesign) -> Result<DistributedGraph, CoreError> {
        let (plan, warning) =
            choose_split_with_fallback(design, self.config.max_c_edges, self.config.workers)?;
        let mut graph = self.generate_with_split(design, plan.split_index)?;
        if let Some(warning) = warning {
            graph.stats.warn(warning);
        }
        Ok(graph)
    }

    /// Generate using an explicit split index (`B` = first `split_index`
    /// constituents, `C` = the rest).
    ///
    /// The edge *set* of every block is unchanged from the pre-pipeline
    /// implementation, but for a triangle-control design the stored *order*
    /// within the block that carried the removable self-loop differs: the
    /// loop is now filtered in-stream (later edges shift up one place)
    /// instead of swap-removed after generation (last edge moved into the
    /// hole).  Byte-level comparisons against artifacts written by older
    /// releases should sort first.
    #[deprecated(
        since = "0.1.0",
        note = "use kron_gen::Pipeline::for_design(..).split_index(..).collect_coo()"
    )]
    #[allow(deprecated)] // reads the deprecated legacy ceiling on purpose
    pub fn generate_with_split(
        &self,
        design: &KroneckerDesign,
        split_index: usize,
    ) -> Result<DistributedGraph, CoreError> {
        if self.config.workers == 0 {
            return Err(CoreError::InvalidConfig {
                message: "generator needs at least one worker".into(),
            });
        }
        // The one legacy behaviour the pipeline dropped: a ceiling on the
        // total number of edges, kept here because this wrapper's contract
        // is "everything ends up in memory".
        let ceiling = self.config.max_total_edges;
        let total_edges = design.nnz_with_loops();
        if total_edges > BigUint::from(ceiling) {
            return Err(CoreError::TooLargeToRealise {
                vertices: design.vertices().to_string(),
                edges: total_edges.to_string(),
            });
        }

        // The legacy generator budgeted both factors with the total-edge
        // cap, so the wrapper does too.
        let report = Pipeline::for_design(design)
            .workers(self.config.workers)
            .split_index(split_index)
            .max_b_edges(ceiling)
            .max_c_edges(ceiling)
            .collect_coo()?;

        // Re-derive the per-worker partition metadata the pipeline's COO
        // outputs do not carry (the factor realisation is cheap next to the
        // product expansion, and bit-deterministic).
        let (b_design, _) = design.split(split_index)?;
        let b = b_design.realize_raw(ceiling)?;
        let triples = csc_ordered_triples(&b);
        let partition = Partition::even(triples.len(), self.config.workers);
        let blocks = report
            .outputs
            .into_iter()
            .enumerate()
            .map(|(worker, edges)| {
                let slice = &triples[partition.range(worker)];
                GraphBlock {
                    worker,
                    edges,
                    b_col_offset: slice.iter().map(|&(_, c, _)| c).min(),
                    b_triples: slice.len(),
                }
            })
            .collect();

        Ok(DistributedGraph {
            blocks,
            vertices: report.vertices,
            // lint:allow(no-expect) -- the deprecated generator only runs Kronecker plans, whose reports always carry a split
            split: report.split.expect("a Kronecker run always has a split"),
            predicted: report
                .predicted
                // lint:allow(no-expect) -- a Kronecker run always computes its predicted properties
                .expect("a Kronecker run predicts its properties exactly"),
            stats: report.stats,
        })
    }
}

/// Global index of the product vertex that carries the single self-loop of a
/// triangle-control design: the mixed-radix combination of each
/// constituent's self-loop vertex index.
pub(crate) fn self_loop_vertex_index(design: &KroneckerDesign) -> u64 {
    let mut index = 0u64;
    for constituent in design.constituents() {
        let local = constituent
            .adjacency()
            .iter()
            .find(|&(r, c, _)| r == c)
            .map(|(r, _, _)| r)
            .unwrap_or(0);
        index = index * constituent.vertices() + local;
    }
    index
}

#[cfg(test)]
#[allow(deprecated)] // these tests pin the legacy wrapper to the pipeline
mod tests {
    use super::*;
    use kron_core::{validate::measure_properties, SelfLoop};
    use kron_sparse::select::self_loop_count;

    fn generator(workers: usize) -> ParallelGenerator {
        ParallelGenerator::new(GeneratorConfig {
            workers,
            max_c_edges: 10_000,
            max_total_edges: 5_000_000,
        })
    }

    #[test]
    fn generated_graph_matches_design_exactly() {
        for self_loop in [SelfLoop::None, SelfLoop::Centre, SelfLoop::Leaf] {
            let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], self_loop).unwrap();
            let graph = generator(4).generate(&design).unwrap();
            let assembled = graph.assemble();
            let measured = measure_properties(&assembled).unwrap();
            let predicted = design.properties();
            assert!(
                predicted.exactly_matches(&measured),
                "generated graph disagrees with design for {self_loop:?}"
            );
            assert_eq!(self_loop_count(&assembled), 0);
        }
    }

    #[test]
    fn worker_counts_do_not_change_the_graph() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre).unwrap();
        let reference = {
            let mut g = generator(1).generate(&design).unwrap().assemble();
            g.sort();
            g
        };
        for workers in [2usize, 3, 5, 8] {
            let mut g = generator(workers).generate(&design).unwrap().assemble();
            g.sort();
            assert_eq!(g, reference, "graph differs with {workers} workers");
        }
    }

    #[test]
    fn per_worker_edge_counts_are_balanced() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9, 16], SelfLoop::None).unwrap();
        let graph = generator(8).generate(&design).unwrap();
        // Every worker's edge count differs by at most nnz(C) (one B triple).
        let c_nnz = graph.split.c_nnz.to_u64().unwrap();
        assert!(graph.stats.imbalance() <= c_nnz);
        assert_eq!(graph.edge_count(), design.edges().to_u64().unwrap());
        assert_eq!(graph.stats.workers, 8);
    }

    #[test]
    fn explicit_split_index_is_respected() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap();
        let graph = generator(2).generate_with_split(&design, 3).unwrap();
        assert_eq!(graph.split.split_index, 3);
        assert_eq!(graph.split.c_nnz, BigUint::from(18u64));
        let assembled = graph.assemble();
        assert_eq!(BigUint::from(assembled.nnz() as u64), design.edges());
    }

    #[test]
    fn block_metadata_matches_the_partition() {
        let design = KroneckerDesign::from_star_points(&[3, 4, 5], SelfLoop::Centre).unwrap();
        let graph = generator(3).generate_with_split(&design, 1).unwrap();
        let total_triples: usize = graph.blocks.iter().map(|b| b.b_triples).sum();
        assert_eq!(
            total_triples,
            graph.split.b_nnz.to_u64().unwrap() as usize,
            "per-worker B-triple counts must partition nnz(B)"
        );
        for block in &graph.blocks {
            assert_eq!(
                block.b_col_offset.is_some(),
                block.b_triples > 0,
                "offset present iff the worker received triples"
            );
        }
    }

    #[test]
    fn refuses_oversized_designs() {
        let design = KroneckerDesign::from_star_points(&[81, 256, 625], SelfLoop::None).unwrap();
        let result = generator(4).generate(&design);
        assert!(matches!(result, Err(CoreError::TooLargeToRealise { .. })));
    }

    #[test]
    fn zero_workers_rejected_with_typed_error() {
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let gen = ParallelGenerator::new(GeneratorConfig {
            workers: 0,
            max_c_edges: 100,
            max_total_edges: 1_000,
        });
        let error = gen.generate_with_split(&design, 1).unwrap_err();
        assert!(
            matches!(error, CoreError::InvalidConfig { .. }),
            "zero workers must be an InvalidConfig error, got {error:?}"
        );
    }

    #[test]
    fn fallback_split_is_surfaced_as_a_warning() {
        // A two-star design has at most nnz(star) B triples, far fewer than
        // 1,000 workers, so the primary choose_split fails and the fallback
        // single-worker plan runs with most workers idle.
        let design = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::None).unwrap();
        let gen = ParallelGenerator::new(GeneratorConfig {
            workers: 1_000,
            max_c_edges: 10_000,
            max_total_edges: 1_000_000,
        });
        let graph = gen.generate(&design).unwrap();
        assert_eq!(graph.edge_count(), design.edges().to_u64().unwrap());
        assert_eq!(graph.stats.warnings.len(), 1, "fallback must warn");
        assert!(graph.stats.warnings[0].contains("balance guarantee"));

        // A run where the primary split succeeds stays warning-free.
        let healthy = generator(4)
            .generate(&KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::None).unwrap())
            .unwrap();
        assert!(healthy.stats.warnings.is_empty());
    }

    #[test]
    fn self_loop_vertex_index_cases() {
        let centre = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Centre).unwrap();
        assert_eq!(self_loop_vertex_index(&centre), 0);
        let leaf = KroneckerDesign::from_star_points(&[3, 4], SelfLoop::Leaf).unwrap();
        // Leaf vertex of each star is its last vertex, so the product loop is
        // at the last product vertex.
        assert_eq!(self_loop_vertex_index(&leaf), 4 * 5 - 1);
    }

    #[test]
    fn more_workers_than_triples_still_correct() {
        let design = KroneckerDesign::from_star_points(&[2, 2], SelfLoop::None).unwrap();
        let graph = generator(64).generate_with_split(&design, 1).unwrap();
        assert_eq!(graph.edge_count(), design.edges().to_u64().unwrap());
        assert_eq!(graph.blocks.len(), 64);
    }
}
