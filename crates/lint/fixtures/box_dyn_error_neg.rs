//@ path: crates/core/src/under_test.rs
pub trait Observer {}

// Non-Error trait objects are fine in public signatures.
pub fn observer() -> Box<dyn Observer> {
    unimplemented_marker()
}

// Private helpers may erase error types; only the public surface is held
// to typed errors.
fn erased() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}

pub fn typed() -> Result<(), std::io::Error> {
    erased().ok();
    Ok(())
}

fn unimplemented_marker() -> Box<dyn Observer> {
    struct Noop;
    impl Observer for Noop {}
    Box::new(Noop)
}
