//@ path: crates/gen/src/pipeline.rs
pub struct Pipeline;

impl Pipeline {
    pub fn count(self, values: &[u64]) -> u64 {
        stage_total(values)
    }

    pub fn resume(self, bytes: &[u8]) -> u64 {
        checked_word(bytes)
    }
}

fn stage_total(values: &[u64]) -> u64 {
    kron_sparse::fold_counts(values)
}

fn checked_word(bytes: &[u8]) -> u64 {
    // lint:allow(panic-reachability) -- le_u64's 8-byte contract holds: resume validated the header length first
    kron_sparse::le_u64(bytes)
}
