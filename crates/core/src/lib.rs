//! # kron-core
//!
//! Design and exact analysis of extreme-scale power-law Kronecker graphs —
//! a from-scratch Rust reproduction of Kepner et al., *Design, Generation,
//! and Validation of Extreme Scale Power-Law Graphs* (2018).
//!
//! The crate answers the paper's central question: **what are the exact
//! properties of a Kronecker-product graph, before it is generated?**
//!
//! * [`StarGraph`] — the power-law building block (`n(1) = m̂`, `n(m̂) = 1`),
//!   optionally carrying a self-loop on its centre or on one leaf to control
//!   the triangle count of the product.
//! * [`Constituent`] — any small adjacency matrix plus its exact properties
//!   (closed-form for stars, measured for custom matrices).
//! * [`KroneckerDesign`] — an ordered list of constituents with exact
//!   vertex/edge/degree-distribution/triangle computation, `(B, C)` splitting
//!   for the parallel generator, and bounded materialisation.
//! * [`DegreeDistribution`] — exact `d ↦ n(d)` maps with Kronecker products,
//!   power-law fits, and logarithmic binning.
//! * [`IncidencePair`] — incidence-matrix construction via Kronecker
//!   products and the `A = E_outᵀ·E_in` identity.
//! * [`DesignSearch`] — target-driven inversion: find star sets that hit a
//!   requested edge/vertex scale exactly-power-law.
//! * [`validate`] — measure a realised graph and compare field-by-field with
//!   the prediction (the paper's Figure 4 workflow).
//!
//! ## Quickstart
//!
//! ```
//! use kron_core::{KroneckerDesign, SelfLoop};
//! use kron_bignum::BigUint;
//!
//! // The paper's Figure 4 trillion-edge design: stars m̂ = {3,4,5,9,16,25,81,256}
//! // with a self-loop on every centre vertex.
//! let design = KroneckerDesign::from_star_points(
//!     &[3, 4, 5, 9, 16, 25, 81, 256],
//!     SelfLoop::Centre,
//! ).unwrap();
//!
//! assert_eq!(design.vertices().to_string(), "11177649600");
//! assert_eq!(design.edges().to_string(), "1853002140758");
//! assert_eq!(design.triangles().unwrap().to_string(), "6777007252427");
//! assert!(design.vertices() > BigUint::from(10u64 * 1000 * 1000 * 1000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constituent;
pub mod degree;
pub mod design;
pub mod designer;
pub mod error;
pub mod incidence;
pub mod powerlaw;
pub mod properties;
pub mod star;
pub mod validate;

pub use constituent::{Constituent, ConstituentKind};
pub use degree::DegreeDistribution;
pub use design::KroneckerDesign;
pub use designer::{DesignCandidate, DesignSearch, DesignTargets, DEFAULT_POOL};
pub use error::CoreError;
pub use incidence::{design_incidence, IncidencePair};
pub use powerlaw::{star_design_edge_vertex_ratio, star_products_unique, PowerLaw};
pub use properties::GraphProperties;
pub use star::{SelfLoop, StarGraph};
pub use validate::{
    compare_properties, measure_properties, validate_design, FieldCheck, ValidationReport,
};
