//! Rayon-parallel versions of the hot kernels.
//!
//! The paper's headline result (Figure 3) is a generation *rate* measured
//! across tens of thousands of cores; on a shared-memory machine the same
//! structure maps onto rayon tasks.  Each helper here is a drop-in parallel
//! equivalent of a sequential kernel elsewhere in the crate and is verified
//! against it in tests.

use rayon::prelude::*;

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::kron::kron_dims;
use crate::ops::spgemm;
use crate::semiring::{Scalar, Semiring};

/// Parallel Kronecker product: the outer loop over `a`'s entries is split
/// across the rayon thread pool; each task produces an independent slice of
/// the output triples (no communication, mirroring the paper's design).
pub fn par_kron_coo<T: Scalar, S: Semiring<T>>(
    a: &CooMatrix<T>,
    b: &CooMatrix<T>,
) -> Result<CooMatrix<T>, SparseError> {
    let (rows, cols) = kron_dims((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
    let nrows = u64::try_from(rows).map_err(|_| SparseError::TooLarge {
        what: "Kronecker product rows",
        requested: rows,
    })?;
    let ncols = u64::try_from(cols).map_err(|_| SparseError::TooLarge {
        what: "Kronecker product cols",
        requested: cols,
    })?;

    let a_entries: Vec<(u64, u64, T)> = a.iter().collect();
    let chunks: Vec<Vec<(u64, u64, T)>> = a_entries
        .par_iter()
        .map(|&(ra, ca, va)| {
            let mut local = Vec::with_capacity(b.nnz());
            for (rb, cb, vb) in b.iter() {
                let val = S::mul(va, vb);
                if !S::is_zero(val) {
                    local.push((ra * b.nrows() + rb, ca * b.ncols() + cb, val));
                }
            }
            local
        })
        .collect();

    let mut out = CooMatrix::with_capacity(nrows, ncols, a.nnz() * b.nnz());
    for chunk in chunks {
        for (r, c, v) in chunk {
            out.push(r, c, v)?;
        }
    }
    Ok(out)
}

/// Parallel row-pattern degree computation for a COO matrix.
///
/// Entries are partitioned across threads; each thread accumulates a private
/// histogram which is then merged (a tree reduction), so no locking is needed
/// on the hot path.
pub fn par_row_counts<T: Scalar>(m: &CooMatrix<T>) -> Vec<u64> {
    let nrows = crate::addressable(m.nrows(), "row count vector must fit in memory");
    let rows = m.row_indices();
    rows.par_chunks(
        16_384
            .max(rows.len() / rayon::current_num_threads().max(1))
            .max(1),
    )
    .map(|chunk| {
        let mut local = vec![0u64; nrows];
        for &r in chunk {
            local[r as usize] += 1;
        }
        local
    })
    .reduce(
        || vec![0u64; nrows],
        |mut acc, local| {
            for (a, l) in acc.iter_mut().zip(local.iter()) {
                *a += l;
            }
            acc
        },
    )
}

/// Parallel SpGEMM: rows of the result are computed independently across the
/// thread pool, then stitched into a CSR matrix.
pub fn par_spgemm<T: Scalar, S: Semiring<T>>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "par_spgemm",
            left: (a.nrows() as u64, a.ncols() as u64),
            right: (b.nrows() as u64, b.ncols() as u64),
        });
    }
    let nrows = a.nrows();
    let ncols = b.ncols();

    let per_row: Vec<(Vec<usize>, Vec<T>)> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let mut acc: Vec<T> = vec![S::zero(); ncols];
            let mut touched: Vec<usize> = Vec::new();
            let (a_cols, a_vals) = a.row(i);
            for (&k, &a_ik) in a_cols.iter().zip(a_vals.iter()) {
                let (b_cols, b_vals) = b.row(k);
                for (&j, &b_kj) in b_cols.iter().zip(b_vals.iter()) {
                    let contribution = S::mul(a_ik, b_kj);
                    if S::is_zero(acc[j]) && !S::is_zero(contribution) {
                        touched.push(j);
                        acc[j] = contribution;
                    } else {
                        acc[j] = S::add(acc[j], contribution);
                    }
                }
            }
            touched.sort_unstable();
            touched.dedup();
            let mut cols = Vec::with_capacity(touched.len());
            let mut vals = Vec::with_capacity(touched.len());
            for &j in &touched {
                if !S::is_zero(acc[j]) {
                    cols.push(j);
                    vals.push(acc[j]);
                }
            }
            (cols, vals)
        })
        .collect();

    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for (cols, row_vals) in per_row {
        col_idx.extend_from_slice(&cols);
        vals.extend_from_slice(&row_vals);
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw(nrows, ncols, row_ptr, col_idx, vals)
}

/// Parallel correctness check: verify that the parallel SpGEMM agrees with
/// the sequential kernel (used by tests and kept public for harnesses that
/// want a self-check mode).
pub fn spgemm_self_check<T: Scalar, S: Semiring<T>>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<bool, SparseError> {
    Ok(par_spgemm::<T, S>(a, b)? == spgemm::<T, S>(a, b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kron::kron_coo;
    use crate::reduce::row_counts;
    use crate::semiring::PlusTimes;

    fn star(points: u64) -> CooMatrix<u64> {
        let mut edges = Vec::new();
        for leaf in 1..=points {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        CooMatrix::from_edges(points + 1, points + 1, edges).unwrap()
    }

    #[test]
    fn par_kron_matches_sequential() {
        let a = star(9);
        let b = star(5);
        let mut seq = kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        let mut par = par_kron_coo::<u64, PlusTimes>(&a, &b).unwrap();
        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_row_counts_matches_sequential() {
        let a = kron_coo::<u64, PlusTimes>(&star(9), &star(7)).unwrap();
        assert_eq!(par_row_counts(&a), row_counts(&a));
    }

    #[test]
    fn par_spgemm_matches_sequential() {
        let a = kron_coo::<u64, PlusTimes>(&star(5), &star(3)).unwrap();
        let csr = CsrMatrix::from_coo::<PlusTimes>(&a).unwrap();
        assert!(spgemm_self_check::<u64, PlusTimes>(&csr, &csr).unwrap());
    }

    #[test]
    fn par_spgemm_dimension_mismatch() {
        let a = CsrMatrix::<u64>::zeros(2, 3);
        assert!(par_spgemm::<u64, PlusTimes>(&a, &a).is_err());
    }

    #[test]
    fn par_kron_too_large_rejected() {
        let a = CooMatrix::<u64>::new(u64::MAX, u64::MAX);
        let b = CooMatrix::<u64>::new(3, 3);
        assert!(par_kron_coo::<u64, PlusTimes>(&a, &b).is_err());
    }
}
