//! The semantic rule families built on the item parser and call graph.
//!
//! Three scans live here:
//!
//! * [`scan_atomic_ordering`] — per file: every `Ordering::<variant>`
//!   site on an atomic op must carry an adjacent comment mentioning
//!   "ordering" that justifies the chosen memory ordering.
//! * [`scan_manifest_schema`] — per file, scoped to the gen crate's
//!   `manifest.rs`: every JSON key the hand-rolled writers emit must be
//!   consumed by the parsers and vice versa, so resume can never be
//!   corrupted by silent schema drift.
//! * [`panic_reachability`] — whole workspace: no transitive call path
//!   from a `Pipeline` public entry point to a panicking site, reported
//!   with the full call chain.
//!
//! The unused-suppression rule also has its constant here conceptually,
//! but its mechanics (which suppressions matched nothing) live in the
//! engine ([`crate::rules::lint_workspace`]) because only the engine
//! sees the finding/suppression matching.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{CallGraph, GraphFile};
use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::{ATOMIC_ORDERING, MANIFEST_SCHEMA_DRIFT, PANIC_REACHABILITY};

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Memory-ordering variants of `std::sync::atomic::Ordering`.  These do
/// not overlap `std::cmp::Ordering`'s variants (`Less`/`Equal`/
/// `Greater`), so matching `Ordering::<variant>` token triples is
/// unambiguous without type information.
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every atomic op site (`Ordering::Relaxed` etc.) must have a line
/// comment containing "ordering" on its own line or the line above —
/// the mechanized version of PR 7's manual atomics pass.
pub fn scan_atomic_ordering(
    lexed: &Lexed,
    mask: &[bool],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    let t = &lexed.tokens;
    let justified: BTreeSet<u32> = lexed
        .line_comments
        .iter()
        .filter(|c| c.text.to_ascii_lowercase().contains("ordering:"))
        .map(|c| c.line)
        .collect();
    for i in 0..t.len() {
        if mask[i] || ident_at(t, i) != Some("Ordering") {
            continue;
        }
        let Some(variant) = (punct_at(t, i + 1, ':') && punct_at(t, i + 2, ':'))
            .then(|| ident_at(t, i + 3))
            .flatten()
        else {
            continue;
        };
        if !ATOMIC_VARIANTS.contains(&variant) {
            continue;
        }
        let line = t[i].line;
        if !justified.contains(&line) && !justified.contains(&line.saturating_sub(1)) {
            out.push((
                line,
                ATOMIC_ORDERING,
                format!(
                    "`Ordering::{variant}` without an adjacent `// ordering:` comment \
                     justifying why this memory ordering is sufficient"
                ),
            ));
        }
    }
}

/// The manifest writer helpers whose first string argument is a JSON
/// key being **emitted**.
const EMIT_HELPERS: &[&str] = &[
    "write_string",
    "write_number",
    "write_optional_u64",
    "write_u64_array",
    "write_string_array",
    "write_shard_array",
    "write_metric_array",
];

/// The parser helpers whose string argument is a JSON key being
/// **consumed**.
const CONSUME_HELPERS: &[&str] = &["get", "get_optional", "optional_u64"];

/// Whether this file is the schema owner the drift rule audits.
pub fn is_manifest_file(rel: &str) -> bool {
    rel.starts_with("crates/gen/") && rel.ends_with("/manifest.rs")
}

/// Cross-check emitted vs consumed JSON keys inside `manifest.rs`.
///
/// Emitted keys come from two shapes: the first string argument of a
/// writer helper call, and `"key":` patterns embedded in any
/// non-test string literal (the journal writes whole JSON lines via
/// `format!`).  Consumed keys are the string argument of the parser
/// helpers.  A key on one side only is a finding at the site where the
/// key appears.
pub fn scan_manifest_schema(
    lexed: &Lexed,
    mask: &[bool],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    let t = &lexed.tokens;
    // key -> first line seen, per side.
    let mut emitted: BTreeMap<String, u32> = BTreeMap::new();
    let mut consumed: BTreeMap<String, u32> = BTreeMap::new();
    for i in 0..t.len() {
        if mask[i] {
            continue;
        }
        if let Some(name) = ident_at(t, i) {
            if punct_at(t, i + 1, '(') && !punct_at(t, i.wrapping_sub(1), '.') {
                let side = if EMIT_HELPERS.contains(&name) {
                    Some(&mut emitted)
                } else if CONSUME_HELPERS.contains(&name) {
                    Some(&mut consumed)
                } else {
                    None
                };
                if let Some(side) = side {
                    if let Some((line, key)) = first_str_arg(t, i + 1) {
                        side.entry(key).or_insert(line);
                    }
                }
            }
        }
        // `"key":` patterns inside string literals (journal lines are
        // written whole through format! strings).
        if let TokKind::Str(content) = &t[i].kind {
            for key in embedded_keys(content) {
                emitted.entry(key).or_insert(t[i].line);
            }
        }
    }
    for (key, line) in &emitted {
        if !consumed.contains_key(key) {
            out.push((
                *line,
                MANIFEST_SCHEMA_DRIFT,
                format!(
                    "JSON key `{key}` is written but never read back; resume would \
                     silently drop it — wire it through the parser or stop emitting it"
                ),
            ));
        }
    }
    for (key, line) in &consumed {
        if !emitted.contains_key(key) {
            out.push((
                *line,
                MANIFEST_SCHEMA_DRIFT,
                format!(
                    "JSON key `{key}` is read but never written; the parser consumes \
                     a field no writer produces — emit it or drop the read"
                ),
            ));
        }
    }
}

/// The string literal in the *second* argument position of the call
/// whose parens open at `open` — the key slot of every schema helper
/// (`helper(out, "key", ..)` / `get(obj, "key")`).  Restricting to that
/// slot keeps the helpers' own bodies (where the key is a pass-through
/// variable and some other literal may appear later) out of the key set.
fn first_str_arg(t: &[Token], open: usize) -> Option<(u32, String)> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut i = open;
    while i < t.len() {
        if punct_at(t, i, '(') || punct_at(t, i, '[') || punct_at(t, i, '{') {
            depth += 1;
        } else if punct_at(t, i, ')') || punct_at(t, i, ']') || punct_at(t, i, '}') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if depth == 1 && punct_at(t, i, ',') {
            commas += 1;
            if commas > 1 {
                return None;
            }
        } else if depth == 1 && commas == 1 {
            if let TokKind::Str(s) = &t[i].kind {
                return Some((t[i].line, s.clone()));
            }
        }
        i += 1;
    }
    None
}

/// Extract `"key":` patterns from raw string content.  Backslashes are
/// stripped first so escaped quotes inside normal literals
/// (`{\"kind\": ..`) and plain quotes inside raw literals both match.
fn embedded_keys(content: &str) -> Vec<String> {
    let stripped: String = content.chars().filter(|&c| c != '\\').collect();
    let bytes: Vec<char> = stripped.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != '"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
            j += 1;
        }
        if j > start && j < bytes.len() && bytes[j] == '"' {
            let mut k = j + 1;
            while k < bytes.len() && bytes[k] == ' ' {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == ':' {
                out.push(bytes[start..j].iter().collect());
                i = k + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// The two sanctioned panic helpers (documented single-owner contracts
/// from the durability pass): calling them is a panic *site* for
/// reachability purposes, so every call on a `Pipeline` path needs a
/// reasoned `lint:allow(panic-reachability)` restating why the
/// contract holds there.
const SANCTIONED_HELPERS: &[&str] = &["addressable", "le_u64"];

/// One file's inputs to the reachability pass.
pub struct ReachFile<'a> {
    pub lexed: &'a Lexed,
    pub parsed: &'a crate::parser::ParsedFile,
    pub mask: &'a [bool],
    /// Whether the file is Library-class (only library panic sites count).
    pub is_library: bool,
    /// Lines of *unsuppressed* lexical panic findings
    /// (`no-unwrap`/`no-expect`/`no-panic`) in this file.  Suppressed
    /// sites are documented contracts and are exempt from reachability.
    pub open_panic_lines: &'a [u32],
}

/// Whole-workspace panic-reachability: build the call graph, BFS from
/// every `pub fn` on a `Pipeline` impl, and report each reachable panic
/// site with its full call chain.  Returns `(file index, line, rule,
/// message)` tuples.
pub fn panic_reachability(files: &[ReachFile<'_>]) -> Vec<(usize, u32, &'static str, String)> {
    let graph_files: Vec<GraphFile<'_>> = files
        .iter()
        .map(|f| GraphFile {
            lexed: f.lexed,
            parsed: f.parsed,
        })
        .collect();
    let graph = CallGraph::build(&graph_files);
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_pub && f.self_type.as_deref() == Some("Pipeline"))
        .map(|(n, _)| n)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let parent = graph.reach_from(&entries);

    // Panic sites: (file, line, what).
    let mut sites: Vec<(usize, u32, String)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.is_library {
            continue;
        }
        for &line in f.open_panic_lines {
            sites.push((fi, line, "unsuppressed panic site".to_string()));
        }
        // Calls into the sanctioned helpers (not their definitions).
        let t = &f.lexed.tokens;
        for i in 0..t.len() {
            if f.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(name) = ident_at(t, i) else { continue };
            if !SANCTIONED_HELPERS.contains(&name) || !punct_at(t, i + 1, '(') {
                continue;
            }
            if i > 0 && ident_at(t, i - 1) == Some("fn") {
                continue; // the helper's own definition
            }
            sites.push((
                fi,
                t[i].line,
                format!("call into panicking helper `{name}`"),
            ));
        }
    }
    sites.sort();
    sites.dedup();

    let mut out = Vec::new();
    for (fi, line, what) in sites {
        let Some(node) = graph.containing_fn(fi, line) else {
            continue;
        };
        if !parent.contains_key(&node) {
            continue;
        }
        let chain = graph.chain_to(node, &parent).join(" -> ");
        out.push((
            fi,
            line,
            PANIC_REACHABILITY,
            format!(
                "{what} is reachable from a Pipeline entry point: {chain} -> panic at line {line}"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};
    use crate::parser::parse_file;

    fn scan_atomics(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let mut out = Vec::new();
        scan_atomic_ordering(&lexed, &mask, &mut out);
        out.into_iter().map(|(line, _, _)| line).collect()
    }

    #[test]
    fn atomic_sites_need_an_ordering_comment() {
        let bad = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(scan_atomics(bad), vec![1]);
        let same_line =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); // ordering: counter only\n}\n";
        assert!(scan_atomics(same_line).is_empty());
        let line_above = "fn f(c: &AtomicU64) {\n\
                          // ordering: Relaxed suffices, value is folded after join\n\
                          c.fetch_add(1, Ordering::SeqCst);\n}\n";
        assert!(scan_atomics(line_above).is_empty());
    }

    #[test]
    fn cmp_ordering_variants_are_not_atomic_sites() {
        let src = "fn f(a: u64, b: u64) -> Ordering { Ordering::Less }\n";
        assert!(scan_atomics(src).is_empty());
    }

    #[test]
    fn embedded_keys_parse_escaped_and_raw_forms() {
        assert_eq!(
            embedded_keys(r#"{\"kind\": \"shard\", \"name\": "#),
            vec!["kind".to_string(), "name".to_string()]
        );
        assert_eq!(embedded_keys(r#"{"edges": 12}"#), vec!["edges".to_string()]);
        assert!(embedded_keys("no keys here").is_empty());
        assert!(embedded_keys(r#"just a \"value\""#).is_empty());
    }

    fn scan_schema(src: &str) -> Vec<(u32, String)> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let mut out = Vec::new();
        scan_manifest_schema(&lexed, &mask, &mut out);
        out.into_iter().map(|(line, _, msg)| (line, msg)).collect()
    }

    #[test]
    fn schema_drift_catches_both_directions() {
        let src = "fn to_json(out: &mut String) {\n\
                       write_string(out, \"kept\", v);\n\
                       write_number(out, \"dropped\", n);\n\
                   }\n\
                   fn from_json(obj: &Obj) {\n\
                       get(obj, \"kept\");\n\
                       get_optional(obj, \"phantom\");\n\
                   }\n";
        let drift = scan_schema(src);
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift[0].1.contains("`dropped`") && drift[0].1.contains("never read"));
        assert!(drift[1].1.contains("`phantom`") && drift[1].1.contains("never written"));
    }

    #[test]
    fn schema_in_balance_is_clean() {
        let src = "fn to_json(out: &mut String) {\n\
                       write_string(out, \"a\", v);\n\
                       out.push_str(\"{\\\"kind\\\": \\\"run\\\"}\");\n\
                   }\n\
                   fn from_json(obj: &Obj) {\n\
                       get(obj, \"a\");\n\
                       get(obj, \"kind\");\n\
                   }\n";
        assert!(scan_schema(src).is_empty(), "{:?}", scan_schema(src));
    }

    #[test]
    fn reachability_reports_the_chain_and_skips_unreached_sites() {
        let pipeline_src = "pub struct Pipeline;\n\
                            impl Pipeline { pub fn count(self) -> u64 { helper() } }\n\
                            fn helper() -> u64 { kron_sparse::fold() }\n\
                            fn orphan() { other() }\n\
                            fn other() {}\n";
        let sparse_src = "pub fn fold() -> u64 { tally() }\n\
                          fn tally() -> u64 { 0 }\n";
        let lex_a = lex(pipeline_src);
        let mask_a = test_mask(&lex_a.tokens);
        let parsed_a = parse_file("crates/gen/src/pipeline.rs", &lex_a, &mask_a);
        let lex_b = lex(sparse_src);
        let mask_b = test_mask(&lex_b.tokens);
        let parsed_b = parse_file("crates/sparse/src/lib.rs", &lex_b, &mask_b);
        // Pretend line 2 of sparse (inside `tally`) and line 5 of the
        // pipeline file (inside `other`) carry open panic sites.
        let files = [
            ReachFile {
                lexed: &lex_a,
                parsed: &parsed_a,
                mask: &mask_a,
                is_library: true,
                open_panic_lines: &[5],
            },
            ReachFile {
                lexed: &lex_b,
                parsed: &parsed_b,
                mask: &mask_b,
                is_library: true,
                open_panic_lines: &[2],
            },
        ];
        let found = panic_reachability(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        let (fi, line, rule, msg) = &found[0];
        assert_eq!((*fi, *line), (1, 2));
        assert_eq!(*rule, PANIC_REACHABILITY);
        assert!(
            msg.contains("Pipeline::count -> gen::helper -> sparse::fold -> sparse::tally"),
            "{msg}"
        );
    }

    #[test]
    fn sanctioned_helper_calls_are_sites_but_definitions_are_not() {
        let src = "pub struct Pipeline;\n\
                   impl Pipeline { pub fn run(self) { le_u64(buf) } }\n\
                   pub fn le_u64(b: &[u8]) -> u64 { 0 }\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let parsed = parse_file("crates/gen/src/writer.rs", &lexed, &mask);
        let files = [ReachFile {
            lexed: &lexed,
            parsed: &parsed,
            mask: &mask,
            is_library: true,
            open_panic_lines: &[],
        }];
        let found = panic_reachability(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].1, 2, "the call line, not the definition line");
        assert!(found[0].3.contains("le_u64"));
    }
}
