//! Vendored subset of the `criterion` API.
//!
//! The build environment has no route to a crates registry, so this crate
//! implements the benchmarking surface the workspace uses: `Criterion`,
//! `benchmark_group` with `throughput` / `sample_size` / `bench_with_input` /
//! `bench_function`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, the iteration count
//! per sample is scaled so a sample takes at least ~2 ms, `sample_size`
//! samples are collected, and the median per-iteration time is reported
//! together with element throughput when one was declared.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.name, self.throughput);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.name, self.throughput);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Measure the routine: warm up, scale iterations so a sample is long
    /// enough to time reliably, then collect the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(2);
        self.iters_per_sample = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64
        };

        self.samples = (0..self.sample_size)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                started.elapsed() / self.iters_per_sample as u32
            })
            .collect();
    }

    /// Median per-iteration time across samples.
    pub fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }

    fn report(&self, group: &str, bench: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {group}/{bench}: no samples collected");
            return;
        }
        let median = self.median();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(", {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    ", {:.3} MiB/s",
                    n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "  {group}/{bench}: median {median:?} over {} samples x {} iters{rate}",
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

/// Bundle benchmark functions into one named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1000));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
