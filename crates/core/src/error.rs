//! Error type for the design layer.

use kron_sparse::SparseError;
use std::fmt;

/// Errors produced while designing, realising, or validating Kronecker graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A design was empty (no constituent matrices).
    EmptyDesign,
    /// A constituent matrix was rejected (must be square, non-empty, …).
    InvalidConstituent {
        /// Position of the offending constituent in the design.
        index: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A star parameter was invalid (e.g. `m̂ = 0`).
    InvalidStar {
        /// The offending number of star points.
        points: u64,
        /// Explanation of the problem.
        message: String,
    },
    /// The requested operation needs the graph to be materialised but it is
    /// too large for memory.
    TooLargeToRealise {
        /// Number of vertices of the requested graph (decimal string).
        vertices: String,
        /// Number of edges of the requested graph (decimal string).
        edges: String,
    },
    /// A design search failed to find a design meeting the targets.
    DesignNotFound {
        /// Explanation of what was searched and why it failed.
        message: String,
    },
    /// A runtime configuration (worker count, memory budget, calibration
    /// input, …) was invalid for the requested operation.
    InvalidConfig {
        /// Explanation of the rejected configuration.
        message: String,
    },
    /// Exact triangle counting is only defined for designs whose product has
    /// zero self-loops or exactly one removable self-loop (the paper's
    /// Case 0 / Case 1 / Case 2 constructions).
    UnsupportedTriangleStructure {
        /// Number of self-loops in the product graph (decimal string).
        product_self_loops: String,
    },
    /// A resumed run was configured differently from the interrupted run
    /// recorded in the progress journal — resuming would silently produce a
    /// different graph, so the mismatch is rejected up front.
    ResumeMismatch {
        /// Which configuration field disagrees (`workers`, `source`, …).
        field: String,
        /// The value the progress journal recorded.
        journal: String,
        /// The value this pipeline would run with.
        run: String,
    },
    /// An underlying sparse-matrix error.
    Sparse(SparseError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDesign => write!(f, "design has no constituent matrices"),
            CoreError::InvalidConstituent { index, message } => {
                write!(f, "invalid constituent #{index}: {message}")
            }
            CoreError::InvalidStar { points, message } => {
                write!(f, "invalid star with {points} points: {message}")
            }
            CoreError::TooLargeToRealise { vertices, edges } => write!(
                f,
                "graph with {vertices} vertices / {edges} edges is too large to materialise; \
                 use the analytic property API instead"
            ),
            CoreError::DesignNotFound { message } => write!(f, "design search failed: {message}"),
            CoreError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            CoreError::UnsupportedTriangleStructure { product_self_loops } => write!(
                f,
                "exact triangle count needs 0 or 1 self-loops in the product, found {product_self_loops}"
            ),
            CoreError::ResumeMismatch {
                field,
                journal,
                run,
            } => write!(
                f,
                "cannot resume: {field} mismatch (the journal recorded {journal}, \
                 this pipeline would run {run})"
            ),
            CoreError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SparseError> for CoreError {
    fn from(err: SparseError) -> Self {
        CoreError::Sparse(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::EmptyDesign
            .to_string()
            .contains("no constituent"));
        let e = CoreError::InvalidStar {
            points: 0,
            message: "need at least one point".into(),
        };
        assert!(e.to_string().contains("0 points"));
        let e = CoreError::TooLargeToRealise {
            vertices: "10".into(),
            edges: "20".into(),
        };
        assert!(e.to_string().contains("too large"));
        let e = CoreError::InvalidConfig {
            message: "generator needs at least one worker".into(),
        };
        assert!(e.to_string().contains("invalid configuration"));
        let e = CoreError::ResumeMismatch {
            field: "workers".into(),
            journal: "4".into(),
            run: "3".into(),
        };
        assert!(e.to_string().contains("workers mismatch"));
        assert!(e.to_string().contains('4'));
        let e: CoreError = SparseError::Io("boom".into()).into();
        assert!(matches!(e, CoreError::Sparse(_)));
        assert!(e.to_string().contains("boom"));
    }
}
