//! Figure 6: predicted degree distribution of a quadrillion-edge (10^15)
//! power-law Kronecker graph with centre self-loops (triangle-rich).
//!
//! Exact counts: 6,997,208,649,600 vertices, 2,318,105,678,089,508 edges,
//! 12,720,651,636,552,427 triangles (the paper's caption prints …426 — one
//! unit below the exact integer, consistent with double-precision rounding
//! above 2^53).  The distribution follows the power law with small
//! deviations above and below the line, exactly as the figure shows.

use kron_bench::{design, figure_header, paper, print_distribution_series};
use kron_bignum::{grouped, BigUint};
use kron_core::{PowerLaw, SelfLoop};

fn main() {
    figure_header(
        "Figure 6",
        "quadrillion-edge design with centre self-loops (triangle-rich)",
    );

    let d = design(paper::FIG5_6, SelfLoop::Centre);
    println!(
        "star points m̂ = {:?} with a self-loop on every centre vertex",
        paper::FIG5_6
    );
    println!("vertices:  {}", grouped(&d.vertices().to_string()));
    println!("edges:     {}", grouped(&d.edges().to_string()));
    println!(
        "triangles: {} (paper caption: 12,720,651,636,552,426)",
        grouped(&d.triangles().unwrap().to_string())
    );

    let dist = d.degree_distribution();
    println!(
        "\nno single constant fits n(d)·d (perfect-law constant: {:?}) — the centre loops shift",
        dist.perfect_power_law_constant().map(|c| c.to_string())
    );
    println!("points slightly above and below the α = 1 line, as in the figure:");
    // Residuals against the loop-free reference line of Figure 5.
    let reference = design(paper::FIG5_6, SelfLoop::None)
        .degree_distribution()
        .perfect_power_law_constant()
        .expect("figure 5 reference");
    let law = PowerLaw::perfect(reference);
    println!(
        "mean |log10 residual| against Figure 5's line: {:.4}",
        law.mean_log_residual(&dist)
    );

    println!("\npredicted degree distribution series:");
    print_distribution_series(&dist, 32);

    assert_eq!(d.edges().to_string(), "2318105678089508");
    assert_eq!(
        d.triangles().unwrap(),
        "12720651636552427".parse::<BigUint>().unwrap()
    );
    println!(
        "\nFigure 6 reproduced: exact counts match the paper (triangles to within the paper's"
    );
    println!("double-precision rounding of its own formula).");
}
