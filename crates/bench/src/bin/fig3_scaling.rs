//! Figure 3: edge-generation rate versus number of processors.
//!
//! The paper generates a 1.1-trillion-edge graph on 41,472 cores in about a
//! second (> 10^12 edges/s), with rate scaling linearly in core count.  On a
//! single machine we sweep rayon worker counts over a design with the same
//! B ⊗ C structure and report edges/second per worker count — the series the
//! figure plots — plus the exact properties of the full-scale design, which
//! this machine can compute but not materialise.

use kron_bench::{design, figure_header, machine_pipeline, paper};
use kron_bignum::grouped;
use kron_core::SelfLoop;
use kron_gen::{choose_split, ScalingModel};

fn main() {
    figure_header("Figure 3", "edge generation rate vs. number of workers");

    let full = design(paper::FIG3_4, SelfLoop::None);
    let (b, c) = full.split(paper::FIG3_4_SPLIT).expect("paper split");
    println!("full-scale design (analytic): A = B ⊗ C with");
    println!(
        "  B: {} vertices, {} edges    C: {} vertices, {} edges",
        grouped(&b.vertices().to_string()),
        grouped(&b.edges().to_string()),
        grouped(&c.vertices().to_string()),
        grouped(&c.edges().to_string()),
    );
    println!(
        "  A: {} vertices, {} edges, {} triangles",
        grouped(&full.vertices().to_string()),
        grouped(&full.edges().to_string()),
        full.triangles().unwrap(),
    );
    println!("  (paper: 1 second on 41,472 cores ⇒ ~1.1e12 edges/s)\n");

    let scaled = design(paper::MACHINE_SCALE, SelfLoop::None);
    println!(
        "machine-scale sweep: same construction truncated to m̂ = {:?} ({} edges per run)",
        paper::MACHINE_SCALE,
        grouped(&scaled.edges().to_string()),
    );
    println!(
        "{:>8} {:>16} {:>18} {:>14} {:>12}",
        "workers", "edges", "rate (edges/s)", "seconds", "max/mean"
    );

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2, 4, 8];
    if !worker_counts.contains(&hardware_threads) {
        worker_counts.push(hardware_threads);
    }
    let mut single_worker_rate = None;
    for &workers in &worker_counts {
        // The sweep runs the pipeline with counting sinks: generation plus
        // the streamed degree histogram, with no materialisation and no
        // total-edge ceiling.
        let run = machine_pipeline(&scaled, workers)
            .split_index(paper::MACHINE_SCALE_SPLIT)
            .count()
            .expect("machine-scale factors fit in memory");
        if workers == 1 {
            single_worker_rate = Some(run.stats.edges_per_second());
        }
        println!(
            "{:>8} {:>16} {:>18.0} {:>14.4} {:>12.4}",
            workers,
            run.stats.total_edges,
            run.stats.edges_per_second(),
            run.stats.seconds,
            run.stats.balance_ratio(),
        );
    }
    println!(
        "\n(hardware threads on this machine: {hardware_threads}; rates above one thread are \
bounded by physical cores, matching the paper's linear-in-cores shape)"
    );

    // Extrapolate the calibrated per-core rate to the paper's configuration
    // with the communication-free cost model: the algorithm exchanges no
    // data, so time = (heaviest worker's triples) × nnz(C) × per-edge cost.
    if let Some(rate) = single_worker_rate {
        let plan = choose_split(&scaled, 200_000, 1).expect("split exists");
        let model = ScalingModel::new(&plan, 1.0 / rate).expect("positive rate");
        println!("\nextrapolation of this machine's per-core rate to the paper's configuration:");
        println!("{:>10} {:>18} {:>14}", "cores", "rate (edges/s)", "seconds");
        for &cores in &[1u64, 64, 1024, 41_472] {
            let point = model
                .predict_for_design(&full, paper::FIG3_4_SPLIT, cores)
                .expect("paper design splits");
            println!(
                "{:>10} {:>18.3e} {:>14.2}",
                cores, point.edges_per_second, point.seconds
            );
        }
        println!("(the paper reports ~1e12 edges/s and ~1 second at 41,472 cores)");
    }
}
