//! Figure 7: predicted degree distribution of a decetta-edge (10^30)
//! power-law Kronecker graph, computed exactly on one machine.
//!
//! Exact counts: 144,111,718,793,178,936,483,840,000 vertices,
//! 2,705,963,586,782,877,716,483,871,216,764 edges, 178,940,587 triangles.

use std::time::Instant;

use kron_bench::{design, figure_header, paper, print_distribution_series};
use kron_bignum::{grouped, scientific};
use kron_core::SelfLoop;

fn main() {
    figure_header(
        "Figure 7",
        "decetta-scale (10^30 edge) design, exact analysis on one machine",
    );

    let started = Instant::now();
    let d = design(paper::FIG7, SelfLoop::Leaf);
    let vertices = d.vertices();
    let edges = d.edges();
    let triangles = d.triangles().unwrap();
    let dist = d.degree_distribution();
    let elapsed = started.elapsed();

    println!("star points m̂ = {:?}", paper::FIG7);
    println!("  (self-loop on one leaf vertex of each star)\n");
    println!(
        "vertices:  {}  ≈ {}",
        grouped(&vertices.to_string()),
        scientific(&vertices)
    );
    println!(
        "edges:     {}  ≈ {}",
        grouped(&edges.to_string()),
        scientific(&edges)
    );
    println!("triangles: {}", grouped(&triangles.to_string()));
    println!(
        "degree distribution: {} exact support points, max degree ≈ {}",
        dist.support_size(),
        scientific(dist.max_degree().expect("non-empty"))
    );
    println!("computed in {elapsed:?} (the paper: \"a few minutes on a standard laptop\")\n");

    println!("predicted degree distribution series (most points follow the power law, with the");
    println!("leaf-loop deviations the figure shows):");
    print_distribution_series(&dist, 40);

    assert_eq!(vertices.to_string(), "144111718793178936483840000");
    assert_eq!(edges.to_string(), "2705963586782877716483871216764");
    assert_eq!(triangles.to_string(), "178940587");
    println!("\nFigure 7 reproduced: all exact counts match the paper.");
}
