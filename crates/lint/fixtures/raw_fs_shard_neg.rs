//@ path: crates/gen/src/sink.rs
use std::fs::File;
use std::path::Path;

// Inside the atomic sink module itself, raw creation is the point: this
// is the one owner of the fsync -> rename path.
pub fn stage(path: &Path) -> std::io::Result<File> {
    File::create(path)
}

pub fn publish(tmp: &Path, path: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, path)
}
