//! O(1)-memory vertex relabelling: a seeded Feistel bijection on `[0, V)`.
//!
//! Graph500 — and the paper's released datasets — randomly permute vertex
//! labels before publication so that the heavy vertices are not trivially
//! identifiable by their index.  A permutation *table* needs `O(V)` memory,
//! which is unusable at the paper's 10¹⁰-vertex designs; the
//! [`FeistelPermutation`] here is a keyed bijection evaluated per vertex in
//! constant memory instead: a four-round balanced Feistel network over the
//! smallest even number of bits covering `V`, with cycle-walking to restrict
//! the domain to exactly `[0, V)` when `V` is not a power of four.
//!
//! Because the network is a permutation of its power-of-two domain for *any*
//! round function, and cycle-walking restricted to a subset of a
//! permutation's domain is again a permutation of that subset, the map is an
//! exact bijection on `[0, V)` — every degree-, loop-, and multiplicity-
//! preserving guarantee of table-based relabelling carries over, with no
//! table.  The same seed always produces the same permutation, so a run is
//! reproducible from the seed recorded in its
//! [`RunManifest`](crate::manifest::RunManifest).

/// Number of Feistel rounds.  Three already give a pseudorandom permutation
/// for a pseudorandom round function (Luby–Rackoff); four is the
/// conventional safety margin and still costs only a handful of
/// multiply-xor-shifts per vertex.
const ROUNDS: usize = 4;

/// A seeded bijection on `[0, n)` evaluated in O(1) memory.
///
/// ```
/// use kron_gen::permute::FeistelPermutation;
///
/// let perm = FeistelPermutation::new(1_000, 42);
/// let mut image: Vec<u64> = (0..1_000).map(|v| perm.apply(v)).collect();
/// image.sort_unstable();
/// assert_eq!(image, (0..1_000).collect::<Vec<u64>>()); // exact bijection
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; ROUNDS],
}

/// The SplitMix64 finalizer: a cheap invertible mixer with full avalanche,
/// used both to derive the round keys and as the round function.
fn diffuse(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FeistelPermutation {
    /// Build the permutation of `[0, n)` keyed by `seed`.
    ///
    /// The Feistel domain is `2^b` for the smallest even `b` with
    /// `2^b ≥ n`, so cycle-walking needs fewer than four expected rounds per
    /// vertex and the whole structure is a few machine words regardless of
    /// `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        // Smallest bit width covering n-1, rounded up to an even number of
        // bits so the two Feistel halves are balanced.  n ≤ 1 still gets a
        // 2-bit domain (the walk collapses to the identity on {0}).
        let bits = (64 - n.saturating_sub(1).leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        let half_bits = bits / 2;
        let mut state = seed;
        let mut next_key = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            diffuse(state)
        };
        FeistelPermutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys: std::array::from_fn(|_| next_key()),
        }
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One pass of the Feistel network over the full `2^(2·half_bits)`
    /// domain — a bijection for any round function.
    fn network(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for &key in &self.keys {
            let feedback = diffuse(right ^ key) & self.half_mask;
            (left, right) = (right, left ^ feedback);
        }
        (left << self.half_bits) | right
    }

    /// The permuted label of vertex `x`.
    ///
    /// Cycle-walks: values the network maps outside `[0, n)` are fed back in
    /// until one lands inside, which restricts the power-of-two bijection to
    /// an exact bijection on `[0, n)`.
    ///
    /// # Panics
    /// Panics if `x ≥ n` (the input is not a vertex of the graph).
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        assert!(
            x < self.n,
            "vertex {x} outside permutation domain {}",
            self.n
        );
        let mut y = self.network(x);
        while y >= self.n {
            y = self.network(y);
        }
        y
    }

    /// Permute both endpoints of an edge.
    #[inline]
    pub fn apply_edge(&self, (row, col): (u64, u64)) -> (u64, u64) {
        (self.apply(row), self.apply(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn image(n: u64, seed: u64) -> Vec<u64> {
        let perm = FeistelPermutation::new(n, seed);
        (0..n).map(|v| perm.apply(v)).collect()
    }

    #[test]
    fn bijection_across_domain_sizes() {
        // Powers of four, powers of two needing an odd bit count, and
        // awkward in-between sizes that force cycle-walking.
        for n in [1u64, 2, 3, 4, 5, 7, 16, 17, 100, 1023, 1024, 1025, 4096] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let mut out = image(n, seed);
                out.sort_unstable();
                assert_eq!(out, (0..n).collect::<Vec<u64>>(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(image(500, 7), image(500, 7));
        assert_ne!(image(500, 7), image(500, 8));
    }

    #[test]
    fn actually_scrambles() {
        // A permutation that fixes nearly everything would defeat the
        // purpose; demand that most labels move.
        let out = image(1000, 3);
        let fixed = out
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u64 == v)
            .count();
        assert!(fixed < 50, "{fixed} fixed points out of 1000");
    }

    #[test]
    fn degree_histogram_is_preserved() {
        let edges = [(0u64, 1), (1, 2), (2, 0), (3, 3), (0, 1), (4, 0)];
        let perm = FeistelPermutation::new(5, 99);
        let relabelled: Vec<(u64, u64)> = edges.iter().map(|&e| perm.apply_edge(e)).collect();
        let histogram = |edges: &[(u64, u64)]| {
            let mut rows: BTreeMap<u64, u64> = BTreeMap::new();
            for &(r, _) in edges {
                *rows.entry(r).or_insert(0) += 1;
            }
            let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
            for &d in rows.values() {
                *counts.entry(d).or_insert(0) += 1;
            }
            counts
        };
        assert_eq!(histogram(&edges), histogram(&relabelled));
        let loops = |edges: &[(u64, u64)]| edges.iter().filter(|&&(r, c)| r == c).count();
        assert_eq!(loops(&edges), loops(&relabelled));
    }

    #[test]
    fn tiny_domains_are_total() {
        let perm = FeistelPermutation::new(1, 12345);
        assert_eq!(perm.apply(0), 0);
        assert_eq!(perm.len(), 1);
        assert!(!perm.is_empty());
        assert!(FeistelPermutation::new(0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside permutation domain")]
    fn out_of_domain_input_panics() {
        FeistelPermutation::new(10, 1).apply(10);
    }

    #[test]
    fn huge_domains_stay_in_range() {
        // Near the top of u64: the network must not overflow and the walk
        // must terminate.
        let n = u64::MAX - 3;
        let perm = FeistelPermutation::new(n, 5);
        for x in [0u64, 1, 12345, n - 1] {
            assert!(perm.apply(x) < n);
        }
    }
}
