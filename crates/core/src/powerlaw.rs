//! Power-law curves and diagnostics.
//!
//! A power-law degree distribution satisfies `n(d) ∝ d^{-α}`.  Star-product
//! Kronecker designs satisfy the *perfect* law `n(d) = c/d` (slope 1) as long
//! as all constituent degree products are unique; this module provides the
//! reference curve, the slope estimate from extreme points the paper uses
//! (`α = log n(1) / log d_max`), a goodness measure against the ideal curve,
//! and the uniqueness check that tells a designer whether a chosen star set
//! will stay exactly on the line.

use kron_bignum::{BigRatio, BigUint};

use crate::degree::DegreeDistribution;

/// A fitted / reference power law `n(d) = c · d^{-α}`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLaw {
    /// Normalisation constant `c` (the value of `n(1)`).
    pub constant: f64,
    /// Slope `α > 0`.
    pub alpha: f64,
}

impl PowerLaw {
    /// The ideal curve through a perfect star-product distribution:
    /// `c = ∏ m̂_k`, `α = 1`.
    pub fn perfect(constant: BigUint) -> Self {
        PowerLaw {
            constant: constant.to_f64(),
            alpha: 1.0,
        }
    }

    /// Slope estimate from the extreme points, as used in the paper:
    /// `α = log n(1) / log d_max`.
    pub fn from_extremes(dist: &DegreeDistribution) -> Option<Self> {
        let n1 = dist.count(&BigUint::one());
        let dmax = dist.max_degree()?;
        if n1.is_zero() || dmax.is_one() {
            return None;
        }
        let alpha = n1.log10()? / dmax.log10()?;
        Some(PowerLaw {
            constant: n1.to_f64(),
            alpha,
        })
    }

    /// Predicted count at degree `d` (floating point; for plots and
    /// residuals, not for exact property computation).
    pub fn predict(&self, degree: f64) -> f64 {
        self.constant * degree.powf(-self.alpha)
    }

    /// Mean absolute log10 residual of a distribution against this curve.
    /// Zero for a distribution lying exactly on the line.
    pub fn mean_log_residual(&self, dist: &DegreeDistribution) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (d, n) in dist.iter() {
            let (Some(ld), Some(ln)) = (d.log10(), n.log10()) else {
                continue;
            };
            let predicted = self.constant.log10() - self.alpha * ld;
            total += (ln - predicted).abs();
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// A power-law diagnostic computed from a measured degree distribution: the
/// paper's extreme-point slope estimate together with two goodness numbers.
///
/// This is the streaming-metrics view of [`PowerLaw`]: everything here is
/// derived from the degree histogram alone, so a generation (or replay) run
/// can report it without ever materialising the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLawFit {
    /// Extreme-point slope `α = log n(1) / log d_max`
    /// ([`PowerLaw::from_extremes`]).
    pub alpha: f64,
    /// Normalisation constant `c = n(1)` of the fitted curve.
    pub constant: f64,
    /// Mean absolute log10 residual of the distribution against the *fitted*
    /// curve — zero when the measured points lie exactly on the fitted line.
    pub mean_log_residual: f64,
    /// Mean absolute log10 residual against the *ideal* perfect power law
    /// `n(d) = n(1)/d` (slope 1) — zero exactly when the distribution is the
    /// perfect law every star-product design is constructed to satisfy.
    pub residual_vs_ideal: f64,
}

impl PowerLawFit {
    /// Fit a distribution, or `None` when the extreme points do not pin a
    /// slope (no degree-1 vertices, or a single-degree distribution).
    pub fn from_distribution(dist: &DegreeDistribution) -> Option<Self> {
        let fitted = PowerLaw::from_extremes(dist)?;
        let ideal = PowerLaw {
            constant: fitted.constant,
            alpha: 1.0,
        };
        Some(PowerLawFit {
            alpha: fitted.alpha,
            constant: fitted.constant,
            mean_log_residual: fitted.mean_log_residual(dist),
            residual_vs_ideal: ideal.mean_log_residual(dist),
        })
    }

    /// The fitted curve as a [`PowerLaw`].
    pub fn curve(&self) -> PowerLaw {
        PowerLaw {
            constant: self.constant,
            alpha: self.alpha,
        }
    }
}

/// Check whether all `2^N` subset products of the star points are unique —
/// the paper's condition for the product distribution to remain a perfect
/// power law ("as long as all of the products of the corresponding m̂ are
/// unique").
pub fn star_products_unique(points: &[u64]) -> bool {
    let mut products: Vec<BigUint> = vec![BigUint::one()];
    for &p in points {
        let mut next = Vec::with_capacity(products.len() * 2);
        for existing in &products {
            next.push(existing.clone());
            next.push(existing * &BigUint::from(p));
        }
        products = next;
    }
    let len = products.len();
    products.sort();
    products.dedup();
    products.len() == len
}

/// The exact edge/vertex ratio of a plain star-product design,
/// `∏ 2m̂_k / ∏ (m̂_k + 1)`, as a rational.
pub fn star_design_edge_vertex_ratio(points: &[u64]) -> BigRatio {
    let mut edges = BigUint::one();
    let mut vertices = BigUint::one();
    for &p in points {
        edges *= 2 * p;
        vertices *= p + 1;
    }
    BigRatio::new(edges.into(), vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u64, u64)]) -> DegreeDistribution {
        DegreeDistribution::from_pairs(
            pairs
                .iter()
                .map(|&(d, n)| (BigUint::from(d), BigUint::from(n))),
        )
    }

    #[test]
    fn perfect_curve_predicts_counts() {
        let law = PowerLaw::perfect(BigUint::from(15u64));
        assert!((law.predict(1.0) - 15.0).abs() < 1e-12);
        assert!((law.predict(3.0) - 5.0).abs() < 1e-12);
        assert!((law.predict(15.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_point_slope_matches_paper_star_formula() {
        // For a single star: α = log(m̂)/log(m̂) = 1.
        let star = dist(&[(1, 9), (9, 1)]);
        let law = PowerLaw::from_extremes(&star).unwrap();
        assert!((law.alpha - 1.0).abs() < 1e-12);
        // Steeper synthetic distribution.
        let steep = dist(&[(1, 10_000), (100, 1)]);
        let law = PowerLaw::from_extremes(&steep).unwrap();
        assert!((law.alpha - 2.0).abs() < 1e-12);
        // Degenerate cases.
        assert!(PowerLaw::from_extremes(&dist(&[(2, 5)])).is_none());
        assert!(PowerLaw::from_extremes(&DegreeDistribution::new()).is_none());
    }

    #[test]
    fn residual_is_zero_on_the_line() {
        let perfect = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        let law = PowerLaw::perfect(BigUint::from(15u64));
        assert!(law.mean_log_residual(&perfect) < 1e-12);
        let off = dist(&[(1, 15), (3, 100)]);
        assert!(law.mean_log_residual(&off) > 0.5);
    }

    #[test]
    fn fit_summary_of_a_perfect_law_has_zero_residuals() {
        let perfect = dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]);
        let fit = PowerLawFit::from_distribution(&perfect).unwrap();
        assert!((fit.alpha - 1.0).abs() < 1e-12);
        assert!((fit.constant - 15.0).abs() < 1e-12);
        assert!(fit.mean_log_residual < 1e-12);
        assert!(fit.residual_vs_ideal < 1e-12);
        assert!((fit.curve().predict(3.0) - 5.0).abs() < 1e-9);

        // A steeper distribution fits its own slope exactly but departs from
        // the ideal 1/d law.
        let steep = dist(&[(1, 10_000), (100, 1)]);
        let fit = PowerLawFit::from_distribution(&steep).unwrap();
        assert!((fit.alpha - 2.0).abs() < 1e-12);
        assert!(fit.mean_log_residual < 1e-12);
        assert!(fit.residual_vs_ideal > 0.5);

        // Distributions whose extremes pin no slope have no fit.
        assert!(PowerLawFit::from_distribution(&dist(&[(2, 5)])).is_none());
    }

    #[test]
    fn uniqueness_check() {
        // The paper's Figure 3/4 star set is product-unique.
        assert!(star_products_unique(&[3, 4, 5, 9, 16, 25, 81, 256]));
        // 2 · 3 = 6 collides with the single star 6.
        assert!(!star_products_unique(&[2, 3, 6]));
        // 3 · 3 collides with 9 when the same point count repeats alongside
        // its square.
        assert!(!star_products_unique(&[3, 3, 9]));
        // Repeated values alone are fine only if no subset products collide;
        // {2, 2} gives products {1, 2, 2, 4} which do collide.
        assert!(!star_products_unique(&[2, 2]));
        assert!(star_products_unique(&[7]));
        assert!(star_products_unique(&[]));
    }

    #[test]
    fn edge_vertex_ratio_is_exact() {
        // Single star m̂ = 3: 6 edges over 4 vertices = 3/2.
        let r = star_design_edge_vertex_ratio(&[3]);
        assert_eq!(r, BigRatio::new(3i64.into(), BigUint::from(2u64)));
        // Paper's B factor: 13,824,000 / 530,400.
        let r = star_design_edge_vertex_ratio(&[3, 4, 5, 9, 16, 25]);
        assert!((r.to_f64() - 13_824_000.0 / 530_400.0).abs() < 1e-9);
    }
}
