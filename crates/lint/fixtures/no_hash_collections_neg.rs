//@ path: crates/core/src/under_test.rs
use std::collections::BTreeMap;

pub fn histogram(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}
