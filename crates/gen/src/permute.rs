//! O(1)-memory vertex relabelling: a seeded Feistel bijection on `[0, V)`.
//!
//! Graph500 — and the paper's released datasets — randomly permute vertex
//! labels before publication so that the heavy vertices are not trivially
//! identifiable by their index.  A permutation *table* needs `O(V)` memory,
//! which is unusable at the paper's 10¹⁰-vertex designs; the
//! [`FeistelPermutation`] here is a keyed bijection evaluated per vertex in
//! constant memory instead: a balanced Feistel network over the smallest
//! even number of bits covering `V`, with cycle-walking to restrict the
//! domain to exactly `[0, V)` when `V` is not a power of four.
//!
//! Because the network is a permutation of its power-of-two domain for *any*
//! round function, and cycle-walking restricted to a subset of a
//! permutation's domain is again a permutation of that subset, the map is an
//! exact bijection on `[0, V)` — every degree-, loop-, and multiplicity-
//! preserving guarantee of table-based relabelling carries over, with no
//! table.  The same seed always produces the same permutation, so a run is
//! reproducible from the seed recorded in its
//! [`RunManifest`](crate::manifest::RunManifest).
//!
//! The permutation sits on the generation hot path (every endpoint of every
//! edge passes through it), so the network is engineered for throughput:
//! three rounds — the Luby–Rackoff minimum for a pseudorandom permutation —
//! of a single multiply-and-take-high-bits round function, and the
//! [`FeistelPermutation::apply_edges_into`] entry point relabels whole
//! chunks at a time with the cycle-walk reorganised into branch-free
//! compaction passes (an unpredictable 50/50 walk branch per endpoint would
//! otherwise cost more than the arithmetic).  **Compatibility note:** this
//! faster network replaces the earlier four-round SplitMix64 one, so seeds
//! recorded by manifests written before the streaming-metrics engine
//! reproduce a *different* (equally valid) relabelling under this version;
//! the graph's degree structure is identical either way, since both are
//! exact bijections.

/// Number of Feistel rounds.  Three rounds are the Luby–Rackoff minimum for
/// a pseudorandom permutation given a pseudorandom round function; the
/// relabelling needs statistical scrambling (no fixed structure, no
/// preserved locality), not adversarial indistinguishability, and each extra
/// round is pure hot-path cost.
const ROUNDS: usize = 3;

/// The SplitMix64 finalizer: a cheap invertible mixer with full avalanche,
/// used to derive the round keys (construction-time only — the per-round
/// function is the single multiply in [`FeistelPermutation::network`]).
fn diffuse(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded bijection on `[0, n)` evaluated in O(1) memory.
///
/// ```
/// use kron_gen::permute::FeistelPermutation;
///
/// let perm = FeistelPermutation::new(1_000, 42);
/// let mut image: Vec<u64> = (0..1_000).map(|v| perm.apply(v)).collect();
/// image.sort_unstable();
/// assert_eq!(image, (0..1_000).collect::<Vec<u64>>()); // exact bijection
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; ROUNDS],
}

impl FeistelPermutation {
    /// Build the permutation of `[0, n)` keyed by `seed`.
    ///
    /// The Feistel domain is `2^b` for the smallest even `b` with
    /// `2^b ≥ n`, so cycle-walking needs fewer than four expected rounds per
    /// vertex and the whole structure is a few machine words regardless of
    /// `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        // Smallest bit width covering n-1, rounded up to an even number of
        // bits so the two Feistel halves are balanced.  n ≤ 1 still gets a
        // 2-bit domain (the walk collapses to the identity on {0}).
        let bits = (64 - n.saturating_sub(1).leading_zeros()).max(2);
        let bits = bits + (bits & 1);
        let half_bits = bits / 2;
        let mut state = seed;
        let mut next_key = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            diffuse(state)
        };
        FeistelPermutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys: std::array::from_fn(|_| next_key()),
        }
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One pass of the Feistel network over the full `2^(2·half_bits)`
    /// domain — a bijection for any round function.  The round function is
    /// one multiply of the keyed right half by an odd constant, taking the
    /// high bits of the product (where a multiply mixes best); the whole
    /// pass is six cheap ALU ops per round and branch-free.
    #[inline(always)]
    fn network(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for &key in &self.keys {
            let feedback =
                ((right ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.half_mask;
            (left, right) = (right, left ^ feedback);
        }
        (left << self.half_bits) | right
    }

    /// The permuted label of vertex `x`.
    ///
    /// Cycle-walks: values the network maps outside `[0, n)` are fed back in
    /// until one lands inside, which restricts the power-of-two bijection to
    /// an exact bijection on `[0, n)`.
    ///
    /// # Panics
    /// Panics if `x ≥ n` (the input is not a vertex of the graph).
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        assert!(
            x < self.n,
            "vertex {x} outside permutation domain {}",
            self.n
        );
        let mut y = self.network(x);
        while y >= self.n {
            y = self.network(y);
        }
        y
    }

    /// Permute both endpoints of an edge.
    #[inline]
    pub fn apply_edge(&self, (row, col): (u64, u64)) -> (u64, u64) {
        (self.apply(row), self.apply(col))
    }

    /// Relabel a whole chunk of edges into `out` — exactly
    /// `edges.iter().map(|&e| perm.apply_edge(e))`, restructured for the hot
    /// path.
    ///
    /// One branch-free pass evaluates the network for every endpoint while
    /// compacting the indices of endpoints the cycle-walk must continue on
    /// into `pending` (branchless: the data-dependent 50/50 "walked outside
    /// `[0, n)`?" test becomes an unconditional store plus a length
    /// increment, never a mispredicted jump).  Follow-up passes re-evaluate
    /// only the pending endpoints until none remain.  Both buffers are
    /// caller-owned and reused across chunks, so the steady state allocates
    /// nothing.
    ///
    /// Callers guarantee every endpoint is `< len()` (debug-checked); the
    /// pipeline's generation invariant.
    ///
    /// # Panics
    /// Panics if `edges` holds more than `u32::MAX / 2` edges — the pending
    /// slots are 32-bit, and a wrapped slot would silently corrupt the
    /// relabelling, so the bound is enforced in release builds too (one
    /// check per chunk).
    pub fn apply_edges_into(
        &self,
        edges: &[(u64, u64)],
        out: &mut Vec<(u64, u64)>,
        pending: &mut Vec<u32>,
    ) {
        assert!(
            edges.len() * 2 <= u32::MAX as usize,
            "chunk of {} edges too large for 32-bit endpoint slots",
            edges.len()
        );
        out.clear();
        out.reserve(edges.len());
        pending.clear();
        pending.resize(edges.len() * 2, 0);
        let mut walking = 0usize;
        for (i, &(row, col)) in edges.iter().enumerate() {
            debug_assert!(row < self.n && col < self.n, "edge outside domain");
            let new_row = self.network(row);
            let new_col = self.network(col);
            out.push((new_row, new_col));
            // Branchless compaction: always store the slot, only keep it
            // (advance the length) when the endpoint landed outside [0, n).
            pending[walking] = (i as u32) * 2;
            walking += (new_row >= self.n) as usize;
            pending[walking] = (i as u32) * 2 + 1;
            walking += (new_col >= self.n) as usize;
        }
        pending.truncate(walking);
        while !pending.is_empty() {
            let mut kept = 0usize;
            for j in 0..pending.len() {
                let slot = pending[j];
                let pair = &mut out[(slot / 2) as usize];
                let endpoint = if slot & 1 == 0 {
                    &mut pair.0
                } else {
                    &mut pair.1
                };
                *endpoint = self.network(*endpoint);
                pending[kept] = slot;
                kept += (*endpoint >= self.n) as usize;
            }
            pending.truncate(kept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn image(n: u64, seed: u64) -> Vec<u64> {
        let perm = FeistelPermutation::new(n, seed);
        (0..n).map(|v| perm.apply(v)).collect()
    }

    #[test]
    fn bijection_across_domain_sizes() {
        // Powers of four, powers of two needing an odd bit count, and
        // awkward in-between sizes that force cycle-walking.
        for n in [1u64, 2, 3, 4, 5, 7, 16, 17, 100, 1023, 1024, 1025, 4096] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let mut out = image(n, seed);
                out.sort_unstable();
                assert_eq!(out, (0..n).collect::<Vec<u64>>(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        assert_eq!(image(500, 7), image(500, 7));
        assert_ne!(image(500, 7), image(500, 8));
    }

    #[test]
    fn actually_scrambles() {
        // A permutation that fixes nearly everything would defeat the
        // purpose; demand that most labels move.
        let out = image(1000, 3);
        let fixed = out
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i as u64 == v)
            .count();
        assert!(fixed < 50, "{fixed} fixed points out of 1000");
    }

    #[test]
    fn does_not_preserve_locality() {
        // Consecutive labels must not stay consecutive — index-adjacency is
        // exactly the structure the relabelling exists to destroy.
        let perm = FeistelPermutation::new(100_000, 7);
        let adjacent = (0..10_000u64)
            .filter(|&x| perm.apply(x + 1).abs_diff(perm.apply(x)) == 1)
            .count();
        assert!(adjacent < 20, "{adjacent} adjacent pairs survived of 10000");
    }

    #[test]
    fn degree_histogram_is_preserved() {
        let edges = [(0u64, 1), (1, 2), (2, 0), (3, 3), (0, 1), (4, 0)];
        let perm = FeistelPermutation::new(5, 99);
        let relabelled: Vec<(u64, u64)> = edges.iter().map(|&e| perm.apply_edge(e)).collect();
        let histogram = |edges: &[(u64, u64)]| {
            let mut rows: BTreeMap<u64, u64> = BTreeMap::new();
            for &(r, _) in edges {
                *rows.entry(r).or_insert(0) += 1;
            }
            let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
            for &d in rows.values() {
                *counts.entry(d).or_insert(0) += 1;
            }
            counts
        };
        assert_eq!(histogram(&edges), histogram(&relabelled));
        let loops = |edges: &[(u64, u64)]| edges.iter().filter(|&&(r, c)| r == c).count();
        assert_eq!(loops(&edges), loops(&relabelled));
    }

    #[test]
    fn batched_relabelling_equals_per_edge_apply() {
        // The batched hot path must compute the *same function* as apply —
        // including every cycle-walk — across sizes that do and don't force
        // walking, chunk sizes, and seeds.
        for n in [1u64, 5, 1024, 1025, 530_400] {
            for seed in [0u64, 9, 0x5EED] {
                let perm = FeistelPermutation::new(n, seed);
                let edges: Vec<(u64, u64)> = (0..2_000u64)
                    .map(|i| (diffuse(i) % n, diffuse(i ^ 0xF00D) % n))
                    .collect();
                let expected: Vec<(u64, u64)> = edges.iter().map(|&e| perm.apply_edge(e)).collect();
                let mut out = Vec::new();
                let mut pending = Vec::new();
                for chunk_len in [1usize, 7, 512, 2_000] {
                    let mut batched = Vec::new();
                    for chunk in edges.chunks(chunk_len) {
                        perm.apply_edges_into(chunk, &mut out, &mut pending);
                        batched.extend_from_slice(&out);
                    }
                    assert_eq!(batched, expected, "n={n} seed={seed} chunk={chunk_len}");
                }
                // Empty chunks are fine and leave the buffers empty.
                perm.apply_edges_into(&[], &mut out, &mut pending);
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn tiny_domains_are_total() {
        let perm = FeistelPermutation::new(1, 12345);
        assert_eq!(perm.apply(0), 0);
        assert_eq!(perm.len(), 1);
        assert!(!perm.is_empty());
        assert!(FeistelPermutation::new(0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside permutation domain")]
    fn out_of_domain_input_panics() {
        FeistelPermutation::new(10, 1).apply(10);
    }

    #[test]
    fn huge_domains_stay_in_range() {
        // Near the top of u64: the network must not overflow and the walk
        // must terminate.
        let n = u64::MAX - 3;
        let perm = FeistelPermutation::new(n, 5);
        for x in [0u64, 1, 12345, n - 1] {
            assert!(perm.apply(x) < n);
        }
    }
}
