//! Random vertex relabelling.
//!
//! Graph500 permutes vertex labels after generation so that the heavy
//! vertices are not trivially identifiable by their index; the paper's exact
//! generator can be combined with the same relabelling when an adversarial
//! layout is wanted.  Relabelling is a bijection, so every exactly-known
//! property (edge count, degree distribution, triangles) is preserved — a
//! fact the tests check.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A uniformly random permutation of `0..n`, deterministic for a given seed.
pub fn random_permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Relabel every endpoint of an edge list through the permutation
/// (`new_label = perm[old_label]`).
///
/// # Panics
/// Panics if an edge references a vertex outside `0..perm.len()`.
pub fn relabel_edges(edges: &[(u64, u64)], perm: &[u64]) -> Vec<(u64, u64)> {
    edges
        .iter()
        .map(|&(u, v)| {
            (
                perm[usize::try_from(u).expect("vertex id fits in usize")],
                perm[usize::try_from(v).expect("vertex id fits in usize")],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_edge_list;

    #[test]
    fn permutation_is_a_bijection() {
        let perm = random_permutation(100, 7);
        assert_eq!(perm.len(), 100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        assert_eq!(random_permutation(50, 1), random_permutation(50, 1));
        assert_ne!(random_permutation(50, 1), random_permutation(50, 2));
    }

    #[test]
    fn relabelling_preserves_structure() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (3, 3), (0, 1)];
        let perm = random_permutation(4, 13);
        let relabelled = relabel_edges(&edges, &perm);
        let before = measure_edge_list(4, &edges);
        let after = measure_edge_list(4, &relabelled);
        assert_eq!(before.raw_edges, after.raw_edges);
        assert_eq!(before.unique_edges, after.unique_edges);
        assert_eq!(before.self_loops, after.self_loops);
        assert_eq!(before.empty_vertices, after.empty_vertices);
        assert_eq!(before.degree_distribution, after.degree_distribution);
    }

    #[test]
    fn identity_permutation_for_tiny_graphs() {
        assert_eq!(random_permutation(0, 9), Vec::<u64>::new());
        assert_eq!(random_permutation(1, 9), vec![0]);
    }
}
