//! Compressed sparse column (CSC) matrices.
//!
//! The paper's parallel generation algorithm (§V) is described in terms of
//! CSC storage: each processor takes a contiguous slice of the non-zero
//! triples of `B`, subtracts the minimum column index of its slice, and forms
//! a local matrix `Bp`.  CSC makes that column-oriented slicing natural.

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::semiring::{Scalar, Semiring};

/// A sparse matrix in compressed sparse column format.
///
/// Invariants mirror [`crate::CsrMatrix`] with rows and columns swapped:
/// `col_ptr.len() == ncols + 1`, row indices strictly increasing within each
/// column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from a COO matrix, combining duplicates with the semiring ⊕.
    pub fn from_coo<S: Semiring<T>>(coo: &CooMatrix<T>) -> Result<Self, SparseError> {
        let nrows = usize::try_from(coo.nrows()).map_err(|_| SparseError::TooLarge {
            what: "CSC rows",
            requested: coo.nrows() as u128,
        })?;
        let ncols = usize::try_from(coo.ncols()).map_err(|_| SparseError::TooLarge {
            what: "CSC cols",
            requested: coo.ncols() as u128,
        })?;
        let mut canonical = coo.clone();
        canonical.sum_duplicates::<S>();

        let mut col_ptr = vec![0usize; ncols + 1];
        for &c in canonical.col_indices() {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..ncols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let nnz = canonical.nnz();
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![S::zero(); nnz];
        let mut cursor = col_ptr.clone();
        // canonical is row-major sorted, so filling column buckets in that
        // order keeps row indices increasing within each column.
        for (r, c, v) in canonical.iter() {
            let slot = cursor[c as usize];
            row_idx[slot] = r as usize;
            vals[slot] = v;
            cursor[c as usize] += 1;
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            vals,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The column pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The value array.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// The row indices and values of column `c`.
    pub fn col(&self, c: usize) -> (&[usize], &[T]) {
        let start = self.col_ptr[c];
        let end = self.col_ptr[c + 1];
        (&self.row_idx[start..end], &self.vals[start..end])
    }

    /// Number of stored entries in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Value at `(r, c)` or the semiring zero if absent.
    pub fn get<S: Semiring<T>>(&self, r: usize, c: usize) -> T {
        let (rows, vals) = self.col(c);
        match rows.binary_search(&r) {
            Ok(pos) => vals[pos],
            Err(_) => S::zero(),
        }
    }

    /// Iterate over stored entries in column-major order as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals.iter()).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Convert back to COO format.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut out = CooMatrix::with_capacity(self.nrows as u64, self.ncols as u64, self.nnz());
        for (r, c, v) in self.iter() {
            out.push(r as u64, c as u64, v)
                // lint:allow(no-expect) -- indices were validated against the matrix dimensions at construction
                .expect("indices in bounds by invariant");
        }
        out
    }

    /// Extract the submatrix of columns `[col_start, col_end)` as a new CSC
    /// matrix whose column indices are shifted to start at zero.
    ///
    /// This is exactly the "subtract the minimum column index" step of the
    /// paper's per-processor split.
    pub fn column_slice(&self, col_start: usize, col_end: usize) -> CscMatrix<T> {
        assert!(
            col_start <= col_end && col_end <= self.ncols,
            "column slice out of range"
        );
        let width = col_end - col_start;
        let base = self.col_ptr[col_start];
        let mut col_ptr = Vec::with_capacity(width + 1);
        for c in col_start..=col_end {
            col_ptr.push(self.col_ptr[c] - base);
        }
        let row_idx = self.row_idx[self.col_ptr[col_start]..self.col_ptr[col_end]].to_vec();
        let vals = self.vals[self.col_ptr[col_start]..self.col_ptr[col_end]].to_vec();
        CscMatrix {
            nrows: self.nrows,
            ncols: width,
            col_ptr,
            row_idx,
            vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn sample() -> CscMatrix<u64> {
        let coo = CooMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1u64), (2, 0, 2), (1, 1, 3), (0, 3, 4), (2, 3, 5)],
        )
        .unwrap();
        CscMatrix::from_coo::<PlusTimes>(&coo).unwrap()
    }

    #[test]
    fn construction_and_column_access() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 0);
        assert_eq!(m.col(0).0, &[0, 2]);
        assert_eq!(m.get::<PlusTimes>(2, 3), 5);
        assert_eq!(m.get::<PlusTimes>(1, 3), 0);
    }

    #[test]
    fn round_trip_through_coo() {
        let m = sample();
        let back = CscMatrix::from_coo::<PlusTimes>(&m.to_coo()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn column_slice_shifts_indices() {
        let m = sample();
        let slice = m.column_slice(3, 4);
        assert_eq!(slice.ncols(), 1);
        assert_eq!(slice.nrows(), 3);
        assert_eq!(slice.nnz(), 2);
        assert_eq!(slice.get::<PlusTimes>(0, 0), 4);
        assert_eq!(slice.get::<PlusTimes>(2, 0), 5);

        let empty = m.column_slice(2, 2);
        assert_eq!(empty.ncols(), 0);
        assert_eq!(empty.nnz(), 0);

        let full = m.column_slice(0, 4);
        assert_eq!(full.nnz(), m.nnz());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_slice_out_of_range_panics() {
        let _ = sample().column_slice(2, 9);
    }

    #[test]
    fn iter_is_column_major() {
        let m = sample();
        let cols: Vec<usize> = m.iter().map(|(_, c, _)| c).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
    }

    #[test]
    fn zeros_matrix() {
        let m = CscMatrix::<u64>::zeros(2, 3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col(1).0.len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn arb_coo() -> impl Strategy<Value = CooMatrix<u64>> {
        (1u64..12, 1u64..12).prop_flat_map(|(nr, nc)| {
            proptest::collection::vec((0..nr, 0..nc, 1u64..5), 0..40)
                .prop_map(move |es| CooMatrix::from_entries(nr, nc, es).unwrap())
        })
    }

    proptest! {
        #[test]
        fn csc_matches_coo_lookups(coo in arb_coo()) {
            let csc = CscMatrix::from_coo::<PlusTimes>(&coo).unwrap();
            for r in 0..coo.nrows() {
                for c in 0..coo.ncols() {
                    prop_assert_eq!(
                        csc.get::<PlusTimes>(r as usize, c as usize),
                        coo.get::<PlusTimes>(r, c)
                    );
                }
            }
        }

        #[test]
        fn column_slices_partition_nnz(coo in arb_coo()) {
            let csc = CscMatrix::from_coo::<PlusTimes>(&coo).unwrap();
            let mid = csc.ncols() / 2;
            let left = csc.column_slice(0, mid);
            let right = csc.column_slice(mid, csc.ncols());
            prop_assert_eq!(left.nnz() + right.nnz(), csc.nnz());
        }
    }
}
