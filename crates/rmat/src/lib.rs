//! # kron-rmat
//!
//! A from-scratch R-MAT / stochastic Kronecker baseline generator.
//!
//! The paper positions its exact Kronecker designs against the standard
//! Graph500-style workflow: pick R-MAT parameters, *sample* a random graph,
//! measure what came out, and iterate until the measured properties are close
//! enough to the target.  This crate implements that baseline so the
//! comparison experiments can be reproduced:
//!
//! * [`RmatGenerator`] — recursive quadrant sampling with the Graph500
//!   parameters as defaults, optional noise, deterministic seeding, and an
//!   *indexed* sampler ([`RmatGenerator::edge_at`]) whose output is
//!   identical for every work split.
//! * [`RmatSource`] — the generator as a first-class
//!   [`kron_gen::EdgeSource`], so R-MAT streams through the same
//!   `Pipeline` terminals, histogram validation, and run manifests as the
//!   exact designs, with bounded memory.  The predictable fields (vertex
//!   and sample counts) are validated; everything else is measured-only —
//!   the paper's point, made executable.
//! * [`measure`] — degree-distribution and structural measurements of the
//!   sampled edge lists (duplicate edges, self-loops, empty vertices — the
//!   artefacts the paper's generator avoids by construction).
//! * [`design_loop`] — the trial-and-error design loop: repeatedly generate
//!   and measure until the edge-count / max-degree targets are met, counting
//!   how much work that takes compared with the exact designer.
//! * [`permute`] — legacy table-based vertex relabelling, deprecated in
//!   favour of the O(1)-memory [`kron_gen::FeistelPermutation`] (see
//!   `Pipeline::permute_vertices`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design_loop;
pub mod measure;
pub mod permute;
pub mod rmat;
pub mod source;
pub mod stochastic;

pub use design_loop::{DesignLoopReport, TrialAndErrorDesigner, TrialTargets};
pub use measure::{measure_edge_list, EdgeListStats};
#[allow(deprecated)] // the legacy table API must keep compiling at its old address
pub use permute::{random_permutation, relabel_edges};
pub use rmat::{RmatBatchSampler, RmatGenerator, RmatParams, SAMPLE_BATCH};
pub use source::{RmatRun, RmatSource};
pub use stochastic::{Initiator, StochasticKronecker};
