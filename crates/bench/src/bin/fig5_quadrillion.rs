//! Figure 5: predicted degree distribution of a quadrillion-edge (10^15)
//! power-law Kronecker graph with zero triangles.
//!
//! Exact counts: 6,997,208,649,600 vertices, 1,433,272,320,000,000 edges,
//! 0 triangles, and a degree distribution lying exactly on n(d) = c/d.

use kron_bench::{design, figure_header, paper, print_distribution_series};
use kron_bignum::grouped;
use kron_core::{PowerLaw, SelfLoop};

fn main() {
    figure_header(
        "Figure 5",
        "quadrillion-edge power-law design (no self-loops)",
    );

    let d = design(paper::FIG5_6, SelfLoop::None);
    println!("star points m̂ = {:?}", paper::FIG5_6);
    println!("vertices:  {}", grouped(&d.vertices().to_string()));
    println!("edges:     {}", grouped(&d.edges().to_string()));
    println!("triangles: {}", d.triangles().unwrap());

    let dist = d.degree_distribution();
    let constant = dist
        .perfect_power_law_constant()
        .expect("perfect power law");
    println!(
        "\nevery support point lies exactly on n(d) = {} / d  (α = 1)",
        grouped(&constant.to_string())
    );
    let law = PowerLaw::perfect(constant);
    println!(
        "mean |log10 residual| against the ideal line: {:.3e}",
        law.mean_log_residual(&dist)
    );

    println!("\npredicted degree distribution series:");
    print_distribution_series(&dist, 32);

    assert_eq!(d.vertices().to_string(), "6997208649600");
    assert_eq!(d.edges().to_string(), "1433272320000000");
    println!("\nFigure 5 reproduced: exact counts match the paper.");
}
