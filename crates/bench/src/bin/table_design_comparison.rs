//! §I motivation, quantified: designing a graph with target properties via
//! the exact Kronecker search versus the trial-and-error loop around a
//! random generator (R-MAT).

use std::time::Instant;

use kron_bench::figure_header;
use kron_bignum::BigUint;
use kron_core::{DesignSearch, DesignTargets, SelfLoop};
use kron_rmat::{TrialAndErrorDesigner, TrialTargets};

fn main() {
    figure_header(
        "Design comparison",
        "exact Kronecker design search vs R-MAT trial-and-error (§I motivation)",
    );

    let targets: [u64; 3] = [50_000, 250_000, 1_000_000];
    println!(
        "{:>12} | {:>12} {:>12} {:>10} | {:>6} {:>16} {:>10}",
        "target edges",
        "kron edges",
        "kron time",
        "generated",
        "iters",
        "rmat edges made",
        "rmat time"
    );

    for &target in &targets {
        // Exact search: evaluates candidates analytically, generates nothing.
        let started = Instant::now();
        let search = DesignSearch::default();
        let mut design_targets = DesignTargets::edges(BigUint::from(target));
        design_targets.max_constituents = 5;
        let best = search
            .search(&design_targets, 1)
            .expect("search succeeds")
            .remove(0);
        let kron_time = started.elapsed();
        let design = best
            .clone()
            .into_design(SelfLoop::None)
            .expect("valid design");

        // Trial and error: every iteration generates and measures a graph.
        let started = Instant::now();
        let report = TrialAndErrorDesigner::new(1).run(&TrialTargets {
            unique_edges: target,
            edge_tolerance: 0.05,
            max_iterations: 10,
        });
        let rmat_time = started.elapsed();

        println!(
            "{:>12} | {:>12} {:>12} {:>10} | {:>6} {:>16} {:>10}",
            target,
            design.edges().to_string(),
            format!("{kron_time:.2?}"),
            0,
            report.iteration_count(),
            report.total_edges_generated,
            format!("{rmat_time:.2?}"),
        );
    }

    println!("\ncolumns: 'generated' is the number of edges each method had to build to know the");
    println!("properties of its design — zero for the exact method, millions for trial-and-error.");
}
