//! A lightweight item parser on top of the lexer: just enough structure
//! for whole-workspace semantic analysis.
//!
//! The container has no registry access, so there is no `syn` and no
//! `rustc` front end to lean on.  This module recovers the three facts
//! the semantic rules need from the token stream:
//!
//! * **Functions** — every `fn` item with its name, line, visibility,
//!   body token span, and (when defined inside an `impl` block) the
//!   self type it is a method of.
//! * **Impl contexts** — `impl Foo`, `impl<T> Foo<T>`, and
//!   `impl Trait for Foo` headers, resolved to the bare type name.
//! * **Imports** — `use` declarations flattened to full segment paths,
//!   so the call graph can resolve a bare call to the crate it was
//!   imported from.
//!
//! It is deliberately *not* a Rust parser: expressions, types, and
//! generics are skipped structurally (balanced `<>`/`()`/`{}`), and
//! anything unrecognised degrades to "no item recorded", never an
//! error.  The call graph built on top ([`crate::graph`]) treats the
//! result as an over-approximation.

use crate::lexer::{Lexed, TokKind, Token};

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// The self type when the function is defined inside an `impl`
    /// block (`impl Pipeline { fn count.. }` → `Some("Pipeline")`).
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether any `pub` visibility (including `pub(crate)`) applies.
    pub is_pub: bool,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// Token-index span of the body: `start` is the opening `{`, `end`
    /// the index just past the matching `}`.  A bodiless trait method
    /// gets an empty span.
    pub body: (usize, usize),
}

/// The parsed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The crate the file belongs to (`crates/<name>/src/..` → `name`,
    /// the facade `src/..` → `facade`).
    pub krate: String,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` path, flattened: one `Vec<segment>` per imported
    /// leaf (`use a::b::{c, d}` yields `[a,b,c]` and `[a,b,d]`).
    pub imports: Vec<Vec<String>>,
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, rest @ ..] if !rest.is_empty() => (*name).to_string(),
        ["src", ..] => "facade".to_string(),
        _ => "root".to_string(),
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Index just past the `}` matching the `{` at `open` (or `tokens.len()`
/// if unbalanced).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if punct_at(tokens, i, '{') {
            depth += 1;
        } else if punct_at(tokens, i, '}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Skip a balanced `<...>` group starting at `open`; `->` arrows inside
/// (closure/fn-pointer bounds like `Fn(A) -> B`) do not close the group.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if punct_at(tokens, i, '<') {
            depth += 1;
        } else if punct_at(tokens, i, '>') {
            // `-` `>` is an arrow, not a closing angle.
            if i > 0 && punct_at(tokens, i - 1, '-') {
                i += 1;
                continue;
            }
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Parse an `impl` header starting at the `impl` keyword.  Returns the
/// self type's bare name and the index of the body's `{` — or `None`
/// when the header is something this parser does not model (impls for
/// tuples, slices, …), in which case the caller skips the block without
/// an impl context.
fn parse_impl_header(tokens: &[Token], impl_kw: usize) -> Option<(String, usize)> {
    let mut i = impl_kw + 1;
    if punct_at(tokens, i, '<') {
        i = skip_angles(tokens, i);
    }
    let mut ty = read_type_path(tokens, &mut i)?;
    if ident_at(tokens, i) == Some("for") {
        i += 1;
        ty = read_type_path(tokens, &mut i)?;
    }
    // Skip a `where` clause: everything up to the body `{` (where
    // clauses carry no braces).
    while i < tokens.len() && !punct_at(tokens, i, '{') {
        i += 1;
    }
    if i < tokens.len() {
        Some((ty, i))
    } else {
        None
    }
}

/// Read a type path (`&mut a::b::Foo<T>`), advancing `i` past it, and
/// return the bare name of its last segment.
fn read_type_path(tokens: &[Token], i: &mut usize) -> Option<String> {
    // Leading reference/pointer sigils and `dyn`/`mut`.
    while punct_at(tokens, *i, '&')
        || punct_at(tokens, *i, '\'')
        || matches!(ident_at(tokens, *i), Some("dyn" | "mut"))
    {
        *i += 1;
    }
    let mut last: Option<String> = None;
    loop {
        let Some(name) = ident_at(tokens, *i) else {
            return last;
        };
        if matches!(name, "for" | "where") {
            return last;
        }
        last = Some(name.to_string());
        *i += 1;
        if punct_at(tokens, *i, '<') {
            *i = skip_angles(tokens, *i);
        }
        if punct_at(tokens, *i, ':') && punct_at(tokens, *i + 1, ':') {
            *i += 2;
        } else {
            return last;
        }
    }
}

/// Whether the `fn` keyword at `fn_kw` carries a `pub` qualifier
/// (possibly with `const`/`async`/`unsafe`/`extern "C"` in between, and
/// possibly restricted, `pub(crate)`).
fn has_pub(tokens: &[Token], fn_kw: usize) -> bool {
    let mut j = fn_kw;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokKind::Ident(name)
                if matches!(name.as_str(), "const" | "async" | "unsafe" | "extern") => {}
            TokKind::Str(_) => {} // the "C" of `extern "C"`
            TokKind::Punct(')') => {
                // Walk back over a `(crate)`/`(in ..)` restriction.
                let mut depth = 0usize;
                loop {
                    match tokens.get(j).map(|t| &t.kind) {
                        Some(TokKind::Punct(')')) => depth += 1,
                        Some(TokKind::Punct('(')) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
            }
            TokKind::Ident(name) => return name == "pub",
            _ => return false,
        }
    }
    false
}

/// Parse one lexed file into its item view.  `mask` is the test mask
/// from [`crate::lexer::test_mask`].
pub fn parse_file(rel: &str, lexed: &Lexed, mask: &[bool]) -> ParsedFile {
    let t = &lexed.tokens;
    let mut out = ParsedFile {
        rel: rel.to_string(),
        krate: crate_of(rel),
        ..ParsedFile::default()
    };
    // Innermost-first stack of (impl close index, type name).
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        impls.retain(|(close, _)| i < *close);
        match ident_at(t, i) {
            Some("impl") => {
                if let Some((ty, open)) = parse_impl_header(t, i) {
                    let close = matching_brace(t, open);
                    impls.push((close, ty));
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
            Some("use") => {
                let end = parse_use(t, i + 1, &mut out.imports);
                i = end;
            }
            Some("fn") if ident_at(t, i + 1).is_some() => {
                let name = ident_at(t, i + 1).unwrap_or_default().to_string();
                // The body opens at the first `{` after the signature; a
                // trait declaration ends at `;` first and has no body.
                let mut k = i + 2;
                if punct_at(t, k, '<') {
                    k = skip_angles(t, k);
                }
                while k < t.len() && !punct_at(t, k, '{') && !punct_at(t, k, ';') {
                    k += 1;
                }
                let body = if punct_at(t, k, '{') {
                    (k, matching_brace(t, k))
                } else {
                    (k, k)
                };
                out.fns.push(FnItem {
                    name,
                    self_type: impls.last().map(|(_, ty)| ty.clone()),
                    line: t[i].line,
                    is_pub: has_pub(t, i),
                    is_test: mask.get(i).copied().unwrap_or(false),
                    body,
                });
                // Continue *inside* the body so nested items are found.
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse a `use` declaration's path tree starting just after the `use`
/// keyword; appends one flattened segment path per leaf and returns the
/// index just past the terminating `;`.
fn parse_use(t: &[Token], start: usize, out: &mut Vec<Vec<String>>) -> usize {
    let mut i = start;
    let mut prefix: Vec<String> = Vec::new();
    collect_use_tree(t, &mut i, &mut prefix, out, 0);
    while i < t.len() && !punct_at(t, i, ';') {
        i += 1;
    }
    i + 1
}

fn collect_use_tree(
    t: &[Token],
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<Vec<String>>,
    depth: usize,
) {
    // A malformed tree cannot recurse forever.
    if depth > 16 {
        return;
    }
    let popped = prefix.len();
    loop {
        match t.get(*i).map(|tok| &tok.kind) {
            Some(TokKind::Ident(name)) if name == "as" => {
                // `x as y`: the alias is the visible leaf.
                *i += 1;
                if let Some(alias) = ident_at(t, *i) {
                    prefix.pop();
                    prefix.push(alias.to_string());
                    *i += 1;
                }
            }
            Some(TokKind::Ident(name)) => {
                prefix.push(name.clone());
                *i += 1;
            }
            Some(TokKind::Punct(':')) if punct_at(t, *i + 1, ':') => {
                *i += 2;
            }
            Some(TokKind::Punct('{')) => {
                *i += 1;
                loop {
                    collect_use_tree(t, i, prefix, out, depth + 1);
                    if punct_at(t, *i, ',') {
                        *i += 1;
                        continue;
                    }
                    break;
                }
                if punct_at(t, *i, '}') {
                    *i += 1;
                }
                // The group was the leaf position; nothing more follows.
                prefix.truncate(popped);
                return;
            }
            Some(TokKind::Punct('*')) => {
                // Glob import: record the prefix itself as a leaf.
                *i += 1;
                out.push(prefix.clone());
                prefix.truncate(popped);
                return;
            }
            _ => {
                if prefix.len() > popped {
                    out.push(prefix.clone());
                }
                prefix.truncate(popped);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        parse_file("crates/gen/src/demo.rs", &lexed, &mask)
    }

    #[test]
    fn free_and_method_fns_are_distinguished() {
        let p = parse(
            "pub fn free() {}\n\
             pub struct Pipeline;\n\
             impl Pipeline {\n\
                 pub fn count(self) -> u64 { helper() }\n\
                 fn private(self) {}\n\
             }\n\
             fn helper() -> u64 { 0 }\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, true),
                ("count", Some("Pipeline"), true),
                ("private", Some("Pipeline"), false),
                ("helper", None, false),
            ]
        );
    }

    #[test]
    fn generic_impls_and_trait_impls_resolve_the_self_type() {
        let p = parse(
            "impl<S: EdgeSource> Pipeline<S> { fn a(&self) {} }\n\
             impl<K, F: Fn(usize) -> K> Default for Maker<K, F> { fn default() -> Self { todo() } }\n\
             impl Trait for &mut Wrapped<u64> { fn b(&self) {} }\n",
        );
        let types: Vec<Option<&str>> = p.fns.iter().map(|f| f.self_type.as_deref()).collect();
        assert_eq!(
            types,
            vec![Some("Pipeline"), Some("Maker"), Some("Wrapped")]
        );
    }

    #[test]
    fn nested_fns_and_shift_generics_do_not_derail_scanning() {
        let p = parse(
            "pub fn outer() {\n\
                 fn inner() {}\n\
                 inner();\n\
             }\n\
             impl Holder<Box<Vec<u64>>> { fn tail(&self) {} }\n",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "tail"]);
        assert_eq!(p.fns[2].self_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn pub_crate_and_qualifier_chains_count_as_pub() {
        let p = parse(
            "pub(crate) fn a() {}\n\
             pub const unsafe fn b() {}\n\
             const fn c() {}\n",
        );
        let vis: Vec<bool> = p.fns.iter().map(|f| f.is_pub).collect();
        assert_eq!(vis, vec![true, true, false]);
    }

    #[test]
    fn test_regions_are_marked() {
        let p = parse(
            "pub fn shipped() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn use_trees_flatten_to_full_paths() {
        let p = parse(
            "use kron_sparse::addressable;\n\
             use kron_core::{CoreError, validate::{compare_measured, FieldCheck}};\n\
             use crate::writer::le_u64 as read_u64;\n\
             use std::collections::*;\n",
        );
        assert_eq!(
            p.imports,
            vec![
                vec!["kron_sparse".to_string(), "addressable".to_string()],
                vec!["kron_core".to_string(), "CoreError".to_string()],
                vec![
                    "kron_core".to_string(),
                    "validate".to_string(),
                    "compare_measured".to_string()
                ],
                vec![
                    "kron_core".to_string(),
                    "validate".to_string(),
                    "FieldCheck".to_string()
                ],
                vec![
                    "crate".to_string(),
                    "writer".to_string(),
                    "read_u64".to_string()
                ],
                vec!["std".to_string(), "collections".to_string()],
            ]
        );
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/sparse/src/reduce.rs"), "sparse");
        assert_eq!(crate_of("src/lib.rs"), "facade");
        assert_eq!(crate_of("build.rs"), "root");
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let src = "fn a() { b(); }\nfn c();\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let p = parse_file("crates/gen/src/demo.rs", &lexed, &mask);
        let (s, e) = p.fns[0].body;
        assert!(lexed.tokens[s].is_punct('{'));
        assert!(lexed.tokens[e - 1].is_punct('}'));
        let (s2, e2) = p.fns[1].body;
        assert_eq!(s2, e2, "trait declaration has an empty body span");
    }
}
