//! Vendored subset of the `rand` API.
//!
//! Provides the surface the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, and `SliceRandom::shuffle` — over a xoshiro256++ generator
//! seeded through SplitMix64 (the reference seeding scheme).  Deterministic
//! for a given seed, which is all the R-MAT baseline requires; it makes no
//! cryptographic claims.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable from the "standard" distribution of an RNG.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    fn gen_below(&mut self, bound: u64) -> u64
    where
        Self: Sized,
    {
        assert!(bound > 0, "gen_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = x as u128 * bound as u128;
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
