//! Quickstart: design a power-law graph, predict its exact properties,
//! run the design → generate → validate pipeline, and inspect the run
//! manifest.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use extreme_graphs::core::validate::measure_properties;
use extreme_graphs::{KroneckerDesign, Pipeline, SelfLoop};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Design: Kronecker product of stars with m̂ = {3, 4, 5, 9} points and
    //    a self-loop on every centre vertex (the paper's "many triangles"
    //    construction).  Every property below is computed without building
    //    the graph.
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)?;

    println!("=== designed properties (computed before generation) ===");
    println!("{}", design.properties());
    println!();

    // 2. Generate + validate, one builder: split into B ⊗ C, give each of 4
    //    workers an equal slice of B's triples, stream every worker's
    //    expansion into an in-memory block — no inter-worker communication —
    //    while a streaming degree histogram measures the result.
    let report = Pipeline::for_design(&design).workers(4).collect_coo()?;
    println!("=== generation ===");
    println!(
        "workers: {}   edges: {}   rate: {:.1} Medges/s   balance (max/mean): {:.4}",
        report.stats.workers,
        report.stats.total_edges,
        report.stats.edges_per_second() / 1e6,
        report.stats.balance_ratio(),
    );
    println!("edges per worker: {:?}", report.stats.edges_per_worker);
    println!();

    // 3. The run already validated itself: the streamed degree histogram is
    //    compared with the prediction field by field (the paper's Figure 4).
    println!("=== validation (predicted vs measured, streamed) ===");
    println!("{}", report.validation);
    assert!(
        report.validation.is_exact_match(),
        "generated graph must match the design exactly"
    );

    // 4. The same exactness holds for the assembled matrix — including the
    //    triangle count, which a stream cannot measure.
    let assembled = report.assemble();
    let assembled_props = measure_properties(&assembled)?;
    assert!(design.properties().exactly_matches(&assembled_props));

    // 5. Every run carries a serialisable manifest: the design spec, the
    //    full configuration, and the per-worker results.  File-writing
    //    terminals (`.write_tsv(dir)` / `.write_binary(dir)`) drop this as
    //    `manifest.json` next to the shards.
    println!("=== run manifest ===");
    println!("{}", report.manifest.to_json());

    println!("quickstart: all predictions verified exactly ✓");

    Ok(())
}
