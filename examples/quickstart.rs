//! Quickstart: design a power-law graph, predict its exact properties,
//! generate it in parallel, and validate that prediction and measurement
//! agree exactly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use extreme_graphs::core::validate::{compare_properties, measure_properties};
use extreme_graphs::gen::measure::measured_properties;
use extreme_graphs::{GeneratorConfig, KroneckerDesign, ParallelGenerator, SelfLoop};

fn main() {
    // 1. Design: Kronecker product of stars with m̂ = {3, 4, 5, 9} points and
    //    a self-loop on every centre vertex (the paper's "many triangles"
    //    construction).  Every property below is computed without building
    //    the graph.
    let design = KroneckerDesign::from_star_points(&[3, 4, 5, 9], SelfLoop::Centre)
        .expect("valid star parameters");

    println!("=== designed properties (computed before generation) ===");
    println!("{}", design.properties());
    println!();

    // 2. Generate: split into B ⊗ C, give each of 4 workers an equal slice of
    //    B's triples, and let every worker build its block independently —
    //    no inter-worker communication.
    let generator = ParallelGenerator::new(GeneratorConfig {
        workers: 4,
        max_c_edges: 10_000,
        max_total_edges: 10_000_000,
    });
    let graph = generator.generate(&design).expect("design fits in memory");
    println!("=== generation ===");
    println!(
        "workers: {}   edges: {}   rate: {:.1} Medges/s   balance (max/mean): {:.4}",
        graph.stats.workers,
        graph.stats.total_edges,
        graph.stats.edges_per_second() / 1e6,
        graph.stats.balance_ratio(),
    );
    println!("edges per worker: {:?}", graph.stats.edges_per_worker);
    println!();

    // 3. Validate: measure the distributed blocks and compare field by field.
    let measured = measured_properties(&graph, 10_000_000).expect("measurement succeeds");
    let report = compare_properties(&design.properties(), &measured);
    println!("=== validation (predicted vs measured) ===");
    println!("{report}");
    assert!(
        report.is_exact_match(),
        "generated graph must match the design exactly"
    );

    // 4. The same exactness holds for the assembled matrix.
    let assembled = graph.assemble();
    let assembled_props = measure_properties(&assembled).expect("assembled measurement");
    assert!(design.properties().exactly_matches(&assembled_props));
    println!("\nquickstart: all predictions verified exactly ✓");
}
