//! # kron-gen
//!
//! Communication-free parallel generation of Kronecker power-law graphs —
//! the implementation of §V of Kepner et al. (2018).
//!
//! The algorithm:
//!
//! 1. Split the design `A = ⊗_k A_k` into two factors `A = B ⊗ C` such that
//!    both factors fit comfortably in one worker's memory
//!    ([`split::choose_split`]).
//! 2. Extract the non-zero triples of `B` in column-major (CSC) order and
//!    hand each of the `N_p` workers a contiguous, equal-size slice
//!    ([`partition::Partition`]).
//! 3. Each worker independently forms its block `A_p = B_p ⊗ C`
//!    ([`block::GraphBlock`]) — no inter-worker communication is needed, and
//!    every worker produces the same number of edges.
//! 4. The blocks together are exactly the designed graph; the single
//!    self-loop of the triangle-control construction is removed from
//!    whichever block contains it ([`generator::ParallelGenerator`]).
//! 5. Properties (degree distribution, edge counts, balance) are measured
//!    across blocks without ever assembling the full graph
//!    ([`measure`]), reproducing the paper's "measured = predicted"
//!    validation at whatever scale fits the machine.
//! 6. For graphs whose *edges* do not fit in memory at all, the
//!    out-of-core [`driver`] streams each worker's expansion straight into
//!    a pluggable [`driver::EdgeSink`] (TSV shard, binary shard, counter)
//!    while accumulating the degree histogram in `O(vertices)` memory, so
//!    generation *and* validation both run as bounded-memory streams.
//!
//! On a shared-memory machine the "processors" are rayon tasks; the
//! per-worker work and the communication structure (none) are identical to
//! the paper's distributed setting, so the scaling *shape* — linear in the
//! number of workers until memory bandwidth saturates — carries over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chunk;
pub mod driver;
pub mod generator;
pub mod measure;
pub mod partition;
pub mod scaling;
pub mod split;
pub mod stats;
pub mod stream;
pub mod writer;

pub use block::GraphBlock;
pub use chunk::EdgeChunk;
pub use driver::{
    BinaryShardSink, CooSink, CountingSink, DriverConfig, EdgeSink, ShardDriver, ShardRun,
    TsvShardSink,
};
pub use generator::{DistributedGraph, GeneratorConfig, ParallelGenerator};
pub use measure::{measured_degree_distribution, measured_properties, BalanceReport};
pub use partition::Partition;
pub use scaling::{ScalingModel, ScalingPoint};
pub use split::{choose_split, SplitPlan};
pub use stats::GenerationStats;
pub use stream::{
    count_block_edges, count_edges_streaming, stream_block_edges, stream_block_edges_chunked,
    stream_block_edges_into, try_stream_block_edges_into,
};
pub use writer::{
    read_block_bin, stream_block_tsv, stream_blocks_tsv, write_block_bin, write_blocks_bin,
    write_blocks_tsv, BlockFileSet, BlockFormat,
};
