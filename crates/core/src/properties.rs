//! Exact graph property summaries.
//!
//! [`GraphProperties`] is the designer's "data sheet" for a graph: every
//! quantity the paper predicts before generation, in exact integer form, plus
//! the derived power-law diagnostics.  It is produced analytically by
//! [`crate::design::KroneckerDesign::properties`] and empirically by
//! [`crate::validate::measure_properties`], and the two are compared
//! field-by-field during validation.

use serde::{Deserialize, Serialize};
use std::fmt;

use kron_bignum::{grouped, BigUint};

use crate::degree::DegreeDistribution;

/// Exact properties of a (possibly enormous) graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphProperties {
    /// Number of vertices.
    pub vertices: BigUint,
    /// Number of edges (stored adjacency entries after any self-loop removal).
    pub edges: BigUint,
    /// Number of triangles, when the design supports exact counting.
    pub triangles: Option<BigUint>,
    /// Number of self-loops remaining in the graph.
    pub self_loops: BigUint,
    /// The full exact degree distribution.
    pub degree_distribution: DegreeDistribution,
}

impl GraphProperties {
    /// Largest vertex degree (zero for an empty graph).
    pub fn max_degree(&self) -> BigUint {
        self.degree_distribution
            .max_degree()
            .cloned()
            .unwrap_or_else(BigUint::zero)
    }

    /// Smallest vertex degree present (zero for an empty graph).
    pub fn min_degree(&self) -> BigUint {
        self.degree_distribution
            .min_degree()
            .cloned()
            .unwrap_or_else(BigUint::zero)
    }

    /// Number of distinct degrees in the distribution.
    pub fn distinct_degrees(&self) -> usize {
        self.degree_distribution.support_size()
    }

    /// Edge-to-vertex ratio as `f64` (the paper reports e.g. "ratio: 165.78"
    /// in Figure 4).
    pub fn edge_vertex_ratio(&self) -> f64 {
        if self.vertices.is_zero() {
            return 0.0;
        }
        self.edges.to_f64() / self.vertices.to_f64()
    }

    /// Constant `c` of the exact power law `n(d) = c/d`, when every support
    /// point lies on one.
    pub fn perfect_power_law_constant(&self) -> Option<BigUint> {
        self.degree_distribution.perfect_power_law_constant()
    }

    /// Least-squares power-law slope fit of the degree distribution.
    pub fn alpha(&self) -> Option<f64> {
        self.degree_distribution.fit_alpha()
    }

    /// The extreme-point power-law fit of the degree distribution, with its
    /// goodness numbers — the summary the streaming metrics engine reports
    /// (`None` when the extremes pin no slope).
    pub fn power_law_fit(&self) -> Option<crate::powerlaw::PowerLawFit> {
        crate::powerlaw::PowerLawFit::from_distribution(&self.degree_distribution)
    }

    /// `true` when the two property sets agree exactly on every field the
    /// paper validates: vertices, edges, triangles, and the complete degree
    /// distribution.
    pub fn exactly_matches(&self, other: &GraphProperties) -> bool {
        self.vertices == other.vertices
            && self.edges == other.edges
            && self.triangles == other.triangles
            && self.self_loops == other.self_loops
            && self.degree_distribution == other.degree_distribution
    }
}

impl fmt::Display for GraphProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vertices:  {}", grouped(&self.vertices.to_string()))?;
        writeln!(f, "edges:     {}", grouped(&self.edges.to_string()))?;
        match &self.triangles {
            Some(t) => writeln!(f, "triangles: {}", grouped(&t.to_string()))?,
            None => writeln!(f, "triangles: (not exactly computable for this design)")?,
        }
        writeln!(f, "self-loops: {}", self.self_loops)?;
        writeln!(f, "max degree: {}", grouped(&self.max_degree().to_string()))?;
        writeln!(f, "distinct degrees: {}", self.distinct_degrees())?;
        write!(f, "edges/vertex: {:.4}", self.edge_vertex_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u64, u64)]) -> DegreeDistribution {
        DegreeDistribution::from_pairs(
            pairs
                .iter()
                .map(|&(d, n)| (BigUint::from(d), BigUint::from(n))),
        )
    }

    fn sample() -> GraphProperties {
        GraphProperties {
            vertices: BigUint::from(24u64),
            edges: BigUint::from(60u64),
            triangles: Some(BigUint::zero()),
            self_loops: BigUint::zero(),
            degree_distribution: dist(&[(1, 15), (3, 5), (5, 3), (15, 1)]),
        }
    }

    #[test]
    fn derived_quantities() {
        let p = sample();
        assert_eq!(p.max_degree(), BigUint::from(15u64));
        assert_eq!(p.min_degree(), BigUint::from(1u64));
        assert_eq!(p.distinct_degrees(), 4);
        assert!((p.edge_vertex_ratio() - 2.5).abs() < 1e-12);
        assert_eq!(p.perfect_power_law_constant(), Some(BigUint::from(15u64)));
        assert!(p.alpha().unwrap() > 0.9);
        let fit = p.power_law_fit().unwrap();
        assert!((fit.alpha - 1.0).abs() < 1e-12);
        assert!(fit.residual_vs_ideal < 1e-12);
    }

    #[test]
    fn exact_match_is_field_by_field() {
        let a = sample();
        let mut b = sample();
        assert!(a.exactly_matches(&b));
        b.edges = BigUint::from(61u64);
        assert!(!a.exactly_matches(&b));
        let mut c = sample();
        c.triangles = None;
        assert!(!a.exactly_matches(&c));
    }

    #[test]
    fn display_contains_grouped_numbers() {
        let p = GraphProperties {
            vertices: BigUint::from(11_177_649_600u64),
            edges: BigUint::from(1_853_002_140_758u64),
            triangles: Some(BigUint::from(6_777_007_252_427u64)),
            self_loops: BigUint::zero(),
            degree_distribution: dist(&[(1, 10), (10, 1)]),
        };
        let text = p.to_string();
        assert!(text.contains("11,177,649,600"));
        assert!(text.contains("1,853,002,140,758"));
        assert!(text.contains("6,777,007,252,427"));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let p = GraphProperties {
            vertices: BigUint::zero(),
            edges: BigUint::zero(),
            triangles: None,
            self_loops: BigUint::zero(),
            degree_distribution: DegreeDistribution::new(),
        };
        assert_eq!(p.edge_vertex_ratio(), 0.0);
        assert_eq!(p.max_degree(), BigUint::zero());
        assert!(p.to_string().contains("not exactly computable"));
    }
}
