//! Breadth-first search and connectivity.
//!
//! Generated benchmark graphs are usually consumed by Graph500-style BFS
//! kernels, and connectivity is one of the first sanity checks a designer
//! runs on a new generator.  This module provides a level-synchronous BFS
//! phrased GraphBLAS-style (frontier SpMV over the boolean semiring), a
//! conventional queue-based BFS as a cross-check, and connected components —
//! all operating on the CSR pattern.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::semiring::Scalar;

/// Result of a single-source BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    /// The source vertex.
    pub source: usize,
    /// `level[v]` is the hop distance from the source, or `None` if `v` is
    /// unreachable.
    pub levels: Vec<Option<u32>>,
    /// `parent[v]` is the BFS-tree parent, `None` for the source itself and
    /// for unreachable vertices.
    pub parents: Vec<Option<usize>>,
}

impl BfsTree {
    /// Number of vertices reachable from the source (including the source).
    pub fn reached(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// The largest BFS level (graph eccentricity of the source within its
    /// component); `0` when only the source is reachable.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Validate the tree against the adjacency matrix it was computed from,
    /// in the spirit of the Graph500 validation step:
    ///
    /// * the source has level 0 and no parent;
    /// * every reached non-source vertex has a parent one level closer;
    /// * every tree edge exists in the graph;
    /// * level differences across every graph edge are at most one.
    pub fn validate<T: Scalar>(&self, graph: &CsrMatrix<T>) -> Result<(), String> {
        if self.levels.len() != graph.nrows() {
            return Err("level array length does not match the vertex count".into());
        }
        match self.levels[self.source] {
            Some(0) => {}
            other => return Err(format!("source level must be 0, found {other:?}")),
        }
        if self.parents[self.source].is_some() {
            return Err("source must not have a parent".into());
        }
        for v in 0..graph.nrows() {
            match (self.levels[v], self.parents[v]) {
                (None, None) => {}
                (None, Some(_)) => return Err(format!("unreachable vertex {v} has a parent")),
                (Some(0), _) if v == self.source => {}
                (Some(0), _) => return Err(format!("non-source vertex {v} has level 0")),
                (Some(level), Some(parent)) => {
                    let parent_level = self.levels[parent]
                        .ok_or_else(|| format!("parent {parent} of {v} is unreachable"))?;
                    if parent_level + 1 != level {
                        return Err(format!(
                            "vertex {v} at level {level} has parent {parent} at level {parent_level}"
                        ));
                    }
                    let (cols, _) = graph.row(parent);
                    if cols.binary_search(&v).is_err() {
                        return Err(format!("tree edge {parent} -> {v} is not a graph edge"));
                    }
                }
                (Some(level), None) => {
                    return Err(format!("reached vertex {v} at level {level} has no parent"))
                }
            }
        }
        // Level difference across every edge is at most 1.
        for u in 0..graph.nrows() {
            let Some(lu) = self.levels[u] else { continue };
            let (cols, _) = graph.row(u);
            for &v in cols {
                match self.levels[v] {
                    Some(lv) => {
                        if lu.abs_diff(lv) > 1 {
                            return Err(format!("edge ({u}, {v}) spans levels {lu} and {lv}"));
                        }
                    }
                    None => return Err(format!("edge ({u}, {v}) reaches an unvisited vertex")),
                }
            }
        }
        Ok(())
    }
}

/// Level-synchronous BFS phrased as repeated frontier expansion (the
/// GraphBLAS boolean-semiring SpMV pattern), parallelised over the frontier.
pub fn bfs<T: Scalar>(graph: &CsrMatrix<T>, source: usize) -> Result<BfsTree, SparseError> {
    if graph.nrows() != graph.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "bfs",
            left: (graph.nrows() as u64, graph.ncols() as u64),
            right: (graph.ncols() as u64, graph.nrows() as u64),
        });
    }
    if source >= graph.nrows() {
        return Err(SparseError::IndexOutOfBounds {
            row: source as u64,
            col: 0,
            nrows: graph.nrows() as u64,
            ncols: graph.ncols() as u64,
        });
    }
    let n = graph.nrows();
    let mut levels: Vec<Option<u32>> = vec![None; n];
    let mut parents: Vec<Option<usize>> = vec![None; n];
    levels[source] = Some(0);
    let mut frontier = vec![source];
    let mut level = 0u32;

    while !frontier.is_empty() {
        level += 1;
        // Expand the frontier in parallel; collect candidate (child, parent)
        // pairs, then commit them sequentially (first writer wins, which is
        // any valid BFS parent).
        let candidates: Vec<(usize, usize)> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                let (cols, _) = graph.row(u);
                cols.iter().map(move |&v| (v, u)).collect::<Vec<_>>()
            })
            .collect();
        let mut next = Vec::new();
        for (v, parent) in candidates {
            if levels[v].is_none() {
                levels[v] = Some(level);
                parents[v] = Some(parent);
                next.push(v);
            }
        }
        frontier = next;
    }
    Ok(BfsTree {
        source,
        levels,
        parents,
    })
}

/// Simple sequential queue-based BFS used as an independent cross-check of
/// [`bfs`] in tests.
pub fn bfs_reference<T: Scalar>(
    graph: &CsrMatrix<T>,
    source: usize,
) -> Result<BfsTree, SparseError> {
    if source >= graph.nrows() || graph.nrows() != graph.ncols() {
        return bfs(graph, source); // reuse the error paths
    }
    let n = graph.nrows();
    let mut levels: Vec<Option<u32>> = vec![None; n];
    let mut parents: Vec<Option<usize>> = vec![None; n];
    levels[source] = Some(0);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        // lint:allow(no-expect) -- every vertex is assigned a level before it is queued
        let lu = levels[u].expect("queued vertices have levels");
        let (cols, _) = graph.row(u);
        for &v in cols {
            if levels[v].is_none() {
                levels[v] = Some(lu + 1);
                parents[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    Ok(BfsTree {
        source,
        levels,
        parents,
    })
}

/// Connected components of an undirected graph (pattern-symmetric CSR):
/// returns a component label per vertex and the number of components.
pub fn connected_components<T: Scalar>(
    graph: &CsrMatrix<T>,
) -> Result<(Vec<usize>, usize), SparseError> {
    if graph.nrows() != graph.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "connected_components",
            left: (graph.nrows() as u64, graph.ncols() as u64),
            right: (graph.ncols() as u64, graph.nrows() as u64),
        });
    }
    let n = graph.nrows();
    let mut labels = vec![usize::MAX; n];
    let mut components = 0usize;
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        let label = components;
        components += 1;
        let mut stack = vec![start];
        labels[start] = label;
        while let Some(u) = stack.pop() {
            let (cols, _) = graph.row(u);
            for &v in cols {
                if labels[v] == usize::MAX {
                    labels[v] = label;
                    stack.push(v);
                }
            }
        }
    }
    Ok((labels, components))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::semiring::PlusTimes;

    fn csr(n: u64, undirected_edges: &[(u64, u64)]) -> CsrMatrix<u64> {
        let mut all = Vec::new();
        for &(u, v) in undirected_edges {
            all.push((u, v));
            if u != v {
                all.push((v, u));
            }
        }
        let coo = CooMatrix::from_edges(n, n, all).unwrap();
        CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap()
    }

    #[test]
    fn bfs_on_a_path() {
        let g = csr(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let tree = bfs(&g, 0).unwrap();
        assert_eq!(
            tree.levels,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4)]
        );
        assert_eq!(tree.reached(), 5);
        assert_eq!(tree.max_level(), 4);
        tree.validate(&g).unwrap();
    }

    #[test]
    fn bfs_on_a_star_reaches_everything_in_one_hop() {
        let g = csr(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let from_centre = bfs(&g, 0).unwrap();
        assert_eq!(from_centre.max_level(), 1);
        from_centre.validate(&g).unwrap();
        let from_leaf = bfs(&g, 3).unwrap();
        assert_eq!(from_leaf.max_level(), 2);
        assert_eq!(from_leaf.reached(), 6);
        from_leaf.validate(&g).unwrap();
    }

    #[test]
    fn bfs_handles_disconnected_vertices() {
        let g = csr(5, &[(0, 1), (1, 2)]);
        let tree = bfs(&g, 0).unwrap();
        assert_eq!(tree.reached(), 3);
        assert_eq!(tree.levels[3], None);
        assert_eq!(tree.parents[4], None);
        tree.validate(&g).unwrap();
    }

    #[test]
    fn bfs_levels_match_reference_implementation() {
        let g = csr(
            10,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (2, 8),
                (8, 9),
            ],
        );
        for source in 0..10 {
            let fast = bfs(&g, source).unwrap();
            let reference = bfs_reference(&g, source).unwrap();
            assert_eq!(
                fast.levels, reference.levels,
                "levels differ from source {source}"
            );
            fast.validate(&g).unwrap();
        }
    }

    #[test]
    fn bfs_error_paths() {
        let g = csr(3, &[(0, 1)]);
        assert!(bfs(&g, 7).is_err());
        let rect = CsrMatrix::<u64>::zeros(2, 3);
        assert!(bfs(&rect, 0).is_err());
        assert!(connected_components(&rect).is_err());
    }

    #[test]
    fn connected_components_counts() {
        let g = csr(7, &[(0, 1), (1, 2), (3, 4), (5, 5)]);
        let (labels, count) = connected_components(&g).unwrap();
        assert_eq!(count, 4); // {0,1,2}, {3,4}, {5}, {6}
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[6]);
    }

    #[test]
    fn validation_rejects_corrupted_trees() {
        let g = csr(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut tree = bfs(&g, 0).unwrap();
        tree.levels[3] = Some(1); // wrong level
        assert!(tree.validate(&g).is_err());
        let mut tree = bfs(&g, 0).unwrap();
        tree.parents[2] = Some(0); // (0,2) is not an edge
        assert!(tree.validate(&g).is_err());
        let mut tree = bfs(&g, 0).unwrap();
        tree.parents[0] = Some(1); // source must have no parent
        assert!(tree.validate(&g).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = CsrMatrix<u64>> {
        (2u64..20).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
                let mut edges = Vec::new();
                for (u, v) in pairs {
                    if u != v {
                        edges.push((u, v));
                        edges.push((v, u));
                    }
                }
                let coo = CooMatrix::from_edges(n, n, edges).unwrap();
                CsrMatrix::from_coo::<PlusTimes>(&coo).unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn parallel_bfs_matches_reference(g in arb_graph(), source_seed in 0usize..1000) {
            let source = source_seed % g.nrows();
            let fast = bfs(&g, source).unwrap();
            let reference = bfs_reference(&g, source).unwrap();
            prop_assert_eq!(&fast.levels, &reference.levels);
            prop_assert!(fast.validate(&g).is_ok());
        }

        #[test]
        fn components_partition_vertices(g in arb_graph()) {
            let (labels, count) = connected_components(&g).unwrap();
            prop_assert_eq!(labels.len(), g.nrows());
            let max_label = labels.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(max_label + 1, count);
            // Every edge joins vertices with the same label.
            for (u, v, _) in g.iter() {
                prop_assert_eq!(labels[u], labels[v]);
            }
        }
    }
}
